"""pytest-benchmark configuration for the figure-reproduction harness.

Each benchmark regenerates one figure of the paper on the simulated
machines and prints the paper-vs-simulated table.  `--benchmark-only`
runs just these targets:

    pytest benchmarks/ --benchmark-only
"""

import pytest

#: execution scale for benchmark runs — larger than the unit tests' so
#: measured traffic statistics are smooth, small enough to stay fast.
BENCH_SCALE = 2.0**-12


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH_SCALE


def run_figure(benchmark, runner, **kwargs):
    """Benchmark one figure runner and echo its table."""
    result = benchmark.pedantic(
        lambda: runner(**kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(result.render() if hasattr(result, "render") else result)
    return result
