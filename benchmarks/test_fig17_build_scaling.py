"""Figure 17: build-side scaling and the hybrid hash table."""

import pytest

from benchmarks.conftest import run_figure
from repro.bench import fig17_build_scaling


def test_fig17_build_scaling(benchmark):
    result = run_figure(
        benchmark, fig17_build_scaling.run, scale=2.0**-13,
        tuple_millions=(512, 1024, 1280, 1536, 2048),
    )

    # Crossover: the table outgrows the 16 GiB GPU between 1024M and
    # 1280M tuples (16.4 -> 20.5 GB).
    assert result.value("1024M", "pcie3") > 10 * result.value("1280M", "pcie3")
    assert result.value("1024M", "nvlink2") > 2 * result.value("1280M", "nvlink2")

    # PCI-e's cliff is catastrophic (paper: -97%), NVLink's graceful.
    pcie_drop = result.value("2048M", "pcie3") / result.value("512M", "pcie3")
    nvlink_drop = result.value("2048M", "nvlink2") / result.value(
        "512M", "nvlink2"
    )
    assert pcie_drop < 0.05
    assert 0.1 < nvlink_drop < 0.45

    # Out-of-core: NVLink stays 8-18x above PCI-e and near the CPU.
    assert (
        8
        < result.value("2048M", "nvlink2") / result.value("2048M", "pcie3")
        < 30
    )
    assert result.value("2048M", "nvlink2") == pytest.approx(
        result.value("2048M", "cpu-pra"), rel=0.25
    )

    # The hybrid hash table degrades gracefully: monotone decrease, and
    # 1-2.2x over the plain spilled table.
    hybrid = result.series("nvlink2-hybrid")
    assert all(b <= a * 1.001 for a, b in zip(hybrid, hybrid[1:]))
    for label in ("1280M", "1536M", "2048M"):
        gain = result.value(label, "nvlink2-hybrid") / result.value(
            label, "nvlink2"
        )
        assert 1.0 < gain < 4.0

    # The CPU baseline is flat.
    cpu = result.series("cpu-pra")
    assert max(cpu) / min(cpu) < 1.1
