"""Table 2: workload definitions (generation throughput + invariants)."""

import numpy as np
import pytest

from repro.workloads.builders import workload_a, workload_b, workload_c


def test_table02_workload_generation(benchmark):
    workloads = benchmark.pedantic(
        lambda: {
            "A": workload_a(scale=2.0**-11),
            "B": workload_b(scale=2.0**-11),
            "C": workload_c(scale=2.0**-11),
        },
        rounds=1,
        iterations=1,
    )
    wl_a, wl_b, wl_c = workloads["A"], workloads["B"], workloads["C"]

    # Table 2's modeled sizes.
    assert wl_a.r.modeled_bytes == 2 * 2**30
    assert wl_a.s.modeled_bytes == 32 * 2**30
    assert wl_b.r.modeled_bytes == 4 * 2**20
    assert wl_c.r.modeled_tuples == wl_c.s.modeled_tuples == 1024 * 10**6

    # Key/payload widths.
    assert wl_a.r.key_bytes == wl_a.r.payload_bytes == 8
    assert wl_c.r.key_bytes == wl_c.r.payload_bytes == 4

    # Foreign-key property: every S tuple matches exactly one R tuple.
    for wl in (wl_a, wl_b, wl_c):
        assert np.isin(wl.s.key, wl.r.key).all()
        assert len(np.unique(wl.r.key)) == wl.r.executed_tuples
