"""Figure 11: placement decision tree validation."""

import pytest

from benchmarks.conftest import run_figure
from repro.bench import fig11_placement


def test_fig11_decision_tree(benchmark):
    result = run_figure(benchmark, fig11_placement.run, scale=2.0**-13)

    # In-core regimes: the tree's choice is the best strategy found.
    for label in ("cache-sized (4 MiB)", "in-GPU (8 GiB)", "in-GPU (15 GiB)"):
        chosen = result.value(label, "chosen")
        best = result.value(label, "best")
        assert chosen == pytest.approx(best, rel=0.02), label

    # The cache-sized case picks the cooperative GPU+Het (Figure 21 B).
    small = "cache-sized (4 MiB)"
    assert result.value(small, "chosen") == pytest.approx(
        result.value(small, "gpu+het"), rel=0.01
    )

    # Beyond GPU memory: GPU+Het is impossible (the table cannot be
    # replicated), and the tree's Het choice is the robust one — never
    # below ~the CPU-side baseline even though the hybrid peaks higher.
    for label in ("beyond-GPU (24 GiB)", "beyond-GPU (32 GiB)"):
        with pytest.raises(KeyError):
            result.value(label, "gpu")  # plain GPU placement: OOM
        with pytest.raises(KeyError):
            result.value(label, "gpu+het")  # replication: OOM
        chosen = result.value(label, "chosen")
        assert chosen == pytest.approx(result.value(label, "het"), rel=0.01)
        assert chosen > 0.4  # robustness floor: ~the CPU-only rate
