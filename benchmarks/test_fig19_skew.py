"""Figure 19: Zipf-skewed probe relations."""

from benchmarks.conftest import run_figure
from repro.bench import fig19_skew


def test_fig19_skew(benchmark, bench_scale):
    result = run_figure(
        benchmark, fig19_skew.run, scale=bench_scale,
        exponents=(0.0, 1.0, 1.5, 1.75),
    )

    # Skew raises throughput for CPU-resident tables on every platform
    # (paper: 3.5x CPU, 3.6x NVLink, 6.1x PCI-e).
    for series, min_gain in (("cpu", 2.0), ("nvlink2", 2.5), ("pcie3", 3.0)):
        base = result.value("zipf=0.0", series)
        peak = result.value("zipf=1.75", series)
        assert peak / base > min_gain, series

    # Throughput is monotone in the exponent.
    for series in ("cpu", "nvlink2", "pcie3"):
        values = result.series(series)
        assert all(b >= a * 0.99 for a, b in zip(values, values[1:])), series

    # PCI-e stays far below NVLink even at peak skew.
    assert result.value("zipf=1.75", "pcie3") < 0.5 * result.value(
        "zipf=1.75", "nvlink2"
    )


def test_fig19_hybrid_splits(benchmark, bench_scale):
    splits = benchmark.pedantic(
        lambda: fig19_skew.run_splits(scale=bench_scale, exponent=1.5),
        rounds=1, iterations=1,
    )
    print()
    for split, value in splits.items():
        print(f"  {split:.0%} GPU: {value:.2f} G Tuples/s")
    # Throughput increases with the hybrid table's GPU share.
    values = [splits[k] for k in sorted(splits)]
    assert values == sorted(values)


def test_fig19_gpu_resident_table_unaffected(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: fig19_skew.run(
            scale=bench_scale, exponents=(0.0, 1.5), gpu_split=1.0
        ),
        rounds=1, iterations=1,
    )
    print()
    print(result.render())
    # With the table fully in GPU memory the base-relation transfer is
    # the bottleneck, so skew has (almost) no effect.
    base = result.value("zipf=0.0", "nvlink2")
    skewed = result.value("zipf=1.5", "nvlink2")
    assert abs(skewed - base) / base < 0.1
