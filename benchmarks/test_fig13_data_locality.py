"""Figure 13: base-relation locality (0-3 hops)."""

import pytest

from benchmarks.conftest import run_figure
from repro.bench import fig13_data_locality


def test_fig13_data_locality(benchmark, bench_scale):
    result = run_figure(benchmark, fig13_data_locality.run, scale=bench_scale)

    # A: throughput decreases by tens of percent per added hop.
    a = [result.value("A", loc) for loc in ("gpu", "cpu", "rcpu", "rgpu")]
    assert a[0] >= a[1] > a[2] >= a[3]
    assert 0.3 < a[3] / a[0] < 0.75  # paper: 32-46% total decrease... at 3 hops

    # B: the L2-cached table makes GPU-local multiples faster.
    assert result.value("B", "gpu") / result.value("B", "cpu") > 3

    # C: flat — GPU-memory random accesses dominate, not the interconnect.
    c = [result.value("C", loc) for loc in ("gpu", "cpu", "rcpu", "rgpu")]
    assert max(c) / min(c) < 1.2

    # The 1-hop cells match the paper closely (the 2/3-hop cells depend
    # on X-Bus details we model more coarsely).
    assert result.value("A", "cpu") == pytest.approx(3.82, rel=0.15)
    assert result.value("B", "gpu") == pytest.approx(19.08, rel=0.15)
