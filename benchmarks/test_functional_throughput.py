"""Real wall-clock microbenchmarks of the functional layer.

Unlike the figure reproductions (which price *modeled* hardware), these
benchmark the library's own vectorized implementations — the numbers a
downstream user actually experiences when executing on their machine.
"""

import numpy as np
import pytest

from repro.core.hashtable import create_hash_table
from repro.core.join.radix import RadixJoin
from repro.engine import Filter, HashAggregate, HashJoinOp, TableScan, collect
from repro.hardware.topology import ibm_ac922
from repro.workloads.builders import workload_a

N = 1 << 18


@pytest.fixture(scope="module")
def keys():
    rng = np.random.default_rng(0)
    return rng.permutation(N).astype(np.int64)


@pytest.fixture(scope="module")
def probes(keys):
    rng = np.random.default_rng(1)
    return rng.integers(0, N, 4 * N).astype(np.int64)


@pytest.mark.parametrize("scheme", ["perfect", "open_addressing", "chaining"])
def test_hashtable_build_throughput(benchmark, keys, scheme):
    def build():
        table = create_hash_table(scheme, N, np.int64, np.int64)
        table.insert_batch(keys, keys)
        return table

    table = benchmark(build)
    assert table.size == N


@pytest.mark.parametrize("scheme", ["perfect", "open_addressing", "chaining"])
def test_hashtable_probe_throughput(benchmark, keys, probes, scheme):
    table = create_hash_table(scheme, N, np.int64, np.int64)
    table.insert_batch(keys, keys * 2)

    found, values = benchmark(table.lookup_batch, probes)
    assert found.all()


def test_engine_pipeline_throughput(benchmark, keys, probes):
    def pipeline():
        joined = HashJoinOp(
            TableScan({"k": keys, "p": keys}, morsel_rows=1 << 15),
            Filter(
                TableScan({"fk": probes}, morsel_rows=1 << 15),
                lambda b: b["fk"] % 2 == 0,
            ),
            build_key="k",
            probe_key="fk",
        )
        return collect(
            HashAggregate(joined, (), {"total": ("build_p", "sum")})
        )

    result = benchmark(pipeline)
    assert result["total"][0] > 0


def test_radix_partition_throughput(benchmark):
    machine = ibm_ac922()
    workload = workload_a(scale=2.0**-12)
    join = RadixJoin(machine)

    result = benchmark(join.run, workload.r, workload.s)
    assert result.matches == workload.s.executed_tuples


def test_workload_generation_throughput(benchmark):
    workload = benchmark(workload_a, 2.0**-11)
    assert workload.s.executed_tuples > 0
