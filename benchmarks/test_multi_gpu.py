"""Extension bench: multi-GPU placement (Section 6.3)."""

from benchmarks.conftest import run_figure
from repro.bench import multi_gpu


def test_multi_gpu_placement(benchmark, bench_scale):
    result = run_figure(benchmark, multi_gpu.run, scale=bench_scale)

    # Small table: replicating over two GPUs beats one GPU; interleaving
    # a small table wastes remote bandwidth and loses.
    small = "A (2 GiB table)"
    assert result.value(small, "replicated") > result.value(small, "one-gpu")
    assert result.value(small, "replicated") > result.value(small, "interleaved")

    # Huge table (2x one GPU's memory): interleaving keeps the table in
    # (remote) GPU memory and beats the single GPU's hybrid spill.
    big = "C 2048M (32 GiB table)"
    assert result.value(big, "interleaved") > result.value(big, "one-gpu")

    # Four GPUs scale the interleaved join well past two (more mesh
    # links, more issue engines, more aggregate HBM).
    scaling = "C 2048M scaling"
    assert result.value(scaling, "4-gpus") > 1.5 * result.value(
        scaling, "2-gpus"
    )
