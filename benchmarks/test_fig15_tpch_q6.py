"""Figure 15: TPC-H Q6 scaling."""

from benchmarks.conftest import run_figure
from repro.bench import fig15_tpch_q6


def test_fig15_tpch_q6(benchmark):
    result = run_figure(
        benchmark, fig15_tpch_q6.run, scale=2.0**-10,
        scale_factors=(100, 500, 1000),
    )
    row = "SF1000"

    # The CPU achieves the highest throughput overall.
    cpu_best = max(
        result.value(row, "cpu-predicated"), result.value(row, "cpu-branching")
    )
    nvlink_best = max(
        result.value(row, "nvlink-branching"),
        result.value(row, "nvlink-predicated"),
    )
    assert cpu_best > nvlink_best

    # ... but NVLink considerably closes the gap (paper: within 67%).
    assert cpu_best / nvlink_best < 2.0

    # NVLink is many multiples of PCI-e 3.0 (paper: up to 9.8x).
    pcie_best = max(
        result.value(row, "pcie-branching"), result.value(row, "pcie-predicated")
    )
    assert nvlink_best / pcie_best > 4

    # Branching beats predication on the GPU (transfer skipping) but
    # not on the CPU (SIMD predication wins there).
    assert result.value(row, "nvlink-branching") > result.value(
        row, "nvlink-predicated"
    )
    assert result.value(row, "cpu-predicated") > result.value(
        row, "cpu-branching"
    )

    # Throughput is flat across scale factors (bandwidth-bound).
    for series in ("cpu-predicated", "nvlink-predicated", "pcie-predicated"):
        values = result.series(series)
        assert max(values) / min(values) < 1.05
