"""Figure 21: CPU/GPU co-processing scale-up."""

import pytest

from benchmarks.conftest import run_figure
from repro.bench import fig21_coprocessing


def test_fig21a_strategies(benchmark, bench_scale):
    result = run_figure(benchmark, fig21_coprocessing.run, scale=bench_scale)

    # "Using a GPU always achieves the same or better throughput than
    # the CPU-only strategy, and never decreases throughput."
    for workload in ("A", "B", "C"):
        cpu = result.value(workload, "cpu")
        for strategy in ("het", "gpu+het", "gpu"):
            assert result.value(workload, strategy) > 0.85 * cpu, (
                workload,
                strategy,
            )

    # A: adding a GPU always helps; GPU-only is fastest.
    a = {s: result.value("A", s) for s in ("cpu", "het", "gpu+het", "gpu")}
    assert a["cpu"] < a["het"] < a["gpu+het"] <= a["gpu"] * 1.05
    assert a["gpu"] / a["cpu"] > 5  # paper: 7.3x

    # B: the cooperative GPU+Het strategy beats even GPU-only, and Het
    # gives a clear cooperative speedup (paper: 3.2x; our sim ~2x).
    assert result.value("B", "gpu+het") > result.value("B", "gpu")
    assert result.value("B", "het") > 1.8 * result.value("B", "cpu")

    # C: Het is within ~15% of CPU-only (build contention eats the
    # gain); GPU-only is several times faster.
    assert result.value("C", "het") == pytest.approx(
        result.value("C", "cpu"), rel=0.2
    )
    assert result.value("C", "gpu") / result.value("C", "cpu") > 3


def test_fig21b_phase_breakdown(benchmark, bench_scale):
    phases = benchmark.pedantic(
        lambda: fig21_coprocessing.run_phases(scale=bench_scale),
        rounds=1, iterations=1,
    )
    print()
    for strategy, times in phases.items():
        print(f"  {strategy:8s} build {times['build']:.2f}s "
              f"probe {times['probe']:.2f}s")

    # Build: two processors on a shared table (Het) are slower than one.
    assert phases["het"]["build"] >= 0.95 * phases["cpu"]["build"]
    assert phases["het"]["build"] > phases["gpu"]["build"]

    # GPU+Het pays the synchronous table copy on top of the GPU build.
    assert phases["gpu+het"]["build"] > phases["gpu"]["build"]

    # Probe: adding a GPU to the CPU helps; GPU alone is fastest;
    # processor-local tables (GPU+Het) beat the shared table (Het).
    assert phases["het"]["probe"] < phases["cpu"]["probe"]
    assert phases["gpu+het"]["probe"] < phases["het"]["probe"]
    assert phases["gpu"]["probe"] <= phases["het"]["probe"]
