"""Figure 20: join selectivity."""

import pytest

from benchmarks.conftest import run_figure
from repro.bench import fig20_selectivity


def test_fig20_selectivity(benchmark, bench_scale):
    result = run_figure(benchmark, fig20_selectivity.run, scale=bench_scale)

    # Throughput decreases with selectivity for every configuration.
    for series in (
        "cpu",
        "nvlink2-gpu-ht",
        "nvlink2-cpu-ht",
        "pcie3-gpu-ht",
        "pcie3-cpu-ht",
    ):
        values = result.series(series)
        assert all(b <= a * 1.01 for a, b in zip(values, values[1:])), series

    # NVLink with a GPU-memory table shows a pronounced decrease (the
    # paper reports it as the largest, ~30%; our model shows ~40%, and
    # prices the PCI-e CPU-table case more pessimistically than the
    # paper's 7% — see EXPERIMENTS.md).
    nvlink_gpu_drop = 1 - result.value("sel=1.0", "nvlink2-gpu-ht") / result.value(
        "sel=0.0", "nvlink2-gpu-ht"
    )
    pcie_cpu_drop = 1 - result.value("sel=1.0", "pcie3-cpu-ht") / result.value(
        "sel=0.0", "pcie3-cpu-ht"
    )
    assert 0.2 < nvlink_gpu_drop < 0.6
    assert pcie_cpu_drop < 0.6

    # The cache-line effect: at 10% selectivity, 81.5% of the value
    # lines are loaded (the paper's exact number).
    assert result.value("sel=0.1", "value_lines_loaded_pct") == pytest.approx(
        81.5, abs=1.0
    )
    assert result.value("sel=0.0", "value_lines_loaded_pct") == 0.0
    assert result.value("sel=1.0", "value_lines_loaded_pct") == 100.0
