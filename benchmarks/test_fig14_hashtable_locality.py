"""Figure 14: hash-table locality (0-3 hops)."""

import pytest

from benchmarks.conftest import run_figure
from repro.bench import fig14_hashtable_locality


def test_fig14_hashtable_locality(benchmark, bench_scale):
    result = run_figure(
        benchmark, fig14_hashtable_locality.run, scale=bench_scale
    )

    # One NVLink hop to the table costs 75-85% of throughput (A, B).
    for workload in ("A", "B"):
        drop = 1 - result.value(workload, "cpu") / result.value(workload, "gpu")
        assert 0.7 < drop < 0.95

    # Additional hops keep costing throughput.
    for workload in ("A", "B", "C"):
        values = [
            result.value(workload, loc) for loc in ("gpu", "cpu", "rcpu", "rgpu")
        ]
        assert values[0] > values[1] > values[2] >= values[3] * 0.99

    # Workload B's cache-sized table gets NO remote-L2 relief: its
    # remote throughput is like A's, not like its local 4x advantage.
    assert result.value("B", "cpu") == pytest.approx(
        result.value("A", "cpu"), rel=0.25
    )

    # Anchor cells vs the paper.
    assert result.value("A", "gpu") == pytest.approx(3.82, rel=0.1)
    assert result.value("A", "cpu") == pytest.approx(0.59, rel=0.15)
