"""Figure 3: interconnect/memory microbenchmarks."""

from benchmarks.conftest import run_figure
from repro.bench import fig03_microbench


def test_fig03_microbench(benchmark):
    result = run_figure(benchmark, fig03_microbench.run)
    # Panel (a): NVLink 2.0 vs other interconnects.
    assert result.value("nvlink2", "seq") / result.value("pcie3", "seq") > 5
    assert result.value("nvlink2", "random") / result.value("pcie3", "random") > 10
    assert result.value("nvlink2", "latency_ns") < result.value(
        "pcie3", "latency_ns"
    )
    assert result.value("nvlink2", "latency_ns") > result.value(
        "upi", "latency_ns"
    )
    # Panel (b): within 2x of CPU memory bandwidth, 6x its latency.
    assert result.value("power9-memory", "seq") / result.value(
        "nvlink2", "seq"
    ) < 2.0
    assert result.value("nvlink2", "latency_ns") / result.value(
        "power9-memory", "latency_ns"
    ) > 5
    # Panel (c): GPU memory an order of magnitude above the link.
    assert result.value("gpu-memory", "seq") / result.value("nvlink2", "seq") > 10
    # Exact agreement with the paper's primitives (they ARE the specs).
    for row in result.rows:
        for series, value in row.values.items():
            paper = result.paper_value(row.label, series)
            if paper:
                assert abs(value - paper) / paper < 0.01, (row.label, series)
