"""Figure 12: NOPA join throughput per transfer method."""

import pytest

from benchmarks.conftest import run_figure
from repro.bench import fig12_transfer_methods


def test_fig12_transfer_methods(benchmark, bench_scale):
    result = run_figure(benchmark, fig12_transfer_methods.run, scale=bench_scale)

    # Coherence and Zero-Copy are the fastest NVLink methods.
    nvlink_best = max(result.series("nvlink2"))
    assert result.value("coherence", "nvlink2") == pytest.approx(
        nvlink_best, rel=0.01
    )
    assert result.value("zero_copy", "nvlink2") == pytest.approx(
        nvlink_best, rel=0.02
    )

    # Coherence is unsupported on PCI-e 3.0.
    with pytest.raises(KeyError):
        result.value("coherence", "pcie3")

    # NVLink is ~5x PCI-e for the best methods.
    ratio = result.value("zero_copy", "nvlink2") / result.value(
        "zero_copy", "pcie3"
    )
    assert 4 < ratio < 6

    # The UM methods are the only ones where NVLink loses to PCI-e.
    losers = {
        method
        for method in result.series_names()
        for row in result.rows
        if row.values.get("nvlink2") is not None
        and row.values.get("pcie3") is not None
        and row.values["nvlink2"] < row.values["pcie3"]
        for method in [row.label]
    }
    assert losers == {"um_prefetch", "um_migration"}

    # Every cell within 25% of the paper's value.
    for row in result.rows:
        for series, value in row.values.items():
            paper = result.paper_value(row.label, series)
            if paper:
                assert value == pytest.approx(paper, rel=0.25), (
                    row.label,
                    series,
                )
