"""Figure 16: probe-side scaling."""

import pytest

from benchmarks.conftest import run_figure
from repro.bench import fig16_probe_scaling


def test_fig16_probe_scaling(benchmark):
    result = run_figure(
        benchmark, fig16_probe_scaling.run, scale=2.0**-13,
        probe_millions=(128, 1024, 4096, 8192),
    )

    # NVLink is 3-6x PCI-e and 3.2-7.3x the CPU baseline.
    for row in result.rows[1:]:
        assert 2.5 < row.values["nvlink2"] / row.values["pcie3"] < 6.5
        assert 2.5 < row.values["nvlink2"] / row.values["cpu-pra"] < 9

    # NVLink's throughput improves with larger probe sides (the
    # build-to-probe ratio effect); PCI-e stays flat at its bottleneck.
    nvlink = result.series("nvlink2")
    assert nvlink == sorted(nvlink)
    pcie = result.series("pcie3")
    assert max(pcie) / min(pcie) < 1.05

    # PCI-e cannot outperform the CPU baseline by a large margin — it is
    # transfer-bound (the paper's curve sits at/below the CPU's; our
    # radix calibration leaves a small gap).
    for row in result.rows:
        assert row.values["pcie3"] < 2 * row.values["cpu-pra"]

    # Anchors.
    assert result.value("8192M", "nvlink2") == pytest.approx(3.8, rel=0.15)
    assert result.value("8192M", "pcie3") == pytest.approx(0.77, rel=0.15)
