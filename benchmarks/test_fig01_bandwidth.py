"""Figure 1: theoretical vs. measured bandwidth."""

from benchmarks.conftest import run_figure
from repro.bench import fig01_bandwidth


def test_fig01_bandwidth(benchmark):
    result = run_figure(benchmark, fig01_bandwidth.run)
    nvlink = result.value("nvlink2", "measured")
    memory = result.value("memory", "measured")
    pcie = result.value("pcie3", "measured")
    # The figure's caption: NVLink 2.0 eliminates the GPU's main-memory
    # access disadvantage; PCI-e 3.0 does not.
    assert nvlink > 0.8 * memory
    assert pcie < 0.2 * memory
    # Within 10% of the paper's bars.
    for label in ("memory", "nvlink2", "pcie3"):
        paper = result.paper_value(label, "measured")
        assert abs(result.value(label, "measured") - paper) / paper < 0.10
