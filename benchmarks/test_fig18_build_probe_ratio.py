"""Figure 18: build-to-probe ratios."""

import pytest

from benchmarks.conftest import run_figure
from repro.bench import fig18_build_probe_ratio


def test_fig18_build_probe_ratio(benchmark, bench_scale):
    result = run_figure(
        benchmark, fig18_build_probe_ratio.run, scale=bench_scale
    )

    # Throughput rises with the probe share: 2.41 -> 3.85 in the paper.
    throughput = result.series("throughput")
    assert throughput == sorted(throughput)
    assert result.value("1:1", "throughput") == pytest.approx(2.41, rel=0.1)
    assert result.value("1:16", "throughput") == pytest.approx(3.85, rel=0.1)

    # The build phase takes 71% of the time at 1:1 (it is ~45% slower
    # than the probe phase per tuple) and shrinks to 13% at 1:16.
    assert result.value("1:1", "build_pct") == pytest.approx(71, abs=5)
    assert result.value("1:16", "build_pct") == pytest.approx(13, abs=4)
    build_pct = result.series("build_pct")
    assert build_pct == sorted(build_pct, reverse=True)

    # Per-tuple build/probe cost ratio implied by the 1:1 breakdown.
    share = result.value("1:1", "build_pct") / 100
    per_tuple_ratio = share / (1 - share)
    assert per_tuple_ratio == pytest.approx(2.45, rel=0.15)  # ~45% slower
