"""Calibration sensitivity: the reproduction is robust where claimed."""

from benchmarks.conftest import run_figure
from repro.bench import sensitivity


def test_calibration_sensitivity(benchmark):
    result = run_figure(benchmark, sensitivity.run, scale=2.0**-14)

    def max_movement(constant):
        row = next(r for r in result.rows if r.label == constant)
        return max(row.values.values())

    # Robust constants: a ±20% perturbation moves no anchor by more
    # than ~1% (they only matter in regimes the anchors don't probe).
    for constant in (
        "shared_build_contention",
        "per_hop_random_penalty",
        "l2_random_rate",
        "join_pipeline_overhead",
    ):
        assert max_movement(constant) < 2.0, constant

    # Stiff constants: they visibly matter (the anchors were fitted
    # against them) — but ±20% never moves an anchor more than ~25%,
    # so shapes (orderings, crossover positions) survive recalibration.
    for constant in ("independent_access_factor", "atomic_rate",
                     "issue_efficiency"):
        movement = max_movement(constant)
        assert 1.0 < movement < 25.0, (constant, movement)
