"""Ablation benches for DESIGN.md's called-out design choices."""

import pytest

from benchmarks.conftest import run_figure
from repro.bench import ablations


def test_ablation_batch_size(benchmark, bench_scale):
    result = run_figure(benchmark, ablations.run_batch_size, scale=bench_scale)
    values = {row.label: row.values["throughput"] for row in result.rows}
    # Tiny batches lose to dispatch latency; the tuned batch is within
    # 1% of the best fixed batch.
    best = max(values.values())
    assert values["batch=1"] < best
    assert values["batch=auto"] == pytest.approx(best, rel=0.02)


def test_ablation_layout(benchmark, bench_scale):
    result = run_figure(benchmark, ablations.run_layout, scale=bench_scale)
    # At zero selectivity the layouts tie (only keys are probed);
    # at full selectivity AoS wins (key+value in one access).
    tie = result.value("sel=0.0", "soa") / result.value("sel=0.0", "aos")
    assert tie == pytest.approx(1.0, rel=0.02)
    assert result.value("sel=1.0", "aos") > 1.3 * result.value("sel=1.0", "soa")


def test_ablation_hash_scheme(benchmark, bench_scale):
    result = run_figure(benchmark, ablations.run_hash_scheme, scale=bench_scale)
    perfect = result.value("perfect", "throughput")
    open_addr = result.value("open_addressing", "throughput")
    chaining = result.value("chaining", "throughput")
    # Perfect hashing (the paper's setup) is the fastest scheme ...
    assert perfect > open_addr
    assert perfect > chaining
    # ... but the general schemes stay within ~25% on this workload.
    assert open_addr > 0.75 * perfect
    assert result.value("perfect", "probes_per_lookup") == 1.0
    assert result.value("open_addressing", "probes_per_lookup") > 1.0


def test_ablation_hybrid_vs_spill(benchmark):
    result = run_figure(benchmark, ablations.run_hybrid_vs_spill, scale=2.0**-13)
    for row in result.rows:
        # The hybrid table always at least matches the whole-table spill,
        # and its advantage shrinks as the GPU fraction falls.
        assert row.values["hybrid"] >= 0.99 * row.values["cpu_spill"]
    gains = [row.values["hybrid"] / row.values["cpu_spill"] for row in result.rows]
    assert gains[0] > gains[-1]
