"""Table 1: the implemented transfer-method taxonomy matches the paper."""

from repro.bench.table01_methods import PAPER, rows, run


def test_table01_taxonomy(benchmark):
    implemented = benchmark.pedantic(rows, rounds=1, iterations=1)
    print()
    print(run().render())
    by_name = {row["method"]: row for row in implemented}
    assert set(by_name) == set(PAPER)
    for name, (semantics, level, granularity, memory) in PAPER.items():
        row = by_name[name]
        assert row["semantics"] == semantics, name
        assert row["level"] == level, name
        assert row["granularity"] == granularity, name
        assert row["memory"] == memory, name
