"""A catalog of columnar tables with real capacity accounting.

Creating a table reserves its *modeled* bytes in a memory region via
the allocator; dropping releases them; migrating a table between
regions (the OS's NUMA page migration, Section 3) re-reserves at the
destination and returns the priced transfer time.  Tables expose their
columns for the functional layer and convert to
:class:`~repro.data.relation.Relation` views for the join operators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.costmodel.model import CostModel
from repro.data.relation import Relation
from repro.hardware.memory import MemoryKind
from repro.hardware.topology import Machine
from repro.memory.allocator import Allocation, Allocator


class TableExistsError(ValueError):
    """Raised when creating a table whose name is taken."""


@dataclass
class StoredTable:
    """One columnar table resident in one memory region."""

    name: str
    columns: Dict[str, np.ndarray]
    modeled_rows: int
    kind: MemoryKind
    allocation: Allocation

    def __post_init__(self) -> None:
        lengths = {len(col) for col in self.columns.values()}
        if len(lengths) != 1:
            raise ValueError(f"ragged columns in table {self.name}")
        if self.modeled_rows < self.executed_rows:
            raise ValueError(
                f"modeled rows {self.modeled_rows} below executed rows "
                f"{self.executed_rows}"
            )

    @property
    def executed_rows(self) -> int:
        return len(next(iter(self.columns.values())))

    @property
    def row_bytes(self) -> int:
        return sum(col.dtype.itemsize for col in self.columns.values())

    @property
    def modeled_bytes(self) -> int:
        return self.modeled_rows * self.row_bytes

    @property
    def location(self) -> str:
        return self.allocation.region.name

    def column(self, name: str) -> np.ndarray:
        """Look a column up by name."""
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(
                f"table {self.name} has no column {name!r}; "
                f"columns: {', '.join(self.columns)}"
            ) from None

    def as_relation(self, key: str, payload: str) -> Relation:
        """A Relation view over two columns (for the join operators)."""
        return Relation(
            name=self.name,
            key=self.column(key),
            payload=self.column(payload),
            modeled_tuples=self.modeled_rows,
            location=self.location,
            kind=self.kind,
        )

    def __str__(self) -> str:
        return (
            f"StoredTable({self.name}: {self.executed_rows} rows executed / "
            f"{self.modeled_rows} modeled, {self.row_bytes} B/row, "
            f"{self.kind.value} in {self.location})"
        )


class Catalog:
    """Named tables over one machine's memory regions."""

    def __init__(self, machine: Machine, allocator: Optional[Allocator] = None):
        self.machine = machine
        self.allocator = allocator or Allocator(machine)
        self.cost_model = CostModel(machine)
        self._tables: Dict[str, StoredTable] = {}

    # ------------------------------------------------------------------
    def create_table(
        self,
        name: str,
        columns: Mapping[str, np.ndarray],
        location: str = "cpu0-mem",
        kind: MemoryKind = MemoryKind.PAGEABLE,
        modeled_rows: Optional[int] = None,
    ) -> StoredTable:
        """Create a table and reserve its modeled bytes in ``location``."""
        if name in self._tables:
            raise TableExistsError(f"table {name!r} already exists")
        if not columns:
            raise ValueError("a table needs at least one column")
        columns = dict(columns)
        rows = {len(col) for col in columns.values()}
        if len(rows) != 1:
            raise ValueError(f"ragged columns for table {name!r}")
        executed = rows.pop()
        modeled = modeled_rows if modeled_rows is not None else executed
        row_bytes = sum(col.dtype.itemsize for col in columns.values())
        allocation = self.allocator.alloc(
            location, modeled * row_bytes, kind=kind, label=f"table:{name}"
        )
        table = StoredTable(
            name=name,
            columns=columns,
            modeled_rows=modeled,
            kind=kind,
            allocation=allocation,
        )
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        """Drop a table and release its reserved capacity."""
        table = self.table(name)
        self.allocator.free(table.allocation)
        del self._tables[name]

    def table(self, name: str) -> StoredTable:
        """Look a table up by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(
                f"no table {name!r}; tables: {', '.join(sorted(self._tables))}"
            ) from None

    def tables(self) -> List[str]:
        """All table names, sorted."""
        return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    # ------------------------------------------------------------------
    def migrate(self, name: str, destination: str, mover: str = "cpu0") -> float:
        """Move a table to another region (NUMA page migration).

        Returns the priced migration time: the table's modeled bytes
        streamed from source to destination at the slower of the two
        routes from the moving processor.  The capacity moves with it.
        """
        table = self.table(name)
        source = table.location
        if source == destination:
            return 0.0
        new_allocation = self.allocator.alloc(
            destination,
            table.allocation.nbytes,
            kind=table.kind,
            label=f"table:{name}",
        )
        self.allocator.free(table.allocation)
        table.allocation = new_allocation
        read_bw = self.cost_model.sequential_bandwidth(mover, source)
        write_bw = self.cost_model.sequential_bandwidth(mover, destination)
        return table.modeled_bytes / min(read_bw, write_bw)

    def used_bytes(self, location: str) -> int:
        """Bytes allocated in one region (tables and anything else)."""
        return self.machine.memory(location).allocated

    def total_modeled_bytes(self) -> int:
        """Sum of all tables' modeled sizes."""
        return sum(t.modeled_bytes for t in self._tables.values())
