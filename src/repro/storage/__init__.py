"""Columnar storage and catalog: the database substrate.

The paper's premise is a main-memory database: "databases typically
store data in pageable memory" (Section 5.1), and background tasks like
NUMA page migration must keep working (Section 3).  This package
provides that substrate: a :class:`Catalog` of columnar
:class:`StoredTable` s whose bytes are *really reserved* in the
machine's memory regions (modeled capacity), with memory-kind tracking
(pageable/pinned/unified) and priced inter-region migration.
"""

from repro.storage.catalog import Catalog, StoredTable, TableExistsError

__all__ = ["Catalog", "StoredTable", "TableExistsError"]
