"""Multi-query serving engine over the simulated machine.

The paper's numbers assume one query owns the whole machine; this
package serves *traffic*: a :class:`QueryService` front door compiles
each request through the cost-based optimizer, an admission controller
enforces per-tenant quotas with typed rejections, a plan/result cache
skips repeat optimizations, and a DES-backed scheduler multiplexes the
admitted queries over one machine — co-running phases contend for
memory channels and interconnect bandwidth through the max-min fair
rate solver instead of each pretending to own the hardware.  Headline
number: tail latency under concurrency, not single-query makespan
(``python -m repro.bench.serving_latency``).
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionError,
    TenantQuota,
)
from repro.serve.cache import PlanCache, PlanCacheEntry, workload_fingerprint
from repro.serve.request import (
    QueryRequest,
    Rejection,
    ServedQuery,
    ServingRecord,
    ServingReport,
    percentile,
)
from repro.serve.scheduler import ContentionScheduler, ScheduleOutcome
from repro.serve.service import QueryService, modeled_query_bytes

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "ContentionScheduler",
    "PlanCache",
    "PlanCacheEntry",
    "QueryRequest",
    "QueryService",
    "Rejection",
    "ScheduleOutcome",
    "ServedQuery",
    "ServingRecord",
    "ServingReport",
    "TenantQuota",
    "modeled_query_bytes",
    "percentile",
    "workload_fingerprint",
]
