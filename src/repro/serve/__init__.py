"""Multi-query serving engine over the simulated machine.

The paper's numbers assume one query owns the whole machine; this
package serves *traffic*: a :class:`QueryService` front door compiles
each request through the cost-based optimizer, an admission controller
enforces per-tenant quotas with typed rejections, a plan/result cache
skips repeat optimizations, and a DES-backed scheduler multiplexes the
admitted queries over one machine — co-running phases contend for
memory channels and interconnect bandwidth through the max-min fair
rate solver instead of each pretending to own the hardware.  Headline
number: tail latency under concurrency, not single-query makespan
(``python -m repro.bench.serving_latency``).

The serving path is resilient, not just fair-weather: per-request
deadlines are enforced inside the DES (cancellable events, mid-phase
cancellation), an installed :class:`~repro.faults.FaultPlan` can fail
in-flight queries (retried with capped virtual-time backoff, guarded
by a per-workload circuit breaker) or degrade link capacity
mid-serving, and overload beyond the :class:`ServicePolicy` bounds is
load-shed with typed reasons instead of unbounded latency
(``python -m repro.bench.serving_resilience``).
"""

from repro.serve.admission import (
    AdmissionAuditError,
    AdmissionController,
    AdmissionError,
    TenantQuota,
)
from repro.serve.cache import PlanCache, PlanCacheEntry, workload_fingerprint
from repro.serve.policy import (
    CircuitBreaker,
    CircuitOpenError,
    ServicePolicy,
    ShedError,
)
from repro.serve.request import (
    QueryRequest,
    Rejection,
    ServedQuery,
    ServingRecord,
    ServingReport,
    ShedQuery,
    percentile,
)
from repro.serve.scheduler import (
    ContentionScheduler,
    PhaseFault,
    ScheduleOutcome,
    SchedulerError,
)
from repro.serve.service import QueryService, modeled_query_bytes

__all__ = [
    "AdmissionAuditError",
    "AdmissionController",
    "AdmissionError",
    "CircuitBreaker",
    "CircuitOpenError",
    "ContentionScheduler",
    "PhaseFault",
    "PlanCache",
    "PlanCacheEntry",
    "QueryRequest",
    "QueryService",
    "Rejection",
    "ScheduleOutcome",
    "SchedulerError",
    "ServedQuery",
    "ServicePolicy",
    "ServingRecord",
    "ServingReport",
    "ShedError",
    "ShedQuery",
    "TenantQuota",
    "modeled_query_bytes",
    "percentile",
    "workload_fingerprint",
]
