"""Plan/result cache keyed on workload fingerprints.

Optimizing a query enumerates and prices the full physical search
space (transfer methods x placements x strategies x join orders), which
dominates the cost of serving a request whose *answer* is already
known: the registry workloads are deterministic, so two requests for
the same workload on the same machine compile to the same plan and
price to the same phases.  The cache stores the whole solo-priced
artifact — phases, solo makespan, modeled bytes, and the per-query
manifest base — and the service deep-copies manifests out of it, so a
cache hit is observably identical to a fresh pricing (the isolation
tests pin this).

Hit/miss counters are exposed via :meth:`PlanCache.stats` and surface
in the serving benchmark's results section.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.costmodel.model import PhaseCost


def workload_fingerprint(workload: str, machine: str) -> str:
    """Cache key: the registry workload pinned to a machine."""
    return f"{workload}@{machine}"


@dataclass
class PlanCacheEntry:
    """One solo-priced workload: everything a repeat request needs."""

    fingerprint: str
    phases: List[PhaseCost]
    solo_seconds: float
    modeled_bytes: float
    #: solo manifest dict (no ``serving`` section); deep-copied on use.
    manifest: Dict[str, Any] = field(default_factory=dict)

    def manifest_copy(self) -> Dict[str, Any]:
        return copy.deepcopy(self.manifest)


class PlanCache:
    """In-memory fingerprint -> priced-plan cache with hit metrics."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.capacity = capacity
        self._entries: Dict[str, PlanCacheEntry] = {}
        self.hits = 0
        self.misses = 0

    def get(self, fingerprint: str) -> Optional[PlanCacheEntry]:
        """Look up a priced plan, counting the hit or miss."""
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, entry: PlanCacheEntry) -> None:
        """Insert ``entry``, evicting the oldest at capacity."""
        if (
            self.capacity is not None
            and entry.fingerprint not in self._entries
            and len(self._entries) >= self.capacity
        ):
            # Evict the oldest entry (insertion order); the workload
            # registry is small, so anything smarter is untestable.
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[entry.fingerprint] = entry

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        """JSON-ready counters (benchmark/report input)."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }


__all__ = [
    "PlanCache",
    "PlanCacheEntry",
    "workload_fingerprint",
]
