"""DES-backed contention scheduler: many queries, one machine, bounded tails.

Single-query execution prices a plan as if the query owned the whole
machine.  Under serving traffic that is exactly wrong — co-running
queries fight for the same memory channels and interconnect links the
paper's Section 6 co-processing already models *within* one query.
This scheduler extends that model *across* queries:

* each admitted query runs its solo-priced phases **sequentially**
  (a phase is ``solo_seconds`` of work, with a per-second resource
  occupancy vector taken from its :class:`~repro.costmodel.model.
  PhaseCost`);
* all currently-active phases contend: their per-unit occupancy
  vectors go through :func:`~repro.sim.resources.solve_concurrent_
  rates`, and each query progresses at the solved (max-min fair) rate,
  clamped to 1.0 so a query alone finishes in exactly its solo time —
  serving can only stretch a query, never speed it up;
* arrivals and phase completions are events on a deterministic
  :class:`~repro.sim.engine.Simulator`; every event re-solves the rate
  vector and re-schedules the now-stale completion times
  (epoch-guarded, so superseded events no-op).

On top of that fair-weather model, the scheduler enforces the serving
layer's *resilience* contract:

* **deadlines** — a request carrying a latency budget gets one
  cancellable deadline event at ``arrival + deadline``; if it fires
  before completion the query is cancelled mid-phase (its accumulated
  progress is advanced first, its admission share released via
  ``on_evict``), and the follow-up resolve repairs the remaining-work
  drift for every survivor.  Queries that finish in time cancel the
  event (:meth:`Simulator.cancel_event`), so the fault-free event
  stream is untouched.
* **serving faults + retry** — an optional ``fault`` hook runs at
  every phase boundary; when it reports a :class:`PhaseFault` the
  query is evicted and either resubmitted at ``now + retry_delay``
  (capped exponential backoff in *virtual* time, decided by the
  service's :class:`~repro.faults.recovery.RetryPolicy`) or failed
  terminally.  Resubmissions re-enter through overload control and
  admission like fresh arrivals.
* **overload control** — with a :class:`~repro.serve.policy.
  ServicePolicy`, arrivals beyond ``max_active`` wait in a bounded
  FIFO queue; a full queue sheds with ``queue_full``, and an arrival
  whose max-min-solved rate against the current active set predicts a
  stretch beyond ``stretch_limit`` sheds with ``stretch`` — typed,
  pre-admission, zero machine time.
* **degraded capacity** — an optional ``capacity`` hook scales
  per-unit resource demands by ``1/factor``, so a
  :class:`~repro.faults.plan.DegradeLink` installed mid-serving slows
  every query crossing the degraded link through the same max-min
  re-solve that handles contention.

Under the inert default policy with no hooks, the event stream and all
float arithmetic are bit-identical to the PR 9 scheduler — pinned by
the chaos-serving equivalence suite.

Arrivals are scheduled at *absolute* virtual timestamps
(``schedule_at``), and completion times are ``now + remaining/rate``
sums — both paths that motivated the simulator-clock epsilon fixes
this layer is built on.

This module is the only sanctioned driver of ``Simulator.run`` for
multi-query workloads (enforced by the ``executor-boundary`` analysis
pass, which also bans driving ``schedule_at``/``cancel_event`` outside
the sanctioned DES drivers); everything else goes through the
single-query :class:`~repro.plan.PlanExecutor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.costmodel.model import PhaseCost
from repro.sim.engine import Event, Simulator
from repro.sim.resources import solve_concurrent_rates

from repro.serve.policy import (
    OUTCOME_DEADLINE,
    OUTCOME_FAILED,
    SHED_QUEUE_FULL,
    SHED_STRETCH,
    ServicePolicy,
)
from repro.serve.request import ServedQuery, ShedQuery

#: remaining work below this fraction of a phase counts as finished
#: (absorbs the float error of progress-accumulation across events).
_REMAINING_EPSILON = 1e-12

#: admission callback: (query, now) -> admitted?  Returning False drops
#: the query (the service records the typed rejection).
AdmitHook = Callable[[ServedQuery, float], bool]
#: completion callback: (query, now) — quota release, metrics.
FinishHook = Callable[[ServedQuery, float], None]
#: eviction callback: (query, now) — a deadline cancellation or fault
#: removed an *admitted* query mid-flight; release its quota share.
EvictHook = Callable[[ServedQuery, float], None]
#: serving-fault hook: (query, phase_index, attempt, now) -> fault?
#: Returning None lets the phase proceed; a :class:`PhaseFault` evicts
#: the query (retry or terminal failure).
FaultHook = Callable[[ServedQuery, int, int, float], Optional["PhaseFault"]]
#: capacity hook: resource -> factor in (0, 1]; per-unit demands are
#: scaled by 1/factor (a degraded link makes the same work occupy more
#: of the resource per second).
CapacityHook = Callable[[str], float]
#: shed callback: (query, reason, detail, now) — bookkeeping only; the
#: scheduler already recorded the typed ShedQuery.
ShedHook = Callable[[ServedQuery, str, float, float], None]


@dataclass(frozen=True)
class PhaseFault:
    """A serving fault injected at one query's phase boundary.

    ``retry_delay`` is the virtual-time backoff before the query is
    resubmitted (it re-enters overload control and admission like a
    fresh arrival); None fails the query terminally.
    """

    retry_delay: Optional[float] = None
    reason: str = "fault"


class SchedulerError(RuntimeError):
    """The scheduler drained its event queue with queries unfinished.

    Mirrors the :class:`~repro.sim.resources.SolverError` diagnostics
    pattern: instead of a bare message, the error carries the stuck
    request ids with their phase indices and remaining solo-seconds of
    work (``stuck``), plus the virtual clock at drain (``clock``) — so
    a hung serving run names exactly which queries wedged and how much
    work the simulator thought was left.
    """

    def __init__(
        self, stuck: Sequence[Tuple[int, int, float]], clock: float
    ) -> None:
        self.stuck: Tuple[Tuple[int, int, float], ...] = tuple(stuck)
        self.clock = clock
        detail = ", ".join(
            f"#{request_id} (phase {phase_index}, {remaining:.9g}s left)"
            for request_id, phase_index, remaining in self.stuck
        )
        super().__init__(
            f"scheduler drained with {len(self.stuck)} unfinished "
            f"quer{'y' if len(self.stuck) == 1 else 'ies'} at "
            f"t={clock:.9g}: {detail}"
        )


@dataclass
class _Active:
    """One query currently on the machine."""

    query: ServedQuery
    phase_index: int = 0
    #: solo-seconds of work left in the current phase.
    remaining: float = 0.0
    #: currently-solved progress rate (solo-seconds per virtual second).
    rate: float = 1.0
    #: virtual time of the last progress update.
    updated: float = 0.0
    #: serving attempt (0 = first submission, bumped per retry).
    attempt: int = 0

    def phase(self) -> PhaseCost:
        return self.query.phases[self.phase_index]


@dataclass
class ScheduleOutcome:
    """What one scheduler run did to the admitted queries."""

    finished: List[ServedQuery] = field(default_factory=list)
    dropped: List[ServedQuery] = field(default_factory=list)
    #: queries cancelled mid-flight by their deadline event.
    deadline_exceeded: List[ServedQuery] = field(default_factory=list)
    #: queries terminally failed by serving faults (retry budget spent).
    failed: List[ServedQuery] = field(default_factory=list)
    #: requests load-shed by overload control (typed reasons).
    shed: List[ShedQuery] = field(default_factory=list)
    makespan: float = 0.0
    peak_concurrency: int = 0
    #: how many times the rate vector was re-solved (events processed).
    resolves: int = 0
    #: serving-level resubmissions scheduled (fault retries).
    retries: int = 0

    def accounted(self) -> int:
        """Queries that reached a terminal bucket (conservation input)."""
        return (
            len(self.finished)
            + len(self.dropped)
            + len(self.deadline_exceeded)
            + len(self.failed)
            + len(self.shed)
        )


class ContentionScheduler:
    """Multiplexes admitted queries over one simulated machine."""

    def __init__(self, tolerance: float = 1e-9) -> None:
        self.tolerance = tolerance

    def run(
        self,
        queries: Sequence[ServedQuery],
        admit: Optional[AdmitHook] = None,
        on_finish: Optional[FinishHook] = None,
        on_evict: Optional[EvictHook] = None,
        fault: Optional[FaultHook] = None,
        capacity: Optional[CapacityHook] = None,
        on_shed: Optional[ShedHook] = None,
        policy: Optional[ServicePolicy] = None,
    ) -> ScheduleOutcome:
        """Serve ``queries`` (arrival order) and stamp start/finish.

        ``admit`` runs at each query's arrival event against the
        *current* in-flight population; rejected queries are dropped
        and reported in :attr:`ScheduleOutcome.dropped`.  ``on_evict``
        releases the admission share of queries removed mid-flight
        (deadline cancellation, fault eviction).  With every optional
        hook absent and the default (inert) policy, scheduling is
        bit-identical to the fair-weather PR 9 scheduler.
        """
        policy = policy if policy is not None else ServicePolicy()
        sim = Simulator()
        outcome = ScheduleOutcome()
        active: Dict[int, _Active] = {}
        #: FIFO of queries admitted but waiting for an active slot.
        waiting: List[_Active] = []
        #: one cancellable deadline event per deadline-carrying request.
        deadline_events: Dict[int, Event] = {}
        #: pending retry-resubmission events (cancelled on deadline).
        retry_events: Dict[int, Event] = {}
        #: request ids currently holding an admission share.
        holding: set = set()
        epoch = 0

        def demand_key(record: _Active) -> str:
            return f"q{record.query.request.request_id}"

        def per_unit_occupancy(phase: PhaseCost) -> Dict[str, float]:
            """Per-second occupancy of one phase, capacity-adjusted."""
            if capacity is None:
                return {
                    resource: busy / phase.seconds
                    for resource, busy in phase.occupancy.items()
                }
            demands: Dict[str, float] = {}
            for resource, busy in phase.occupancy.items():
                factor = capacity(resource)
                if not 0.0 < factor <= 1.0:
                    raise ValueError(
                        f"capacity factor for {resource!r} must be in "
                        f"(0, 1]: {factor}"
                    )
                demands[resource] = busy / (phase.seconds * factor)
            return demands

        def per_unit_demands() -> Dict[int, Dict[str, float]]:
            """Per-second occupancy of every active query's phase."""
            demands: Dict[int, Dict[str, float]] = {}
            for request_id, record in active.items():
                phase = record.phase()
                if phase.seconds <= 0:
                    demands[request_id] = {}
                    continue
                demands[request_id] = per_unit_occupancy(phase)
            return demands

        def advance_progress(now: float) -> None:
            for record in active.values():
                elapsed = now - record.updated
                if elapsed > 0:
                    record.remaining -= elapsed * record.rate
                record.updated = now

        def release(query: ServedQuery, now: float) -> None:
            """Return the admission share of an evicted query (once)."""
            request_id = query.request.request_id
            if request_id in holding:
                holding.discard(request_id)
                if on_evict is not None:
                    on_evict(query, now)

        def drop_deadline(query: ServedQuery) -> None:
            event = deadline_events.pop(query.request.request_id, None)
            if event is not None:
                sim.cancel_event(event)

        def enter_phase(record: _Active, now: float) -> bool:
            """Advance past zero-second phases, firing the fault hook at
            each real phase boundary; True when the query left the
            active set (finished, faulted, or retried)."""
            while record.phase_index < len(record.query.phases):
                phase = record.phase()
                if phase.seconds > 0:
                    if record.remaining <= 0:
                        record.remaining = phase.seconds
                    if fault is not None:
                        injected = fault(
                            record.query,
                            record.phase_index,
                            record.attempt,
                            now,
                        )
                        if injected is not None:
                            handle_fault(record, injected, now)
                            return True
                    return False
                record.phase_index += 1
                record.remaining = 0.0
            finish_query(record, now)
            return True

        def finish_query(record: _Active, now: float) -> None:
            query = record.query
            query.finish = now
            del active[query.request.request_id]
            holding.discard(query.request.request_id)
            drop_deadline(query)
            outcome.finished.append(query)
            if on_finish is not None:
                on_finish(query, now)
            start_waiting(now)

        def handle_fault(
            record: _Active, injected: PhaseFault, now: float
        ) -> None:
            """Evict a faulted query: resubmit with backoff or fail."""
            query = record.query
            request_id = query.request.request_id
            if request_id in active:
                del active[request_id]
            if injected.retry_delay is not None:
                query.retries += 1
                outcome.retries += 1
                release(query, now)
                retry_events[request_id] = sim.schedule_at(
                    now + injected.retry_delay,
                    make_retry(query, record.attempt + 1),
                )
            else:
                query.finish = now
                query.cancelled_at = now
                query.outcome = OUTCOME_FAILED
                release(query, now)
                drop_deadline(query)
                outcome.failed.append(query)
            start_waiting(now)

        def cancel_on_deadline(query: ServedQuery, now: float) -> None:
            """Common terminal bookkeeping of a fired deadline."""
            query.finish = now
            query.cancelled_at = now
            query.outcome = OUTCOME_DEADLINE
            release(query, now)
            outcome.deadline_exceeded.append(query)

        def shed(
            query: ServedQuery, reason: str, detail: float, now: float
        ) -> None:
            drop_deadline(query)
            outcome.shed.append(
                ShedQuery(
                    request=query.request,
                    reason=reason,
                    detail=detail,
                    at=now,
                )
            )
            if on_shed is not None:
                on_shed(query, reason, detail, now)

        def predicted_stretch(query: ServedQuery, now: float) -> float:
            """Stretch the newcomer's dominant phase would suffer now.

            The newcomer's longest phase (the one dominating its solo
            cost) is solved against the current active set; the
            threshold is relative to solo speed, so ``1/rate`` is the
            predicted stretch — 1.0 means the machine has headroom.
            """
            dominant: Optional[PhaseCost] = None
            for phase in query.phases:
                if phase.seconds <= 0:
                    continue
                if dominant is None or phase.seconds > dominant.seconds:
                    dominant = phase
            if dominant is None or not dominant.occupancy:
                return 1.0
            advance_progress(now)
            demands = per_unit_demands()
            solver_input = {
                demand_key(record): demands[request_id]
                for request_id, record in active.items()
            }
            candidate_key = f"candidate-{query.request.request_id}"
            solver_input[candidate_key] = per_unit_occupancy(dominant)
            rates = solve_concurrent_rates(
                solver_input, tolerance=self.tolerance
            )
            rate = min(1.0, rates[candidate_key])
            if rate <= 0:
                return float("inf")
            return 1.0 / rate

        def start_waiting(now: float) -> None:
            """Move queued queries into freed active slots (FIFO)."""
            while (
                waiting
                and policy.max_active is not None
                and len(active) < policy.max_active
            ):
                record = waiting.pop(0)
                begin(record, now)

        def begin(record: _Active, now: float) -> None:
            """Start (or resume after dequeue) one admitted query."""
            query = record.query
            query.start = now if record.attempt == 0 else query.start
            record.updated = now
            active[query.request.request_id] = record
            if enter_phase(record, now):
                return
            outcome.peak_concurrency = max(
                outcome.peak_concurrency, len(active)
            )
            resolve(sim)

        def admit_and_start(
            query: ServedQuery, attempt: int, simulator: Simulator
        ) -> None:
            """The arrival/resubmission path: shed -> admit -> start."""
            now = simulator.now
            would_queue = (
                policy.max_active is not None
                and len(active) >= policy.max_active
            )
            if would_queue:
                if (
                    policy.queue_depth is not None
                    and len(waiting) >= policy.queue_depth
                ):
                    shed(query, SHED_QUEUE_FULL, float(len(waiting)), now)
                    return
            elif policy.stretch_limit is not None and active:
                stretch = predicted_stretch(query, now)
                if stretch > policy.stretch_limit:
                    shed(query, SHED_STRETCH, stretch, now)
                    return
            if admit is not None and not admit(query, now):
                drop_deadline(query)
                outcome.dropped.append(query)
                return
            holding.add(query.request.request_id)
            if attempt == 0 and query.request.deadline is not None:
                deadline_events[query.request.request_id] = (
                    simulator.schedule_at(
                        query.request.arrival + query.request.deadline,
                        make_deadline(query),
                    )
                )
            record = _Active(query=query, updated=now, attempt=attempt)
            if would_queue:
                query.start = now if attempt == 0 else query.start
                waiting.append(record)
                return
            begin(record, now)

        def resolve(simulator: Simulator) -> None:
            """Re-solve rates and re-schedule every completion."""
            nonlocal epoch
            epoch += 1
            outcome.resolves += 1
            if not active:
                return
            now = simulator.now
            advance_progress(now)
            demands = per_unit_demands()
            solver_input = {
                demand_key(record): demands[request_id]
                for request_id, record in active.items()
            }
            rates = solve_concurrent_rates(
                solver_input, tolerance=self.tolerance
            )
            for request_id, record in active.items():
                solved = rates[demand_key(record)]
                # A query never runs faster than solo: per-unit demand
                # is occupancy per solo-second, so rate 1.0 reproduces
                # the solo duration exactly.
                record.rate = min(1.0, solved)
                if record.rate <= 0:
                    raise SchedulerError(
                        [(request_id, record.phase_index, record.remaining)],
                        now,
                    )
                eta = now + record.remaining / record.rate
                simulator.schedule_at(
                    eta,
                    make_completion(request_id, record.phase_index, epoch),
                )

        def make_completion(request_id: int, phase_index: int, when: int):
            def completion(simulator: Simulator) -> None:
                if when != epoch:
                    return  # superseded by a later arrival/completion
                record = active.get(request_id)
                if record is None or record.phase_index != phase_index:
                    return
                now = simulator.now
                advance_progress(now)
                phase = record.phase()
                if record.remaining > _REMAINING_EPSILON * max(
                    1.0, phase.seconds
                ):
                    # Drift between the scheduled eta and accumulated
                    # progress; re-solve and let a fresh event land it.
                    resolve(simulator)
                    return
                record.phase_index += 1
                record.remaining = 0.0
                enter_phase(record, now)
                resolve(simulator)

            return completion

        def make_deadline(query: ServedQuery):
            def deadline(simulator: Simulator) -> None:
                request_id = query.request.request_id
                deadline_events.pop(request_id, None)
                now = simulator.now
                record = active.get(request_id)
                if record is not None:
                    # Cancel mid-phase: bank the progress accumulated so
                    # far, evict, then re-solve so survivors' remaining
                    # work and completion etas are repaired.
                    advance_progress(now)
                    del active[request_id]
                    cancel_on_deadline(query, now)
                    start_waiting(now)
                    resolve(simulator)
                    return
                for index, queued in enumerate(waiting):
                    if queued.query.request.request_id == request_id:
                        del waiting[index]
                        cancel_on_deadline(query, now)
                        return
                retry_event = retry_events.pop(request_id, None)
                if retry_event is not None:
                    # Expired during retry backoff: the admission share
                    # was already released at eviction time.
                    simulator.cancel_event(retry_event)
                    cancel_on_deadline(query, now)

            return deadline

        def make_retry(query: ServedQuery, attempt: int):
            def retry(simulator: Simulator) -> None:
                retry_events.pop(query.request.request_id, None)
                admit_and_start(query, attempt, simulator)

            return retry

        def make_arrival(query: ServedQuery):
            def arrival(simulator: Simulator) -> None:
                admit_and_start(query, 0, simulator)

            return arrival

        for query in sorted(
            queries,
            key=lambda q: (q.request.arrival, q.request.request_id),
        ):
            sim.schedule_at(query.request.arrival, make_arrival(query))

        outcome.makespan = sim.run()
        if active or waiting:
            stuck = sorted(
                [
                    (request_id, record.phase_index, record.remaining)
                    for request_id, record in active.items()
                ]
                + [
                    (
                        record.query.request.request_id,
                        record.phase_index,
                        record.remaining,
                    )
                    for record in waiting
                ]
            )
            raise SchedulerError(stuck, sim.now)
        return outcome


__all__ = [
    "ContentionScheduler",
    "PhaseFault",
    "ScheduleOutcome",
    "SchedulerError",
]
