"""DES-backed contention scheduler: many queries, one machine.

Single-query execution prices a plan as if the query owned the whole
machine.  Under serving traffic that is exactly wrong — co-running
queries fight for the same memory channels and interconnect links the
paper's Section 6 co-processing already models *within* one query.
This scheduler extends that model *across* queries:

* each admitted query runs its solo-priced phases **sequentially**
  (a phase is ``solo_seconds`` of work, with a per-second resource
  occupancy vector taken from its :class:`~repro.costmodel.model.
  PhaseCost`);
* all currently-active phases contend: their per-unit occupancy
  vectors go through :func:`~repro.sim.resources.solve_concurrent_
  rates`, and each query progresses at the solved (max-min fair) rate,
  clamped to 1.0 so a query alone finishes in exactly its solo time —
  serving can only stretch a query, never speed it up;
* arrivals and phase completions are events on a deterministic
  :class:`~repro.sim.engine.Simulator`; every event re-solves the rate
  vector and re-schedules the now-stale completion times
  (epoch-guarded, so superseded events no-op).

Arrivals are scheduled at *absolute* virtual timestamps
(``schedule_at``), and completion times are ``now + remaining/rate``
sums — both paths that motivated the simulator-clock epsilon fixes
this layer is built on.

This module is the only sanctioned driver of ``Simulator.run`` for
multi-query workloads (enforced by the ``executor-boundary`` analysis
pass); everything else goes through the single-query
:class:`~repro.plan.PlanExecutor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.costmodel.model import PhaseCost
from repro.sim.engine import Simulator
from repro.sim.resources import solve_concurrent_rates

from repro.serve.request import ServedQuery

#: remaining work below this fraction of a phase counts as finished
#: (absorbs the float error of progress-accumulation across events).
_REMAINING_EPSILON = 1e-12

#: admission callback: (query, now) -> admitted?  Returning False drops
#: the query (the service records the typed rejection).
AdmitHook = Callable[[ServedQuery, float], bool]
#: completion callback: (query, now) — quota release, metrics.
FinishHook = Callable[[ServedQuery, float], None]


@dataclass
class _Active:
    """One query currently on the machine."""

    query: ServedQuery
    phase_index: int = 0
    #: solo-seconds of work left in the current phase.
    remaining: float = 0.0
    #: currently-solved progress rate (solo-seconds per virtual second).
    rate: float = 1.0
    #: virtual time of the last progress update.
    updated: float = 0.0

    def phase(self) -> PhaseCost:
        return self.query.phases[self.phase_index]


@dataclass
class ScheduleOutcome:
    """What one scheduler run did to the admitted queries."""

    finished: List[ServedQuery] = field(default_factory=list)
    dropped: List[ServedQuery] = field(default_factory=list)
    makespan: float = 0.0
    peak_concurrency: int = 0
    #: how many times the rate vector was re-solved (events processed).
    resolves: int = 0


class ContentionScheduler:
    """Multiplexes admitted queries over one simulated machine."""

    def __init__(self, tolerance: float = 1e-9) -> None:
        self.tolerance = tolerance

    def run(
        self,
        queries: Sequence[ServedQuery],
        admit: Optional[AdmitHook] = None,
        on_finish: Optional[FinishHook] = None,
    ) -> ScheduleOutcome:
        """Serve ``queries`` (arrival order) and stamp start/finish.

        ``admit`` runs at each query's arrival event against the
        *current* in-flight population; rejected queries are dropped
        and reported in :attr:`ScheduleOutcome.dropped`.
        """
        sim = Simulator()
        outcome = ScheduleOutcome()
        active: Dict[int, _Active] = {}
        epoch = 0

        def demand_key(record: _Active) -> str:
            return f"q{record.query.request.request_id}"

        def per_unit_demands() -> Dict[int, Dict[str, float]]:
            """Per-second occupancy of every active query's phase."""
            demands: Dict[int, Dict[str, float]] = {}
            for request_id, record in active.items():
                phase = record.phase()
                if phase.seconds <= 0:
                    demands[request_id] = {}
                    continue
                demands[request_id] = {
                    resource: busy / phase.seconds
                    for resource, busy in phase.occupancy.items()
                }
            return demands

        def advance_progress(now: float) -> None:
            for record in active.values():
                elapsed = now - record.updated
                if elapsed > 0:
                    record.remaining -= elapsed * record.rate
                record.updated = now

        def skip_empty_phases(record: _Active, now: float) -> bool:
            """Advance past zero-second phases; True when query done."""
            while record.phase_index < len(record.query.phases):
                phase = record.phase()
                if phase.seconds > 0:
                    if record.remaining <= 0:
                        record.remaining = phase.seconds
                    return False
                record.phase_index += 1
                record.remaining = 0.0
            finish_query(record, now)
            return True

        def finish_query(record: _Active, now: float) -> None:
            query = record.query
            query.finish = now
            del active[query.request.request_id]
            outcome.finished.append(query)
            if on_finish is not None:
                on_finish(query, now)

        def resolve(simulator: Simulator) -> None:
            """Re-solve rates and re-schedule every completion."""
            nonlocal epoch
            epoch += 1
            outcome.resolves += 1
            if not active:
                return
            now = simulator.now
            advance_progress(now)
            demands = per_unit_demands()
            solver_input = {
                demand_key(record): demands[request_id]
                for request_id, record in active.items()
            }
            rates = solve_concurrent_rates(
                solver_input, tolerance=self.tolerance
            )
            for request_id, record in active.items():
                solved = rates[demand_key(record)]
                # A query never runs faster than solo: per-unit demand
                # is occupancy per solo-second, so rate 1.0 reproduces
                # the solo duration exactly.
                record.rate = min(1.0, solved)
                if record.rate <= 0:
                    raise RuntimeError(
                        f"starved query {request_id}: rate {record.rate}"
                    )
                eta = now + record.remaining / record.rate
                simulator.schedule_at(
                    eta,
                    make_completion(request_id, record.phase_index, epoch),
                )

        def make_completion(request_id: int, phase_index: int, when: int):
            def completion(simulator: Simulator) -> None:
                if when != epoch:
                    return  # superseded by a later arrival/completion
                record = active.get(request_id)
                if record is None or record.phase_index != phase_index:
                    return
                now = simulator.now
                advance_progress(now)
                phase = record.phase()
                if record.remaining > _REMAINING_EPSILON * max(
                    1.0, phase.seconds
                ):
                    # Drift between the scheduled eta and accumulated
                    # progress; re-solve and let a fresh event land it.
                    resolve(simulator)
                    return
                record.phase_index += 1
                record.remaining = 0.0
                skip_empty_phases(record, now)
                resolve(simulator)

            return completion

        def make_arrival(query: ServedQuery):
            def arrival(simulator: Simulator) -> None:
                now = simulator.now
                if admit is not None and not admit(query, now):
                    outcome.dropped.append(query)
                    return
                query.start = now
                record = _Active(query=query, updated=now)
                active[query.request.request_id] = record
                if skip_empty_phases(record, now):
                    return
                outcome.peak_concurrency = max(
                    outcome.peak_concurrency, len(active)
                )
                resolve(simulator)

            return arrival

        for query in sorted(
            queries,
            key=lambda q: (q.request.arrival, q.request.request_id),
        ):
            sim.schedule_at(query.request.arrival, make_arrival(query))

        outcome.makespan = sim.run()
        if active:
            stuck = sorted(active)
            raise RuntimeError(
                f"scheduler drained with unfinished queries: {stuck}"
            )
        return outcome


__all__ = ["ContentionScheduler", "ScheduleOutcome"]
