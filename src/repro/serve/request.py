"""Request/response records of the multi-query serving engine.

A :class:`QueryRequest` names a workload from the shared
:mod:`repro.logical.explain` registry, the tenant submitting it, its
virtual arrival time, and (optionally) a deadline — a latency budget in
virtual seconds the scheduler enforces by cancelling the query
mid-phase when it expires.  The service answers with a
:class:`ServedQuery`: the solo-priced phases, the contention-stretched
start/finish times the scheduler assigned, the terminal outcome the
resilience layer decided (finished / deadline-exceeded / failed), and a
per-query schema-versioned manifest whose ``serving`` section
(:meth:`ServingRecord.section`) records how the shared machine treated
this query — arrival-to-finish latency, solo seconds, stretch, retries,
cancellation time, and the workload's circuit-breaker state.

Requests turned away *before* running land in two typed buckets:
:class:`Rejection` (admission quota or open breaker) and
:class:`ShedQuery` (overload control — bounded queue or predicted
stretch).  :meth:`ServingReport.conservation` accounts for every
submitted request across all five terminal buckets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.costmodel.model import PhaseCost

from repro.serve.policy import (
    OUTCOME_DEADLINE,
    OUTCOME_FAILED,
    OUTCOME_FINISHED,
    OUTCOMES,
    ShedError,
)

#: version of the per-query ``serving`` manifest section.  ``1.1``
#: added the resilience fields: ``outcome``, ``deadline``,
#: ``cancelled_at``, ``retries``, ``shed_reason``, ``breaker_state``.
SERVING_SCHEMA_VERSION = "1.1"


@dataclass(frozen=True)
class QueryRequest:
    """One submitted query: who wants what, and when it arrives."""

    request_id: int
    tenant: str
    workload: str
    machine: str
    #: virtual arrival time (seconds on the serving simulator's clock).
    arrival: float
    #: latency budget in virtual seconds from ``arrival`` (None = no
    #: deadline).  The scheduler cancels the query — mid-phase, wherever
    #: it is — when ``arrival + deadline`` passes before completion.
    deadline: Optional[float] = None

    @property
    def absolute_deadline(self) -> Optional[float]:
        """The virtual timestamp the deadline fires at, or None."""
        if self.deadline is None:
            return None
        return self.arrival + self.deadline

    def describe(self) -> str:
        """One-line human-readable summary of the request."""
        budget = (
            f" deadline={self.deadline:.6f}s" if self.deadline is not None else ""
        )
        return (
            f"request #{self.request_id} [{self.tenant}] "
            f"{self.workload}@{self.machine} at t={self.arrival:.6f}{budget}"
        )


@dataclass
class ServingRecord:
    """The serving-layer outcome of one query (manifest section)."""

    request_id: int
    tenant: str
    workload: str
    machine: str
    arrival: float
    start: float
    finish: float
    solo_seconds: float
    cache_hit: bool
    #: terminal state: one of :data:`repro.serve.policy.OUTCOMES`.
    outcome: str = OUTCOME_FINISHED
    #: the request's latency budget (virtual seconds), or None.
    deadline: Optional[float] = None
    #: virtual time the query was cancelled (deadline) or failed, None
    #: for completed queries.
    cancelled_at: Optional[float] = None
    #: serving-level resubmissions this query consumed.
    retries: int = 0
    #: typed shed reason — always None here (shed requests never run;
    #: they are reported as :class:`ShedQuery`), kept in the schema so
    #: the section's key set states the full vocabulary.
    shed_reason: Optional[str] = None
    #: the workload's circuit-breaker state when the query terminated,
    #: or None when no breaker was configured (the inert default).
    breaker_state: Optional[str] = None

    def __post_init__(self) -> None:
        if self.outcome not in OUTCOMES:
            raise ValueError(
                f"unknown serving outcome {self.outcome!r}; valid: "
                + ", ".join(OUTCOMES)
            )

    @property
    def latency(self) -> float:
        """Arrival-to-termination virtual latency (queueing + stretch)."""
        return self.finish - self.arrival

    @property
    def stretch(self) -> float:
        """Latency over solo runtime; 1.0 means no contention."""
        if self.solo_seconds <= 0:
            return 1.0
        return self.latency / self.solo_seconds

    def section(self) -> Dict[str, Any]:
        """The manifest's ``serving`` section (schema-checked)."""
        return {
            "schema_version": SERVING_SCHEMA_VERSION,
            "request_id": self.request_id,
            "tenant": self.tenant,
            "workload": self.workload,
            "machine": self.machine,
            "arrival": self.arrival,
            "start": self.start,
            "finish": self.finish,
            "latency": self.latency,
            "solo_seconds": self.solo_seconds,
            "stretch": self.stretch,
            "cache_hit": self.cache_hit,
            "outcome": self.outcome,
            "deadline": self.deadline,
            "cancelled_at": self.cancelled_at,
            "retries": self.retries,
            "shed_reason": self.shed_reason,
            "breaker_state": self.breaker_state,
        }


@dataclass
class ServedQuery:
    """One admitted query: priced phases in, scheduled times out."""

    request: QueryRequest
    #: the solo-priced phase costs the scheduler stretches.
    phases: List[PhaseCost]
    #: dependency-aware solo makespan (contention-free latency).
    solo_seconds: float
    cache_hit: bool = False
    #: the solo manifest dict (no ``serving`` section yet); the service
    #: deep-copies it and stamps the serving record in after scheduling.
    manifest: Dict[str, Any] = field(default_factory=dict)
    #: filled by the scheduler (virtual seconds).  ``finish`` is the
    #: time the query *terminated* — completion, cancellation, or
    #: failure; ``outcome`` says which.
    start: float = 0.0
    finish: float = 0.0
    outcome: str = OUTCOME_FINISHED
    #: virtual time a deadline/failure removed the query mid-flight.
    cancelled_at: Optional[float] = None
    #: serving-level resubmissions consumed (fault retries).
    retries: int = 0
    #: the workload's circuit-breaker state at termination (None when
    #: no breaker was configured).
    breaker_state: Optional[str] = None

    @property
    def latency(self) -> float:
        return self.finish - self.request.arrival

    def serving_record(self) -> ServingRecord:
        """This query's ``serving`` manifest-section record."""
        return ServingRecord(
            request_id=self.request.request_id,
            tenant=self.request.tenant,
            workload=self.request.workload,
            machine=self.request.machine,
            arrival=self.request.arrival,
            start=self.start,
            finish=self.finish,
            solo_seconds=self.solo_seconds,
            cache_hit=self.cache_hit,
            outcome=self.outcome,
            deadline=self.request.deadline,
            cancelled_at=self.cancelled_at,
            retries=self.retries,
            breaker_state=self.breaker_state,
        )


@dataclass
class Rejection:
    """One request turned away before running (quota or open breaker)."""

    request: QueryRequest
    #: the typed error: :class:`repro.serve.admission.AdmissionError`
    #: or :class:`repro.serve.policy.CircuitOpenError`.
    error: Exception

    def describe(self) -> str:
        return f"{self.request.describe()} — rejected: {self.error}"


@dataclass
class ShedQuery:
    """One request load-shed by overload control (typed, pre-admission)."""

    request: QueryRequest
    #: one of :data:`repro.serve.policy.SHED_REASONS`.
    reason: str
    #: the observed value that tripped the policy (queue depth or
    #: predicted stretch).
    detail: float
    #: virtual time the shed decision was made.
    at: float

    def describe(self) -> str:
        """One-line human-readable summary of the shed decision."""
        return (
            f"{self.request.describe()} — shed at t={self.at:.6f} "
            f"({self.reason}: {self.detail:g})"
        )

    def as_error(self) -> "ShedError":
        """This shed decision as its typed error (for raising callers)."""
        return ShedError(
            reason=self.reason,
            request_id=self.request.request_id,
            detail=self.detail,
        )


@dataclass
class ServingReport:
    """Everything one :meth:`QueryService.serve` call produced."""

    #: queries that ran to completion.
    served: List[ServedQuery]
    #: requests turned away before running (quota or open breaker).
    rejections: List[Rejection]
    #: plan/result cache counters (``PlanCache.stats()``).
    cache: Dict[str, Any]
    #: virtual time the last query finished.
    makespan: float
    #: most queries simultaneously active on the simulated machine.
    peak_concurrency: int
    #: queries cancelled mid-flight by their deadline.
    deadline_exceeded: List[ServedQuery] = field(default_factory=list)
    #: queries that terminally failed (retry budget spent, or the
    #: half-open probe of an open breaker failed again).
    failed: List[ServedQuery] = field(default_factory=list)
    #: requests load-shed by overload control.
    shed: List[ShedQuery] = field(default_factory=list)
    #: per-workload circuit-breaker counters (``CircuitBreaker.snapshot``).
    breaker: Dict[str, Any] = field(default_factory=dict)
    #: serving-level resilience audit (``ResilienceLog.section`` dump)
    #: for chaos runs; None when no fault plan was installed.
    resilience: Optional[Dict[str, Any]] = None

    def latencies(self) -> List[float]:
        """Per-query virtual latencies in request-id order."""
        ordered = sorted(self.served, key=lambda q: q.request.request_id)
        return [q.latency for q in ordered]

    def latency_percentile(self, fraction: float) -> float:
        """Nearest-rank percentile of the served latencies."""
        return percentile(self.latencies(), fraction)

    def query(self, request_id: int) -> Optional[ServedQuery]:
        """The terminated query with ``request_id``, or ``None``."""
        for bucket in (self.served, self.deadline_exceeded, self.failed):
            for served in bucket:
                if served.request.request_id == request_id:
                    return served
        return None

    def outcome_counts(self) -> Dict[str, int]:
        """Terminal-bucket sizes, zero-filled (report/bench input)."""
        return {
            OUTCOME_FINISHED: len(self.served),
            OUTCOME_DEADLINE: len(self.deadline_exceeded),
            OUTCOME_FAILED: len(self.failed),
            "rejected": len(self.rejections),
            "shed": len(self.shed),
        }

    def total_retries(self) -> int:
        """Serving-level resubmissions across every terminated query."""
        return sum(
            q.retries
            for bucket in (self.served, self.deadline_exceeded, self.failed)
            for q in bucket
        )

    def conservation(self, submitted: int) -> bool:
        """Every submitted request landed in exactly one terminal bucket."""
        return submitted == sum(self.outcome_counts().values())


def percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"percentile fraction out of range: {fraction}")
    ordered = sorted(values)
    rank = math.ceil(fraction * len(ordered))
    rank = min(len(ordered), max(1, rank))
    return ordered[rank - 1]
