"""Request/response records of the multi-query serving engine.

A :class:`QueryRequest` names a workload from the shared
:mod:`repro.logical.explain` registry, the tenant submitting it, and
its virtual arrival time.  The service answers with a
:class:`ServedQuery`: the solo-priced phases, the contention-stretched
start/finish times the scheduler assigned, and a per-query
schema-versioned manifest whose ``serving`` section
(:meth:`ServingRecord.section`) records how the shared machine treated
this query — arrival-to-finish latency, solo seconds, and the stretch
factor between them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.costmodel.model import PhaseCost

#: version of the per-query ``serving`` manifest section.
SERVING_SCHEMA_VERSION = "1.0"


@dataclass(frozen=True)
class QueryRequest:
    """One submitted query: who wants what, and when it arrives."""

    request_id: int
    tenant: str
    workload: str
    machine: str
    #: virtual arrival time (seconds on the serving simulator's clock).
    arrival: float

    def describe(self) -> str:
        """One-line human-readable summary of the request."""
        return (
            f"request #{self.request_id} [{self.tenant}] "
            f"{self.workload}@{self.machine} at t={self.arrival:.6f}"
        )


@dataclass
class ServingRecord:
    """The serving-layer outcome of one query (manifest section)."""

    request_id: int
    tenant: str
    workload: str
    machine: str
    arrival: float
    start: float
    finish: float
    solo_seconds: float
    cache_hit: bool

    @property
    def latency(self) -> float:
        """Arrival-to-finish virtual latency (queueing + stretch)."""
        return self.finish - self.arrival

    @property
    def stretch(self) -> float:
        """Latency over solo runtime; 1.0 means no contention."""
        if self.solo_seconds <= 0:
            return 1.0
        return self.latency / self.solo_seconds

    def section(self) -> Dict[str, Any]:
        """The manifest's ``serving`` section (schema-checked)."""
        return {
            "schema_version": SERVING_SCHEMA_VERSION,
            "request_id": self.request_id,
            "tenant": self.tenant,
            "workload": self.workload,
            "machine": self.machine,
            "arrival": self.arrival,
            "start": self.start,
            "finish": self.finish,
            "latency": self.latency,
            "solo_seconds": self.solo_seconds,
            "stretch": self.stretch,
            "cache_hit": self.cache_hit,
        }


@dataclass
class ServedQuery:
    """One admitted query: priced phases in, scheduled times out."""

    request: QueryRequest
    #: the solo-priced phase costs the scheduler stretches.
    phases: List[PhaseCost]
    #: dependency-aware solo makespan (contention-free latency).
    solo_seconds: float
    cache_hit: bool = False
    #: the solo manifest dict (no ``serving`` section yet); the service
    #: deep-copies it and stamps the serving record in after scheduling.
    manifest: Dict[str, Any] = field(default_factory=dict)
    #: filled by the scheduler (virtual seconds).
    start: float = 0.0
    finish: float = 0.0

    @property
    def latency(self) -> float:
        return self.finish - self.request.arrival

    def serving_record(self) -> ServingRecord:
        """This query's ``serving`` manifest-section record."""
        return ServingRecord(
            request_id=self.request.request_id,
            tenant=self.request.tenant,
            workload=self.request.workload,
            machine=self.request.machine,
            arrival=self.request.arrival,
            start=self.start,
            finish=self.finish,
            solo_seconds=self.solo_seconds,
            cache_hit=self.cache_hit,
        )


@dataclass
class Rejection:
    """One request the admission controller turned away."""

    request: QueryRequest
    #: the typed :class:`repro.serve.admission.AdmissionError`.
    error: Exception

    def describe(self) -> str:
        return f"{self.request.describe()} — rejected: {self.error}"


@dataclass
class ServingReport:
    """Everything one :meth:`QueryService.serve` call produced."""

    served: List[ServedQuery]
    rejections: List[Rejection]
    #: plan/result cache counters (``PlanCache.stats()``).
    cache: Dict[str, Any]
    #: virtual time the last query finished.
    makespan: float
    #: most queries simultaneously active on the simulated machine.
    peak_concurrency: int

    def latencies(self) -> List[float]:
        """Per-query virtual latencies in request-id order."""
        ordered = sorted(self.served, key=lambda q: q.request.request_id)
        return [q.latency for q in ordered]

    def latency_percentile(self, fraction: float) -> float:
        """Nearest-rank percentile of the served latencies."""
        return percentile(self.latencies(), fraction)

    def query(self, request_id: int) -> Optional[ServedQuery]:
        """The served query with ``request_id``, or ``None``."""
        for served in self.served:
            if served.request.request_id == request_id:
                return served
        return None


def percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"percentile fraction out of range: {fraction}")
    ordered = sorted(values)
    rank = math.ceil(fraction * len(ordered))
    rank = min(len(ordered), max(1, rank))
    return ordered[rank - 1]
