"""The serving front door: submit queries, serve them, get manifests.

:class:`QueryService` is the entry point of the multi-query engine
(ROADMAP item 1).  Callers — a thread pool, a load generator, a test —
``submit()`` requests naming a workload from the shared
:mod:`repro.logical.explain` registry; ``serve()`` then:

1. **compiles** each distinct workload through the logical layer
   (:func:`repro.logical.optimizer.optimize`) and prices the chosen
   plan with a *fresh* :class:`~repro.obs.Observability` bundle and
   cost model per workload — per-query metrics and spans can never
   bleed between co-running queries because no two queries ever share
   a registry (pinned by the isolation tests);
2. **caches** the priced artifact by workload fingerprint
   (:mod:`repro.serve.cache`), so repeat requests skip the optimizer's
   search-space enumeration entirely;
3. **admits** each request against its workload's circuit breaker and
   its tenant's quota at its virtual arrival time
   (:mod:`repro.serve.admission`), converting typed
   :class:`~repro.serve.admission.AdmissionError` /
   :class:`~repro.serve.policy.CircuitOpenError` rejections into
   report entries instead of aborting the run;
4. **schedules** the admitted queries over one simulated machine
   (:mod:`repro.serve.scheduler`), where overlapping phases contend
   through the max-min fair rate solver — with the resilience layer
   active: per-request deadlines cancel overrunning queries mid-phase,
   an installed :class:`~repro.faults.FaultPlan` can fail in-flight
   queries (resubmitted with the policy's capped virtual-time backoff)
   or degrade link capacity mid-serving, and overload beyond the
   policy's bounds is load-shed with typed reasons;
5. **stamps** each terminated query's manifest with a schema-versioned
   ``serving`` section (arrival, start, finish, latency, stretch,
   cache hit, outcome, deadline, cancellation time, retries, breaker
   state) and returns everything as a
   :class:`~repro.serve.request.ServingReport`, then audits that every
   admission share returned exactly to zero.

``submit()`` is thread-safe (a lock guards the request log); the serve
pass itself is deterministic and single-threaded — virtual time, not
wall-clock, decides every latency, backoff, and breaker transition.
With no fault plan installed and the default (inert)
:class:`~repro.serve.policy.ServicePolicy`, a serve pass is
bit-identical to the fair-weather PR 9 engine.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Mapping, Optional

from repro.costmodel.calibration import DEFAULT_CALIBRATION, Calibration
from repro.costmodel.model import CostModel
from repro.faults.plan import FaultPlan, QueryFault
from repro.faults.resilience import ResilienceLog
from repro.faults.runtime import active_plan
from repro.logical.algebra import Scan
from repro.logical.explain import MACHINES, WORKLOADS
from repro.logical.optimizer import optimize
from repro.obs import Observability
from repro.obs.manifest import build_manifest
from repro.plan import PlanExecutor

from repro.serve.admission import (
    AdmissionController,
    AdmissionError,
    TenantQuota,
)
from repro.serve.cache import (
    PlanCache,
    PlanCacheEntry,
    workload_fingerprint,
)
from repro.serve.policy import CircuitOpenError, ServicePolicy
from repro.serve.request import (
    QueryRequest,
    Rejection,
    ServedQuery,
    ServingReport,
)
from repro.serve.scheduler import ContentionScheduler, PhaseFault


def modeled_query_bytes(query: Any) -> float:
    """Modeled input bytes of a logical query: sum over its scans.

    This is the paper-scale data volume the cost model prices (what a
    tenant's quota should meter), not the scaled-down executed arrays.
    """
    root = query.node if hasattr(query, "node") else query
    total = 0.0
    for node in root.walk():
        if isinstance(node, Scan):
            total += node.modeled_rows * sum(node.column_bytes())
    return total


class QueryService:
    """Front door of the multi-query serving engine."""

    def __init__(
        self,
        machine: str = "ibm-ac922",
        quotas: Optional[Mapping[str, TenantQuota]] = None,
        default_quota: Optional[TenantQuota] = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
        cache: Optional[PlanCache] = None,
        policy: Optional[ServicePolicy] = None,
    ) -> None:
        if machine not in MACHINES:
            raise KeyError(
                f"unknown machine {machine!r}; valid: "
                f"{', '.join(sorted(MACHINES))}"
            )
        self.machine_name = machine
        self.calibration = calibration
        self.admission = AdmissionController(
            quotas=quotas,
            default=default_quota
            if default_quota is not None
            else TenantQuota(),
        )
        self.cache = cache if cache is not None else PlanCache()
        self.scheduler = ContentionScheduler()
        self.policy = policy if policy is not None else ServicePolicy()
        #: persistent across serve passes: an opened circuit stays open
        #: into the next pass until its (virtual-time) cooldown elapses.
        self.breaker = self.policy.build_breaker()
        self._lock = threading.Lock()
        self._requests: List[QueryRequest] = []
        self._next_id = 0

    # ------------------------------------------------------------------
    # Front door
    # ------------------------------------------------------------------
    def submit(
        self,
        tenant: str,
        workload: str,
        arrival: float,
        deadline: Optional[float] = None,
    ) -> QueryRequest:
        """Register a request (thread-safe); served on ``serve()``.

        ``deadline`` is a latency budget in virtual seconds from
        ``arrival``; omitted, the policy's ``default_deadline`` (if
        any) applies.
        """
        if workload not in WORKLOADS:
            raise KeyError(
                f"unknown workload {workload!r}; valid: "
                f"{', '.join(sorted(WORKLOADS))}"
            )
        if arrival < 0:
            raise ValueError(f"arrival must be >= 0, got {arrival}")
        if deadline is None:
            deadline = self.policy.default_deadline
        elif deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        with self._lock:
            request = QueryRequest(
                request_id=self._next_id,
                tenant=tenant,
                workload=workload,
                machine=self.machine_name,
                arrival=arrival,
                deadline=deadline,
            )
            self._next_id += 1
            self._requests.append(request)
        return request

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._requests)

    # ------------------------------------------------------------------
    # Pricing (cache-aware)
    # ------------------------------------------------------------------
    def _price_workload(self, workload: str) -> PlanCacheEntry:
        """Optimize + solo-price one workload with isolated obs state."""
        fingerprint = workload_fingerprint(workload, self.machine_name)
        cached = self.cache.get(fingerprint)
        if cached is not None:
            return cached
        _description, build_query = WORKLOADS[workload]
        query = build_query()
        modeled_bytes = modeled_query_bytes(query)
        decision = optimize(
            query,
            MACHINES[self.machine_name](),
            calibration=self.calibration,
            label=workload,
        )
        # Re-execute the chosen plan against a fresh machine, cost
        # model, and observability bundle: the optimizer's own obs saw
        # every candidate it enumerated, and per-query manifests must
        # describe exactly one query's phases.
        machine = MACHINES[self.machine_name]()
        obs = Observability.create()
        model = CostModel(machine, self.calibration, obs=obs)
        result = PlanExecutor(model).execute(decision.chosen_plan)
        manifest = build_manifest(
            kind=f"serve[{fingerprint}]",
            machine=machine,
            phases=result.phase_costs(),
            workload={
                "name": workload,
                "description": WORKLOADS[workload][0],
                "modeled_bytes": modeled_bytes,
            },
            config={"physical": decision.chosen.config.describe()},
            results={
                "solo_seconds": result.makespan,
                "predicted_seconds": decision.chosen.seconds,
            },
            obs=obs,
            calibration=self.calibration,
            optimizer=decision.section(),
        )
        entry = PlanCacheEntry(
            fingerprint=fingerprint,
            phases=result.phase_costs(),
            solo_seconds=result.makespan,
            modeled_bytes=modeled_bytes,
            manifest=manifest.to_dict(),
        )
        self.cache.put(entry)
        return entry

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve(self) -> ServingReport:
        """Price, admit, and schedule everything submitted so far."""
        with self._lock:
            requests = list(self._requests)
            self._requests = []
        requests.sort(key=lambda r: (r.arrival, r.request_id))

        queries: List[ServedQuery] = []
        modeled: Dict[int, float] = {}
        for request in requests:
            hit = (
                workload_fingerprint(request.workload, request.machine)
                in self.cache
            )
            entry = self._price_workload(request.workload)
            modeled[request.request_id] = entry.modeled_bytes
            queries.append(
                ServedQuery(
                    request=request,
                    phases=list(entry.phases),
                    solo_seconds=entry.solo_seconds,
                    cache_hit=hit,
                    manifest=entry.manifest_copy(),
                )
            )

        rejections: List[Rejection] = []
        resilience = ResilienceLog()
        plan: Optional[FaultPlan] = active_plan()

        def admit(query: ServedQuery, now: float) -> bool:
            workload = query.request.workload
            if not self.breaker.allow(workload, now):
                resilience.record(
                    "breaker_fastfail",
                    request_id=query.request.request_id,
                    workload=workload,
                    at=now,
                )
                rejections.append(
                    Rejection(
                        request=query.request,
                        error=CircuitOpenError(
                            workload=workload,
                            request_id=query.request.request_id,
                            opened_at=self.breaker.opened_at(workload),
                        ),
                    )
                )
                return False
            try:
                self.admission.admit(
                    query.request, modeled[query.request.request_id]
                )
            except AdmissionError as error:
                rejections.append(
                    Rejection(request=query.request, error=error)
                )
                return False
            return True

        def on_finish(query: ServedQuery, now: float) -> None:
            self.admission.release(
                query.request, modeled[query.request.request_id]
            )
            if self.breaker.enabled:
                query.breaker_state = self.breaker.record_success(
                    query.request.workload, now
                )

        def on_evict(query: ServedQuery, _now: float) -> None:
            # A deadline cancellation or fault eviction removed an
            # admitted query mid-flight; return its exact ledger share.
            self.admission.release(
                query.request, modeled[query.request.request_id]
            )

        def fault(
            query: ServedQuery, phase_index: int, attempt: int, now: float
        ) -> Optional[PhaseFault]:
            assert plan is not None
            try:
                plan.check_query(
                    workload=query.request.workload,
                    tenant=query.request.tenant,
                    request_id=query.request.request_id,
                    phase_index=phase_index,
                    attempt=attempt,
                )
            except QueryFault as error:
                retry = self.policy.retry
                if attempt + 1 < retry.max_attempts:
                    # delay() is 1-based: the backoff before the next
                    # serving attempt (attempt + 1 in 0-based terms).
                    delay = retry.delay(attempt + 1)
                    resilience.record(
                        "serving_retry",
                        request_id=query.request.request_id,
                        workload=query.request.workload,
                        phase_index=phase_index,
                        attempt=attempt,
                        delay=delay,
                        at=now,
                    )
                    return PhaseFault(retry_delay=delay, reason=str(error))
                # Retry budget spent: terminal failure, counted by the
                # workload's breaker at this virtual time.
                if self.breaker.enabled:
                    query.breaker_state = self.breaker.record_failure(
                        query.request.workload, now
                    )
                return PhaseFault(retry_delay=None, reason=str(error))
            return None

        outcome = self.scheduler.run(
            queries,
            admit=admit,
            on_finish=on_finish,
            on_evict=on_evict,
            fault=fault if plan is not None else None,
            capacity=plan.resource_factor if plan is not None else None,
            policy=self.policy,
        )

        for query in sorted(
            outcome.deadline_exceeded,
            key=lambda q: (q.cancelled_at, q.request.request_id),
        ):
            if self.breaker.enabled:
                query.breaker_state = self.breaker.state(
                    query.request.workload
                )
            resilience.record(
                "deadline_cancel",
                request_id=query.request.request_id,
                workload=query.request.workload,
                deadline=query.request.deadline,
                at=query.cancelled_at,
            )
        for shed in outcome.shed:
            resilience.record(
                "shed",
                request_id=shed.request.request_id,
                workload=shed.request.workload,
                reason=shed.reason,
                detail=shed.detail,
                at=shed.at,
            )
        for query in (
            outcome.finished + outcome.deadline_exceeded + outcome.failed
        ):
            query.manifest["serving"] = query.serving_record().section()
        # Drain invariant: every admission share is back to exactly zero
        # no matter how each query terminated.
        self.admission.audit()
        return ServingReport(
            served=outcome.finished,
            rejections=rejections,
            cache=self.cache.stats(),
            makespan=outcome.makespan,
            peak_concurrency=outcome.peak_concurrency,
            deadline_exceeded=outcome.deadline_exceeded,
            failed=outcome.failed,
            shed=outcome.shed,
            breaker=self.breaker.snapshot(),
            resilience=(
                resilience.section(plan)
                if plan is not None or len(resilience)
                else None
            ),
        )


__all__ = ["QueryService", "modeled_query_bytes"]
