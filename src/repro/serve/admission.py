"""Admission control: per-tenant quotas with typed rejection.

The serving engine multiplexes many tenants over one simulated machine;
without back-pressure a single tenant could queue unbounded work and
starve everyone else's tail latency.  The controller enforces two
quotas per tenant, both measured over the tenant's *currently in
flight* queries (admitted, not yet finished on the virtual clock):

* **max in-flight** — how many of the tenant's queries may run
  concurrently;
* **max modeled bytes** — the sum of the modeled input bytes the
  tenant's in-flight queries scan (the paper-scale data the cost model
  prices, not the scaled-down executed arrays).

A violation raises :class:`AdmissionError` carrying the tenant, the
exceeded quota, its limit, and the observed value — the service layer
converts it into a :class:`repro.serve.request.Rejection` so one greedy
tenant cannot abort an open-loop serving run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.serve.request import QueryRequest


@dataclass(frozen=True)
class TenantQuota:
    """Admission limits for one tenant (``inf`` = unlimited)."""

    max_in_flight: float = float("inf")
    max_modeled_bytes: float = float("inf")


#: quota applied to tenants without an explicit entry.
DEFAULT_QUOTA = TenantQuota()


class AdmissionError(RuntimeError):
    """A request exceeded its tenant's quota.

    Attributes name the violated quota so callers can react without
    parsing the message: ``tenant``, ``quota`` (``"in_flight"`` or
    ``"modeled_bytes"``), ``limit``, ``observed`` (the value admission
    would have reached), and ``request_id``.
    """

    def __init__(
        self,
        tenant: str,
        quota: str,
        limit: float,
        observed: float,
        request_id: int,
    ) -> None:
        self.tenant = tenant
        self.quota = quota
        self.limit = limit
        self.observed = observed
        self.request_id = request_id
        super().__init__(
            f"tenant {tenant!r} exceeds {quota} quota on request "
            f"#{request_id}: {observed:g} > {limit:g}"
        )


@dataclass
class _TenantState:
    in_flight: int = 0
    modeled_bytes: float = 0.0
    admitted_total: int = 0
    rejected_total: int = 0


class AdmissionController:
    """Tracks per-tenant in-flight load and enforces quotas."""

    def __init__(
        self,
        quotas: Optional[Mapping[str, TenantQuota]] = None,
        default: TenantQuota = DEFAULT_QUOTA,
    ) -> None:
        self.quotas: Dict[str, TenantQuota] = dict(quotas or {})
        self.default = default
        self._state: Dict[str, _TenantState] = {}

    def quota_for(self, tenant: str) -> TenantQuota:
        """The quota governing ``tenant`` (the default if unset)."""
        return self.quotas.get(tenant, self.default)

    def _tenant(self, tenant: str) -> _TenantState:
        return self._state.setdefault(tenant, _TenantState())

    def admit(self, request: QueryRequest, modeled_bytes: float) -> None:
        """Admit ``request`` or raise a typed :class:`AdmissionError`."""
        quota = self.quota_for(request.tenant)
        state = self._tenant(request.tenant)
        if state.in_flight + 1 > quota.max_in_flight:
            state.rejected_total += 1
            raise AdmissionError(
                tenant=request.tenant,
                quota="in_flight",
                limit=quota.max_in_flight,
                observed=state.in_flight + 1,
                request_id=request.request_id,
            )
        if state.modeled_bytes + modeled_bytes > quota.max_modeled_bytes:
            state.rejected_total += 1
            raise AdmissionError(
                tenant=request.tenant,
                quota="modeled_bytes",
                limit=quota.max_modeled_bytes,
                observed=state.modeled_bytes + modeled_bytes,
                request_id=request.request_id,
            )
        state.in_flight += 1
        state.modeled_bytes += modeled_bytes
        state.admitted_total += 1

    def release(self, request: QueryRequest, modeled_bytes: float) -> None:
        """Return an admitted request's quota share (query finished)."""
        state = self._tenant(request.tenant)
        if state.in_flight <= 0:
            raise RuntimeError(
                f"release without matching admit for tenant "
                f"{request.tenant!r} (request #{request.request_id})"
            )
        state.in_flight -= 1
        state.modeled_bytes = max(0.0, state.modeled_bytes - modeled_bytes)

    def in_flight(self, tenant: str) -> int:
        """Currently admitted, not-yet-released queries for ``tenant``."""
        return self._tenant(tenant).in_flight

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant counters, JSON-ready (metrics/report input)."""
        return {
            tenant: {
                "in_flight": state.in_flight,
                "modeled_bytes": state.modeled_bytes,
                "admitted_total": state.admitted_total,
                "rejected_total": state.rejected_total,
            }
            for tenant, state in sorted(self._state.items())
        }


__all__ = [
    "AdmissionController",
    "AdmissionError",
    "DEFAULT_QUOTA",
    "TenantQuota",
]
