"""Admission control: per-tenant quotas with typed rejection.

The serving engine multiplexes many tenants over one simulated machine;
without back-pressure a single tenant could queue unbounded work and
starve everyone else's tail latency.  The controller enforces two
quotas per tenant, both measured over the tenant's *currently in
flight* queries (admitted, not yet finished on the virtual clock):

* **max in-flight** — how many of the tenant's queries may run
  concurrently;
* **max modeled bytes** — the sum of the modeled input bytes the
  tenant's in-flight queries scan (the paper-scale data the cost model
  prices, not the scaled-down executed arrays).

A violation raises :class:`AdmissionError` carrying the tenant, the
exceeded quota, its limit, and the observed value — the service layer
converts it into a :class:`repro.serve.request.Rejection` so one greedy
tenant cannot abort an open-loop serving run.

Bookkeeping is a per-request *share ledger*: admission records exactly
what each request was charged, and release returns exactly that —
per-tenant totals are recomputed from the outstanding shares, so they
return to exactly zero (not epsilon-zero) once every query finishes,
is cancelled, or is shed.  :meth:`AdmissionController.audit` asserts
that invariant after ``serve()`` drains; the pre-ledger implementation
clamped drift away (``max(0.0, ...)``), which hid exactly the class of
leak a cancellation path can introduce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.serve.request import QueryRequest


@dataclass(frozen=True)
class TenantQuota:
    """Admission limits for one tenant (``inf`` = unlimited)."""

    max_in_flight: float = float("inf")
    max_modeled_bytes: float = float("inf")


#: quota applied to tenants without an explicit entry.
DEFAULT_QUOTA = TenantQuota()


class AdmissionError(RuntimeError):
    """A request exceeded its tenant's quota.

    Attributes name the violated quota so callers can react without
    parsing the message: ``tenant``, ``quota`` (``"in_flight"`` or
    ``"modeled_bytes"``), ``limit``, ``observed`` (the value admission
    would have reached), and ``request_id``.
    """

    def __init__(
        self,
        tenant: str,
        quota: str,
        limit: float,
        observed: float,
        request_id: int,
    ) -> None:
        self.tenant = tenant
        self.quota = quota
        self.limit = limit
        self.observed = observed
        self.request_id = request_id
        super().__init__(
            f"tenant {tenant!r} exceeds {quota} quota on request "
            f"#{request_id}: {observed:g} > {limit:g}"
        )


class AdmissionAuditError(RuntimeError):
    """Quota bookkeeping failed its drain invariant.

    After a serve pass drains, every tenant's in-flight count and
    modeled-bytes share must be exactly zero; ``leaks`` maps each
    violating tenant to its residual ``(in_flight, modeled_bytes,
    outstanding_request_ids)``.
    """

    def __init__(
        self, leaks: Dict[str, Tuple[int, float, Tuple[int, ...]]]
    ) -> None:
        self.leaks = dict(leaks)
        detail = "; ".join(
            f"{tenant}: in_flight={in_flight}, "
            f"modeled_bytes={modeled_bytes:g}, requests={list(requests)}"
            for tenant, (in_flight, modeled_bytes, requests) in sorted(
                self.leaks.items()
            )
        )
        super().__init__(f"admission shares leaked after drain: {detail}")


@dataclass
class _TenantState:
    in_flight: int = 0
    modeled_bytes: float = 0.0
    admitted_total: int = 0
    rejected_total: int = 0
    #: outstanding shares: request_id -> the modeled bytes it was
    #: charged at admission.  Totals above are recomputed from this
    #: ledger, so releases in any order land back on exactly 0.0.
    shares: Dict[int, float] = field(default_factory=dict)

    def recompute(self) -> None:
        """Derive the totals from the ledger (request-id order)."""
        self.in_flight = len(self.shares)
        self.modeled_bytes = sum(
            self.shares[request_id] for request_id in sorted(self.shares)
        )


class AdmissionController:
    """Tracks per-tenant in-flight load and enforces quotas."""

    def __init__(
        self,
        quotas: Optional[Mapping[str, TenantQuota]] = None,
        default: TenantQuota = DEFAULT_QUOTA,
    ) -> None:
        self.quotas: Dict[str, TenantQuota] = dict(quotas or {})
        self.default = default
        self._state: Dict[str, _TenantState] = {}

    def quota_for(self, tenant: str) -> TenantQuota:
        """The quota governing ``tenant`` (the default if unset)."""
        return self.quotas.get(tenant, self.default)

    def _tenant(self, tenant: str) -> _TenantState:
        return self._state.setdefault(tenant, _TenantState())

    def admit(self, request: QueryRequest, modeled_bytes: float) -> None:
        """Admit ``request`` or raise a typed :class:`AdmissionError`."""
        quota = self.quota_for(request.tenant)
        state = self._tenant(request.tenant)
        if state.in_flight + 1 > quota.max_in_flight:
            state.rejected_total += 1
            raise AdmissionError(
                tenant=request.tenant,
                quota="in_flight",
                limit=quota.max_in_flight,
                observed=state.in_flight + 1,
                request_id=request.request_id,
            )
        if state.modeled_bytes + modeled_bytes > quota.max_modeled_bytes:
            state.rejected_total += 1
            raise AdmissionError(
                tenant=request.tenant,
                quota="modeled_bytes",
                limit=quota.max_modeled_bytes,
                observed=state.modeled_bytes + modeled_bytes,
                request_id=request.request_id,
            )
        state.shares[request.request_id] = modeled_bytes
        state.admitted_total += 1
        state.recompute()

    def release(
        self, request: QueryRequest, modeled_bytes: Optional[float] = None
    ) -> None:
        """Return an admitted request's quota share (query terminated).

        The ledger is authoritative: the share charged at admission is
        what gets returned, regardless of ``modeled_bytes`` (kept for
        caller symmetry) — so finish, cancellation, and shedding paths
        cannot drift the tenant totals.
        """
        state = self._tenant(request.tenant)
        if request.request_id not in state.shares:
            raise RuntimeError(
                f"release without matching admit for tenant "
                f"{request.tenant!r} (request #{request.request_id})"
            )
        del state.shares[request.request_id]
        state.recompute()

    def audit(self) -> None:
        """Assert every tenant's shares drained back to exactly zero.

        Raises :class:`AdmissionAuditError` naming the leaking tenants
        and their outstanding request ids; a clean pass returns None.
        The check is exact (``== 0``, not a tolerance): release returns
        the ledgered share, so any residue is a real leak, not float
        noise.
        """
        leaks: Dict[str, Tuple[int, float, Tuple[int, ...]]] = {}
        for tenant, state in sorted(self._state.items()):
            if state.in_flight != 0 or state.modeled_bytes != 0.0:
                leaks[tenant] = (
                    state.in_flight,
                    state.modeled_bytes,
                    tuple(sorted(state.shares)),
                )
        if leaks:
            raise AdmissionAuditError(leaks)

    def in_flight(self, tenant: str) -> int:
        """Currently admitted, not-yet-released queries for ``tenant``."""
        return self._tenant(tenant).in_flight

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant counters, JSON-ready (metrics/report input)."""
        return {
            tenant: {
                "in_flight": state.in_flight,
                "modeled_bytes": state.modeled_bytes,
                "admitted_total": state.admitted_total,
                "rejected_total": state.rejected_total,
            }
            for tenant, state in sorted(self._state.items())
        }


__all__ = [
    "AdmissionAuditError",
    "AdmissionController",
    "AdmissionError",
    "DEFAULT_QUOTA",
    "TenantQuota",
]
