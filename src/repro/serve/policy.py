"""Resilience policy of the serving layer: overload + retry + breaker.

PR 9's serving engine is fair-weather: an admitted query runs to
completion no matter how long contention stretches it, and overload
beyond the admission quotas piles onto the shared machine unbounded.
This module holds the knobs that bound both tails:

* :class:`ServicePolicy` — one frozen bundle of overload-control and
  retry knobs the :class:`~repro.serve.service.QueryService` applies to
  every request.  The default policy is *inert*: no concurrency cap,
  no shedding, no default deadline, breaker disabled — a fault-free
  serve under the default policy is bit-identical to PR 9 scheduling.
* :class:`CircuitBreaker` — a per-workload closed/open/half-open state
  machine over *virtual* time.  K consecutive serving failures of one
  workload open its breaker; while open, submissions and retries of
  that workload fast-fail (typed, no machine time spent) until the
  cooldown elapses and one half-open probe is allowed through.
* typed shed reasons (:data:`SHED_QUEUE_FULL`, :data:`SHED_STRETCH`)
  and the terminal :data:`OUTCOME_*` vocabulary shared by the
  scheduler, the report, and the manifest ``serving`` section.

Everything here is deterministic: breaker transitions happen at event
times on the serving simulator's clock, never wall-clock.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.faults.recovery import RetryPolicy

# -- terminal outcomes -------------------------------------------------------

#: the query ran to completion.
OUTCOME_FINISHED = "finished"
#: the query's deadline fired before it completed; it was cancelled
#: mid-phase and its admission share released.
OUTCOME_DEADLINE = "deadline_exceeded"
#: a serving fault (or an open breaker) failed the query terminally
#: after the retry budget was spent.
OUTCOME_FAILED = "failed"

#: every terminal state a served query can reach (manifest vocabulary).
OUTCOMES = (OUTCOME_FINISHED, OUTCOME_DEADLINE, OUTCOME_FAILED)

# -- typed shedding ----------------------------------------------------------

#: the bounded pending queue was full at arrival.
SHED_QUEUE_FULL = "queue_full"
#: predicted stretch under current contention exceeded the policy
#: threshold (admitting would blow the tail, so degrade to a cheap
#: typed rejection instead — the Vortex-style graceful answer).
SHED_STRETCH = "stretch"

SHED_REASONS = (SHED_QUEUE_FULL, SHED_STRETCH)


class ShedError(RuntimeError):
    """A request was load-shed before admission (typed, not a crash).

    Attributes: ``reason`` (one of :data:`SHED_REASONS`),
    ``request_id``, and ``detail`` (the observed value that tripped the
    policy — queue depth or predicted stretch).
    """

    def __init__(self, reason: str, request_id: int, detail: float) -> None:
        if reason not in SHED_REASONS:
            raise ValueError(
                f"unknown shed reason {reason!r}; valid: "
                + ", ".join(SHED_REASONS)
            )
        self.reason = reason
        self.request_id = request_id
        self.detail = detail
        super().__init__(
            f"request #{request_id} shed ({reason}): observed {detail:g}"
        )


# -- circuit breaker ---------------------------------------------------------

#: breaker states (manifest vocabulary).
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"

BREAKER_STATES = (BREAKER_CLOSED, BREAKER_OPEN, BREAKER_HALF_OPEN)


class CircuitOpenError(RuntimeError):
    """A submission/retry fast-failed because its workload's breaker is open."""

    def __init__(self, workload: str, request_id: int, opened_at: float) -> None:
        self.workload = workload
        self.request_id = request_id
        self.opened_at = opened_at
        super().__init__(
            f"request #{request_id}: circuit for workload {workload!r} "
            f"opened at t={opened_at:.6f} and has not cooled down"
        )


@dataclass
class _BreakerState:
    state: str = BREAKER_CLOSED
    consecutive_failures: int = 0
    opened_at: float = 0.0
    #: counters for the report section.
    failures_total: int = 0
    fastfails_total: int = 0
    opens_total: int = 0


class CircuitBreaker:
    """Per-workload consecutive-failure breaker over virtual time.

    * **closed** — requests flow; each terminal serving failure bumps
      the workload's consecutive-failure count, each success resets it.
    * **open** — reached when the count hits ``threshold``; every
      request of that workload fast-fails until ``cooldown`` virtual
      seconds elapse.
    * **half-open** — after the cooldown one probe request is allowed
      through; its success closes the breaker, its failure re-opens it
      (restarting the cooldown).

    ``threshold=None`` disables the breaker entirely (the inert
    default — :meth:`allow` always returns True and records nothing).
    """

    def __init__(
        self, threshold: Optional[int] = None, cooldown: float = math.inf
    ) -> None:
        if threshold is not None and threshold < 1:
            raise ValueError(f"breaker threshold must be >= 1: {threshold}")
        if cooldown < 0:
            raise ValueError(f"breaker cooldown must be >= 0: {cooldown}")
        self.threshold = threshold
        self.cooldown = cooldown
        self._workloads: Dict[str, _BreakerState] = {}

    @property
    def enabled(self) -> bool:
        return self.threshold is not None

    def _entry(self, workload: str) -> _BreakerState:
        return self._workloads.setdefault(workload, _BreakerState())

    def state(self, workload: str, now: Optional[float] = None) -> str:
        """The workload's breaker state (cooldown applied when ``now`` given)."""
        if not self.enabled:
            return BREAKER_CLOSED
        entry = self._entry(workload)
        if (
            entry.state == BREAKER_OPEN
            and now is not None
            and now - entry.opened_at >= self.cooldown
        ):
            entry.state = BREAKER_HALF_OPEN
        return entry.state

    def allow(self, workload: str, now: float) -> bool:
        """May a request of ``workload`` proceed at virtual time ``now``?

        An open breaker whose cooldown elapsed transitions to
        half-open and lets exactly this probe through; a still-hot open
        breaker counts a fast-fail and refuses.
        """
        if not self.enabled:
            return True
        state = self.state(workload, now)
        if state == BREAKER_OPEN:
            self._entry(workload).fastfails_total += 1
            return False
        return True

    def opened_at(self, workload: str) -> float:
        """Virtual time the workload's breaker last opened (0.0 if never)."""
        return self._entry(workload).opened_at

    def record_failure(self, workload: str, now: float) -> str:
        """Count one terminal serving failure; returns the new state."""
        if not self.enabled:
            return BREAKER_CLOSED
        entry = self._entry(workload)
        entry.failures_total += 1
        if entry.state == BREAKER_HALF_OPEN:
            # the half-open probe failed: straight back to open.
            entry.state = BREAKER_OPEN
            entry.opened_at = now
            entry.opens_total += 1
            return entry.state
        entry.consecutive_failures += 1
        assert self.threshold is not None
        if (
            entry.state == BREAKER_CLOSED
            and entry.consecutive_failures >= self.threshold
        ):
            entry.state = BREAKER_OPEN
            entry.opened_at = now
            entry.opens_total += 1
        return entry.state

    def record_success(self, workload: str, now: float) -> str:
        """Count one completed query; closes a half-open breaker."""
        if not self.enabled:
            return BREAKER_CLOSED
        entry = self._entry(workload)
        entry.consecutive_failures = 0
        if entry.state == BREAKER_HALF_OPEN:
            entry.state = BREAKER_CLOSED
        return entry.state

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Per-workload breaker counters, JSON-ready (report input)."""
        return {
            workload: {
                "state": entry.state,
                "consecutive_failures": entry.consecutive_failures,
                "failures_total": entry.failures_total,
                "fastfails_total": entry.fastfails_total,
                "opens_total": entry.opens_total,
            }
            for workload, entry in sorted(self._workloads.items())
        }


# -- the policy bundle -------------------------------------------------------

#: serving retries back off in *virtual* seconds — this policy instance
#: is never slept, its schedule is added to resubmission arrival times.
DEFAULT_SERVING_RETRY = RetryPolicy(
    max_attempts=3, base_delay=0.05, factor=2.0, max_delay=1.0
)


@dataclass(frozen=True)
class ServicePolicy:
    """Overload-control + retry knobs of one :class:`QueryService`.

    The default instance is inert — no cap, no shedding, no deadline,
    breaker disabled — so a fault-free serve under it reproduces PR 9
    scheduling bit for bit.  ``retry`` only matters once a
    :class:`~repro.faults.FaultPlan` injects serving faults.

    Args:
        retry: serving-level retry budget and virtual-time backoff
            schedule for fault-failed queries (resubmission delay =
            ``retry.delay(attempt)``; never slept).
        breaker_threshold: consecutive failures of one workload that
            open its circuit (None disables the breaker).
        breaker_cooldown: virtual seconds an open circuit waits before
            allowing a half-open probe.
        max_active: cap on concurrently *running* queries; arrivals
            beyond it wait in a FIFO pending queue (None = unbounded,
            the PR 9 processor-sharing behavior).
        queue_depth: bound on that pending queue; an arrival that finds
            it full is shed with :data:`SHED_QUEUE_FULL` (None =
            unbounded queue; only meaningful with ``max_active``).
        stretch_limit: predicted-stretch threshold — an arrival whose
            max-min-solved rate against the current active set predicts
            ``1/rate > stretch_limit`` is shed with
            :data:`SHED_STRETCH`.  The threshold is relative to the
            query's *solo* cost (stretch 1.0 = solo speed), so one
            knob covers cheap and expensive queries alike.
        default_deadline: latency budget (virtual seconds from arrival)
            stamped on requests submitted without an explicit deadline
            (None = no deadline).
    """

    retry: RetryPolicy = field(default_factory=lambda: DEFAULT_SERVING_RETRY)
    breaker_threshold: Optional[int] = None
    breaker_cooldown: float = math.inf
    max_active: Optional[int] = None
    queue_depth: Optional[int] = None
    stretch_limit: Optional[float] = None
    default_deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_active is not None and self.max_active < 1:
            raise ValueError(f"max_active must be >= 1: {self.max_active}")
        if self.queue_depth is not None and self.queue_depth < 0:
            raise ValueError(f"queue_depth must be >= 0: {self.queue_depth}")
        if self.stretch_limit is not None and self.stretch_limit < 1.0:
            raise ValueError(
                f"stretch_limit must be >= 1 (1.0 = solo speed): "
                f"{self.stretch_limit}"
            )
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise ValueError(
                f"default_deadline must be positive: {self.default_deadline}"
            )
        if self.queue_depth is not None and self.max_active is None:
            raise ValueError(
                "queue_depth without max_active is meaningless: an "
                "unbounded active set never queues"
            )

    def build_breaker(self) -> CircuitBreaker:
        """A fresh breaker configured by this policy."""
        return CircuitBreaker(
            threshold=self.breaker_threshold, cooldown=self.breaker_cooldown
        )


__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "BREAKER_STATES",
    "CircuitBreaker",
    "CircuitOpenError",
    "DEFAULT_SERVING_RETRY",
    "OUTCOMES",
    "OUTCOME_DEADLINE",
    "OUTCOME_FAILED",
    "OUTCOME_FINISHED",
    "SHED_QUEUE_FULL",
    "SHED_REASONS",
    "SHED_STRETCH",
    "ServicePolicy",
    "ShedError",
]
