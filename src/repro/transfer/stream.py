"""Discrete-event simulation of chunked copy pipelines.

The push-based transfer methods are software pipelines (Section 4.1):
stage a chunk, transfer it, compute on it, with stages overlapping
across chunks.  The cost model uses the closed-form makespan of
:func:`repro.plan.overlap.pipeline_makespan`; this module builds
the *same* pipeline on the event engine — each stage a server that
processes chunks in order, each chunk flowing through all stages — so
the closed form can be validated against a mechanism simulation
(`tests/transfer/test_stream.py`).

It also runs functionally: ``stream_chunks`` really moves numpy data
chunk-by-chunk and hands each chunk to a consumer, which is how the
examples stream relations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.plan.overlap import chunk_sizes, iter_chunks
from repro.sim.engine import Simulator


@dataclass
class StageTrace:
    """Busy intervals of one pipeline stage."""

    name: str
    busy_until: float = 0.0
    chunks_done: int = 0


@dataclass
class PipelineRun:
    """Outcome of a simulated pipeline execution."""

    makespan: float
    stages: List[StageTrace]
    chunks: int


def simulate_pipeline(
    stage_rates: Sequence[float],
    total_bytes: int,
    chunks: int,
    per_chunk_overhead: float = 0.0,
    stage_names: Optional[Sequence[str]] = None,
) -> PipelineRun:
    """Event-driven execution of an N-stage chunk pipeline.

    Each stage is a FIFO server with bandwidth ``stage_rates[i]``
    (bytes/s); chunk ``c`` enters stage ``i`` when both the chunk has
    left stage ``i-1`` and the stage has finished chunk ``c-1``.
    ``per_chunk_overhead`` is paid by the first stage per chunk (the
    API-call cost the closed form charges).
    """
    if not stage_rates:
        raise ValueError("pipeline needs at least one stage")
    if any(rate <= 0 for rate in stage_rates):
        raise ValueError(f"stage rates must be positive: {stage_rates}")
    names = list(stage_names or (f"stage{i}" for i in range(len(stage_rates))))
    if len(names) != len(stage_rates):
        raise ValueError("one name per stage")
    sizes = chunk_sizes(total_bytes, chunks)
    stages = [StageTrace(name=name) for name in names]

    sim = Simulator()
    makespan = 0.0
    # Deterministic dataflow recurrence executed on the event engine:
    # finish[i][c] = max(finish[i-1][c], finish[i][c-1]) + size/rate.
    finish_prev_stage = [0.0] * len(sizes)
    for i, (stage, rate) in enumerate(zip(stages, stage_rates)):
        for c, size in enumerate(sizes):
            ready = max(finish_prev_stage[c], stage.busy_until)
            overhead = per_chunk_overhead if i == 0 else 0.0
            done = ready + overhead + size / rate

            def complete(s, stage=stage, done=done):
                stage.chunks_done += 1

            sim.schedule_at(done, complete)
            stage.busy_until = done
            finish_prev_stage[c] = done
            makespan = max(makespan, done)
    sim.run()
    for stage in stages:
        assert stage.chunks_done == len(sizes)
    return PipelineRun(makespan=makespan, stages=stages, chunks=len(sizes))


def stream_chunks(
    data: np.ndarray,
    chunk_rows: int,
    consumer: Callable[[np.ndarray], None],
) -> int:
    """Functionally stream an array chunk-by-chunk into a consumer.

    Returns the number of chunks delivered.  This is the functional
    counterpart of the push pipelines: the examples use it to process
    relations without materializing them twice.
    """
    delivered = 0
    for part in iter_chunks(len(data), chunk_rows):
        consumer(data[part])
        delivered += 1
    return delivered
