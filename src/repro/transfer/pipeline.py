"""Deprecated shim — the copy-pipeline arithmetic moved to
:mod:`repro.plan.overlap`.

The chunked-overlap makespan is now a first-class attribute of plan
phases (``PhaseSpec.chunked``) and is applied by the
:class:`repro.plan.PlanExecutor`; the arithmetic lives next to the
executor that owns it.  This module re-exports the functions so
existing imports keep working.  New code should import from
``repro.plan`` (or ``repro.plan.overlap``) directly.
"""

from __future__ import annotations

from repro.plan.overlap import chunk_sizes, iter_chunks, pipeline_makespan

__all__ = ["chunk_sizes", "iter_chunks", "pipeline_makespan"]
