"""GPU data-transfer methods (Table 1 of the paper).

Eight methods move (or expose) CPU-memory data to a GPU kernel:

========================  ========  =====  ===========  ========
Method                    Semantics Level  Granularity  Memory
========================  ========  =====  ===========  ========
Pageable Copy             push      SW     chunk        pageable
Staged Copy               push      SW     chunk        pageable
Dynamic Pinning           push      SW     chunk        pageable
Pinned Copy               push      SW     chunk        pinned
UM Prefetch               push      SW     chunk        unified
UM Migration              pull      OS     page         unified
Zero-Copy                 pull      HW     byte         pinned
Coherence                 pull      HW     byte         pageable
========================  ========  =====  ===========  ========

Each method knows its required memory kind, whether it is supported on a
machine (Coherence needs a cache-coherent link), the effective ingest
bandwidth on a given route, and whether processed data ends up in GPU
memory (push) or is read in place (pull).
"""

from repro.transfer.methods import (
    TRANSFER_METHODS,
    Coherence,
    DynamicPinning,
    PageableCopy,
    PinnedCopy,
    StagedCopy,
    TransferMethod,
    UnifiedMigration,
    UnifiedPrefetch,
    UnsupportedTransferError,
    ZeroCopy,
    get_method,
)
from repro.plan.overlap import chunk_sizes, pipeline_makespan

__all__ = [
    "TRANSFER_METHODS",
    "Coherence",
    "DynamicPinning",
    "PageableCopy",
    "PinnedCopy",
    "StagedCopy",
    "TransferMethod",
    "UnifiedMigration",
    "UnifiedPrefetch",
    "UnsupportedTransferError",
    "ZeroCopy",
    "get_method",
    "chunk_sizes",
    "pipeline_makespan",
]
