"""The eight transfer methods of Table 1, as cost-model plugins.

Each method answers:

* is it *supported* on a given machine/route (Coherence needs NVLink),
* which :class:`MemoryKind` must the source data live in,
* the *effective ingest bandwidth* for streaming ``nbytes`` to the GPU,
* whether data *lands in GPU memory* (push methods and UM migration) or
  is read in place over the interconnect (Zero-Copy, Coherence), and
* any *side traffic* (Staged Copy's extra CPU-memory round trip; the
  MMIO copy thread of Pageable Copy).

The join operators combine these ingredients into access profiles; the
numbers behind the calibration constants are Figure 12's measurements.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

from repro.costmodel.access import Stream, seq_stream
from repro.costmodel.calibration import Calibration
from repro.costmodel.model import CostModel
from repro.faults.runtime import active_plan
from repro.hardware.memory import MemoryKind
from repro.hardware.topology import Machine


class UnsupportedTransferError(RuntimeError):
    """Raised when a method cannot run on the given machine or memory."""


class TransferMethod:
    """Base class; subclasses are stateless singletons in the registry."""

    name: str = ""
    semantics: str = ""  # "push" or "pull"
    level: str = ""  # "SW", "OS", "HW"
    granularity: str = ""  # "chunk", "page", "byte"
    required_kind: MemoryKind = MemoryKind.PAGEABLE

    # ------------------------------------------------------------------
    def supported(self, machine: Machine, gpu_name: str, src_memory: str) -> bool:
        """Whether this method works on the given route."""
        return True

    def supported_kinds(self) -> FrozenSet[MemoryKind]:
        """Memory kinds this method can read from (Table 1's "memory")."""
        return frozenset({self.required_kind})

    def check_supported(
        self,
        machine: Machine,
        gpu_name: str,
        src_memory: str,
        kind: Optional[MemoryKind] = None,
    ) -> None:
        """Raise UnsupportedTransferError if the route or kind is invalid.

        ``kind`` is the source allocation's :class:`MemoryKind`.  CUDA
        enforces Table 1's kind requirements at runtime (Zero-Copy from
        pageable memory simply faults), so pricing such a transfer as
        valid silently produced numbers for impossible configurations;
        pass the source kind to get the real behaviour.  ``None`` skips
        the kind check (route-only validation).
        """
        if not self.supported(machine, gpu_name, src_memory):
            raise UnsupportedTransferError(
                f"{self.name} is unsupported from {src_memory} to {gpu_name} "
                f"on {machine.name}"
            )
        if kind is not None and kind not in self.supported_kinds():
            valid = ", ".join(sorted(k.value for k in self.supported_kinds()))
            raise UnsupportedTransferError(
                f"{self.name} requires {valid} source memory, but "
                f"{src_memory} holds a {kind.value} allocation "
                "(Table 1); reallocate the relation or pick a method "
                "that supports its kind"
            )

    # ------------------------------------------------------------------
    def lands_in_gpu_memory(self) -> bool:
        """Push methods stage data into GPU memory before the kernel."""
        return self.semantics == "push"

    def _route_bandwidth(self, cost_model: CostModel, gpu_name: str, src: str) -> float:
        return cost_model.sequential_bandwidth(gpu_name, src)

    def _gpu_link_spec_name(
        self, machine: Machine, gpu_name: str, src_memory: str
    ) -> str:
        path = machine.path(gpu_name, src_memory)
        if not path:
            raise UnsupportedTransferError(
                f"{self.name}: {src_memory} is local to {gpu_name}; "
                "no transfer needed"
            )
        return path[0].spec.name

    def _page_bytes(self, machine: Machine, src_memory: str) -> int:
        return machine.memory(src_memory).spec.page_bytes

    def ingest_bandwidth(
        self, cost_model: CostModel, gpu_name: str, src_memory: str
    ) -> float:
        """Effective bytes/s streamed from ``src_memory`` to the GPU."""
        raise NotImplementedError

    def effective_ingest_bandwidth(
        self, cost_model: CostModel, gpu_name: str, src_memory: str
    ) -> float:
        """:meth:`ingest_bandwidth`, degraded by any active fault plan.

        This is the choke point the pricing layer calls: an installed
        :class:`~repro.faults.FaultPlan` with a ``DegradeLink`` rule
        scales the method's bandwidth here (a contended or downtrained
        interconnect), so chaos runs price the slow link without the
        methods themselves knowing about fault injection.
        """
        bandwidth = self.ingest_bandwidth(cost_model, gpu_name, src_memory)
        plan = active_plan()
        if plan is not None:
            bandwidth *= plan.bandwidth_factor(self.name, gpu_name, src_memory)
        return bandwidth

    def side_streams(
        self,
        machine: Machine,
        gpu_name: str,
        src_memory: str,
        nbytes: float,
    ) -> List[Stream]:
        """Extra traffic on other resources caused by the transfer."""
        return []

    def pipeline_overlap_factor(self, calibration: Calibration) -> float:
        """Makespan multiplier for transfer/compute overlap.

        Pull methods read data from inside the kernel — the transfer *is*
        the computation's memory access, so there is no fill/drain cost.
        Push methods pay one chunk of pipeline fill.
        """
        if self.semantics == "pull":
            return 1.0
        return 1.0 + 1.0 / calibration.pipeline_chunks

    def __repr__(self) -> str:
        return f"<TransferMethod {self.name}>"


# ---------------------------------------------------------------------------
# Push-based methods (Section 4.1)
# ---------------------------------------------------------------------------


class PageableCopy(TransferMethod):
    """cudaMemcpyAsync from pageable memory: a CPU thread copies via MMIO."""

    name = "pageable_copy"
    semantics = "push"
    level = "SW"
    granularity = "chunk"
    required_kind = MemoryKind.PAGEABLE

    def ingest_bandwidth(
        self, cost_model: CostModel, gpu_name: str, src_memory: str
    ) -> float:
        link = self._gpu_link_spec_name(cost_model.machine, gpu_name, src_memory)
        mmio = cost_model.calibration.mmio_bandwidth.get(link)
        if mmio is None:
            raise UnsupportedTransferError(f"no MMIO bandwidth known for {link}")
        return min(mmio, self._route_bandwidth(cost_model, gpu_name, src_memory))

    def side_streams(self, machine, gpu_name, src_memory, nbytes):
        # The copying CPU thread re-reads the source from CPU memory.
        owner_cpu = machine.memory(src_memory).owner
        return [
            seq_stream(owner_cpu, src_memory, nbytes, label="mmio copy thread")
        ]


class PinnedCopy(TransferMethod):
    """cudaMemcpyAsync from pinned memory: DMA copy engines."""

    name = "pinned_copy"
    semantics = "push"
    level = "SW"
    granularity = "chunk"
    required_kind = MemoryKind.PINNED

    def ingest_bandwidth(self, cost_model, gpu_name, src_memory):
        route = self._route_bandwidth(cost_model, gpu_name, src_memory)
        return route * cost_model.calibration.dma_efficiency


class StagedCopy(TransferMethod):
    """Copy pageable chunks into a pinned staging buffer, then DMA.

    The hidden cost: roughly four CPU cores are fully busy staging, and
    CPU memory sees the data twice (read from pageable + write to the
    pinned buffer), Section 7.2.1.
    """

    name = "staged_copy"
    semantics = "push"
    level = "SW"
    granularity = "chunk"
    required_kind = MemoryKind.PAGEABLE

    def ingest_bandwidth(self, cost_model, gpu_name, src_memory):
        route = self._route_bandwidth(cost_model, gpu_name, src_memory)
        return min(
            cost_model.calibration.staging_bandwidth,
            route * cost_model.calibration.dma_efficiency,
        )

    def side_streams(self, machine, gpu_name, src_memory, nbytes):
        owner_cpu = machine.memory(src_memory).owner
        return [
            seq_stream(owner_cpu, src_memory, 2 * nbytes, label="staging memcpy")
        ]


class DynamicPinning(TransferMethod):
    """Pin preexisting pageable pages ad hoc, then DMA them."""

    name = "dynamic_pinning"
    semantics = "push"
    level = "SW"
    granularity = "chunk"
    required_kind = MemoryKind.PAGEABLE

    def ingest_bandwidth(self, cost_model, gpu_name, src_memory):
        machine = cost_model.machine
        pin_cost = cost_model.calibration.pin_page_cost.get(machine.name)
        if pin_cost is None:
            raise UnsupportedTransferError(
                f"no pinning cost calibrated for machine {machine.name}"
            )
        page = self._page_bytes(machine, src_memory)
        pin_bandwidth = page / pin_cost
        route = self._route_bandwidth(cost_model, gpu_name, src_memory)
        return min(pin_bandwidth, route * cost_model.calibration.dma_efficiency)


class UnifiedPrefetch(TransferMethod):
    """cudaMemPrefetchAsync of unified memory ahead of the access."""

    name = "um_prefetch"
    semantics = "push"
    level = "SW"
    granularity = "chunk"
    required_kind = MemoryKind.UNIFIED

    def ingest_bandwidth(self, cost_model, gpu_name, src_memory):
        machine = cost_model.machine
        efficiency = cost_model.calibration.um_prefetch_efficiency.get(machine.name)
        if efficiency is None:
            raise UnsupportedTransferError(
                f"no UM prefetch efficiency calibrated for {machine.name}"
            )
        return self._route_bandwidth(cost_model, gpu_name, src_memory) * efficiency


# ---------------------------------------------------------------------------
# Pull-based methods (Section 4.2)
# ---------------------------------------------------------------------------


class UnifiedMigration(TransferMethod):
    """OS-driven page migration on GPU page faults."""

    name = "um_migration"
    semantics = "pull"
    level = "OS"
    granularity = "page"
    required_kind = MemoryKind.UNIFIED

    def lands_in_gpu_memory(self) -> bool:
        # Faulted pages are *moved* into GPU memory, so subsequent
        # accesses (e.g. repeated probes) are local.
        return True

    def ingest_bandwidth(self, cost_model, gpu_name, src_memory):
        machine = cost_model.machine
        fault_cost = cost_model.calibration.um_fault_cost.get(machine.name)
        if fault_cost is None:
            raise UnsupportedTransferError(
                f"no UM fault cost calibrated for {machine.name}"
            )
        page = self._page_bytes(machine, src_memory)
        fault_bandwidth = page / fault_cost
        return min(
            fault_bandwidth, self._route_bandwidth(cost_model, gpu_name, src_memory)
        )


class ZeroCopy(TransferMethod):
    """Unified Virtual Addressing: byte-granular DMA into pinned memory."""

    name = "zero_copy"
    semantics = "pull"
    level = "HW"
    granularity = "byte"
    required_kind = MemoryKind.PINNED

    def ingest_bandwidth(self, cost_model, gpu_name, src_memory):
        return self._route_bandwidth(cost_model, gpu_name, src_memory)


class Coherence(TransferMethod):
    """NVLink 2.0 hardware coherence: byte-granular pageable access.

    Unsupported on PCI-e 3.0 machines (Figure 12: "the Coherence method
    is unsupported by PCI-e 3.0, due to PCI-e being non-cache-coherent").
    """

    name = "coherence"
    semantics = "pull"
    level = "HW"
    granularity = "byte"
    required_kind = MemoryKind.PAGEABLE

    def supported(self, machine: Machine, gpu_name: str, src_memory: str) -> bool:
        path = machine.path(gpu_name, src_memory)
        return bool(path) and all(link.spec.cache_coherent for link in path)

    def ingest_bandwidth(self, cost_model, gpu_name, src_memory):
        self.check_supported(cost_model.machine, gpu_name, src_memory)
        return self._route_bandwidth(cost_model, gpu_name, src_memory)


TRANSFER_METHODS: Dict[str, TransferMethod] = {
    method.name: method
    for method in (
        PageableCopy(),
        StagedCopy(),
        DynamicPinning(),
        PinnedCopy(),
        UnifiedPrefetch(),
        UnifiedMigration(),
        ZeroCopy(),
        Coherence(),
    )
}


def get_method(name: str) -> TransferMethod:
    """Look a method up by name; raises with the list of valid names."""
    try:
        return TRANSFER_METHODS[name]
    except KeyError:
        valid = ", ".join(sorted(TRANSFER_METHODS))
        raise UnsupportedTransferError(
            f"unknown transfer method {name!r}; valid: {valid}"
        ) from None
