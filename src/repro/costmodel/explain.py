"""Deprecated shim — import from :mod:`repro.obs.explain` instead.

The explain utilities moved into the unified observability layer
(:mod:`repro.obs.explain`), where they live next to the structured
``bottleneck_chain`` used by run manifests.  All in-tree callers now
import from ``repro.obs``; this re-export remains only so external
code keeps working and may be removed in a future release.
"""

from __future__ import annotations

from repro.obs.explain import (
    bottleneck_chain,
    explain,
    explain_join,
    render_chain,
    utilization,
)

__all__ = [
    "bottleneck_chain",
    "explain",
    "explain_join",
    "render_chain",
    "utilization",
]
