"""Human-readable explanations of phase costs (compatibility shim).

The explain utilities moved into the unified observability layer
(:mod:`repro.obs.explain`), where they live next to the structured
``bottleneck_chain`` used by run manifests; this module re-exports them
so existing imports keep working.
"""

from __future__ import annotations

from repro.obs.explain import (
    bottleneck_chain,
    explain,
    explain_join,
    render_chain,
    utilization,
)

__all__ = [
    "bottleneck_chain",
    "explain",
    "explain_join",
    "render_chain",
    "utilization",
]
