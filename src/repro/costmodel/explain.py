"""Human-readable explanations of phase costs.

``explain(cost)`` renders a PhaseCost's per-resource occupancy as a
utilization table — the tool for answering "why is this join this
fast?" (e.g. Figure 12's Coherence join is NVLink-bound at ~99%
utilization while the GPU memory idles at ~60%).
"""

from __future__ import annotations

from typing import List

from repro.costmodel.model import PhaseCost
from repro.utils.tables import Table
from repro.utils.units import format_time


def utilization(cost: PhaseCost) -> dict:
    """Resource -> busy fraction of the phase (1.0 = the bottleneck)."""
    if cost.seconds <= 0 or not cost.occupancy:
        return {}
    bottleneck_busy = cost.occupancy[cost.bottleneck]
    if bottleneck_busy <= 0:
        return {resource: 0.0 for resource in cost.occupancy}
    return {
        resource: busy / bottleneck_busy
        for resource, busy in cost.occupancy.items()
    }


def explain(cost: PhaseCost, top: int = 10) -> str:
    """Render the cost breakdown as an ASCII table.

    >>> from repro.costmodel.model import PhaseCost
    >>> c = PhaseCost(seconds=1.0, bottleneck="link:x",
    ...               occupancy={"link:x": 1.0, "mem:y": 0.25})
    >>> print(explain(c))  # doctest: +ELLIPSIS
    phase ... bottleneck: link:x
    resource | busy    | utilization
    ...
    """
    rows: List[tuple] = sorted(
        cost.occupancy.items(), key=lambda item: item[1], reverse=True
    )[:top]
    util = utilization(cost)
    table = Table(
        ["resource", "busy", "utilization"],
        title=(
            f"phase {cost.label or '(unnamed)'}: {format_time(cost.seconds)}, "
            f"bottleneck: {cost.bottleneck}"
        ),
    )
    for resource, busy in rows:
        marker = " <- bottleneck" if resource == cost.bottleneck else ""
        table.add_row(
            [resource, format_time(busy), f"{util.get(resource, 0):.0%}{marker}"]
        )
    return table.render()


def explain_join(result) -> str:
    """Explain both phases of a JoinResult."""
    parts = [
        f"join on {result.processor}: "
        f"{result.throughput_gtuples:.2f} G Tuples/s "
        f"({result.matches} matches)",
        explain(result.build_cost),
        explain(result.probe_cost),
    ]
    return "\n\n".join(parts)
