"""Calibration constants of the cost model.

The primitive bandwidth/latency numbers in :mod:`repro.hardware.specs`
are the paper's Figure 3 *microbenchmark* results.  Those microbenchmarks
issue dependent 4-byte reads (a pointer chase), which under-utilize the
memory-level parallelism that a hash-join kernel's *independent* probes
achieve.  The constants below bridge that gap and encode a handful of
quantities the paper reports only indirectly.  Every constant records the
paper evidence it was fitted against.

Changing these constants changes simulated absolute numbers but not the
structure of the model; the reproduction tests in ``benchmarks/`` check
shapes and ratios, which are robust to modest recalibration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.utils.units import GIB, KIB, MIB, US


@dataclass(frozen=True)
class Calibration:
    """Tunable model constants, with paper-derived defaults."""

    # --- independent random-access uplift over the dependent-chase
    #     microbenchmark, per resource technology. Fitted so that the
    #     NOPA join is interconnect-bound for workload A over NVLink
    #     (Figure 12: Coherence = 3.83 G Tuples/s) and HBM-bound for
    #     workload C (Figure 13: ~2.5 G Tuples/s flat).
    independent_access_factor: Dict[str, float] = field(
        default_factory=lambda: {
            "hbm2-v100": 1.6,  # joins reach ~9e9 independent accesses/s
            "ddr4-power9": 1.28,  # ~1.15e9 accesses/s across 16 cores
            "ddr4-xeon": 1.35,  # ~0.91e9 accesses/s across 12 cores
            "nvlink2": 1.8,  # NPU pipelines independent requests
            "xbus": 1.8,
            "upi": 1.7,
            "pcie3": 1.0,  # PCI-e root complex does not pipeline UVA reads
        }
    )

    # --- atomic update rates (accesses/s). Atomics are slower than reads:
    #     they serialize in the memory controller / NPU.
    #     * hbm local: Figure 18 time breakdown (build = 71% at 1:1 ratio).
    #     * cpu local: Figure 21b (CPU build of 1024M tuples in ~2.1 s).
    #     * nvlink remote: Figure 17 (out-of-core NVLink within 13% of CPU).
    #     * pcie remote: PCI-e has no system-wide atomics; CUDA falls back
    #       to page-migration (Section 3), Figure 17 (97% decline, 0.02 GT/s).
    atomic_rate: Dict[str, float] = field(
        default_factory=lambda: {
            "hbm2-v100": 1.7e9,
            "ddr4-power9": 1.0e9,
            "ddr4-xeon": 0.85e9,
            "nvlink2": 0.45e9,
            "xbus": 0.40e9,
            "upi": 0.50e9,
            "pcie3": 0.02e9,
        }
    )

    # --- per-access wire cost of random accesses crossing a link: one L1
    #     sector (32 B on Volta) plus the packet header (Section 2.2).
    random_sector_bytes: float = 32.0

    # --- initiator-side issue efficiency: fraction of the theoretical
    #     MLP/latency rate a join kernel actually sustains (instruction
    #     overhead, TLB misses). CPU fitted to the NOPA baseline
    #     (Figure 21a: workload A = 0.52 G Tuples/s on one POWER9).
    issue_efficiency: Dict[str, float] = field(
        default_factory=lambda: {"cpu": 0.61, "gpu": 1.0}
    )

    # --- memory-side random concurrency: how many initiators' worth of
    #     random traffic the DRAM itself can absorb. DDR4 sockets can
    #     serve both their own cores and the GPU's NPU-issued requests
    #     (Figure 21: Het probe is faster than CPU-only probe); HBM2's
    #     measured random rate is already device-bound.
    dram_concurrency: Dict[str, float] = field(
        default_factory=lambda: {
            "ddr4-power9": 2.0,
            "ddr4-xeon": 2.0,
            "hbm2-v100": 1.0,
        }
    )

    # --- extra-hop degradation for random accesses routed through more
    #     than one interconnect (Figures 13/14: 2->3 hops costs 17-33%).
    per_hop_random_penalty: float = 0.9

    # --- multi-processor write contention on a shared hash table
    #     (Figure 21b: Het build is slower than single-processor build).
    shared_build_contention: float = 0.72

    # --- GPU L2 (memory-side) random service rate when the working set
    #     fits (Figure 13 workload B: 19.08 G Tuples/s in GPU memory).
    l2_random_rate: float = 45e9
    # --- GPU L1 over coherence: it *can* hold remote lines
    #     (Section 2.2.2), but its effective capacity for remote data is
    #     small — a 4 MiB table sees no benefit (Figure 14, workload B)
    #     while a Zipf hot set does (Figure 19).
    l1_random_rate: float = 60e9
    l1_remote_capacity: float = 2 * MIB
    # --- PCI-e's skew relief: without coherence, hot Unified Memory
    #     pages migrate into GPU memory and are then served locally, but
    #     fault handling caps the service rate (Figure 19: PCI-e speeds
    #     up 6.1x under skew yet stays far below NVLink).
    um_hot_page_rate: float = 0.75e9
    # --- CPU cache tiers. Random probes into an LLC-resident table run
    #     no faster than DRAM-latency-bound probes — the cores' load
    #     machinery is the limit (Figure 13: CPU workloads A and B have
    #     equal NOPA throughput). Only tiny per-core-L1-resident hot
    #     sets are served faster (Figure 19: CPU speeds up 3.5x).
    llc_random_rate: float = 1.2e9
    cpu_l1_capacity: float = 512 * KIB
    cpu_l1_random_rate: float = 4e9

    # --- per-tuple compute work (in processor "work units"; a CPU core
    #     retires tuple_rate_per_core units/s). Hash+probe costs ~2
    #     units; predicated SIMD scans ~0.5 (Figure 15: the CPU's Q6 is
    #     balanced between compute and its memory bandwidth).
    join_work_per_tuple: Dict[str, float] = field(
        default_factory=lambda: {"cpu": 2.0, "gpu": 2.0}
    )
    scan_work_per_tuple: Dict[str, float] = field(
        default_factory=lambda: {"cpu": 0.5, "gpu": 1.0}
    )
    # --- residual column load of branching scans: warp divergence and
    #     speculative prefetch still pull part of a "skippable" column
    #     (Figure 15: branching beats predication on the GPU, but the
    #     CPU stays up to 67% faster than NVLink 2.0 overall).
    branching_residual_load: float = 0.55

    # --- software pipelines (push-based transfer methods, Section 4.1).
    pipeline_chunks: int = 32  # chunks in flight for copy pipelines
    mmio_bandwidth: Dict[str, float] = field(
        default_factory=lambda: {  # pageable cudaMemcpyAsync via CPU MMIO
            "nvlink2": 10.5 * GIB,  # Figure 12: Pageable Copy = 0.67 GT/s
            "pcie3": 3.7 * GIB,  # Figure 12: Pageable Copy = 0.25 GT/s
        }
    )
    staging_bandwidth: float = 35 * GIB  # 4 cores memcpy into pinned buffers
    pin_page_cost: Dict[str, float] = field(
        default_factory=lambda: {  # OS page pinning (Dynamic Pinning);
            "ibm-ac922": 1.6 * US,  # 64 KiB pages: Fig. 12 = 2.36 GT/s
            "intel-xeon-v100": 1.0 * US,  # 4 KiB pages: Fig. 12 = 0.26 GT/s
        }
    )
    dma_efficiency: float = 0.97  # copy-engine overhead vs. raw link bw

    # --- unified memory (Section 4: UM Migration / UM Prefetch).
    #     POWER9 driver is poorly optimized (paper footnote 1).
    um_fault_cost: Dict[str, float] = field(
        default_factory=lambda: {
            "ibm-ac922": 25 * US,  # per 64 KiB page: 0.17 GT/s in Fig. 12
            "intel-xeon-v100": 1.1 * US,  # per 4 KiB page: 0.25 GT/s
        }
    )
    um_prefetch_efficiency: Dict[str, float] = field(
        default_factory=lambda: {
            "ibm-ac922": 0.038,  # Figure 12: UM Prefetch = 0.16 GT/s
            "intel-xeon-v100": 0.66,  # Figure 12: UM Prefetch = 0.54 GT/s
        }
    )

    # --- radix join baseline (Figures 16/17: CPU "PRA" ~0.4-0.5 GT/s,
    #     flat). Effective partitioning bandwidth includes SWWC buffer
    #     flushes, TLB pressure and the read+write round trip.
    partition_bandwidth: Dict[str, float] = field(
        default_factory=lambda: {
            "power9": 8.5 * GIB,
            "xeon-6126": 7.0 * GIB,
        }
    )
    # Cache-resident per-partition build+probe rate, tuples/s per core.
    partition_join_rate_per_core: float = 150e6

    # --- kernel-side overheads.
    join_pipeline_overhead: float = 0.015  # epilogue/launch amortization
    gpu_batch_dispatch_latency: float = 20 * US  # morsel batch round trip
    cpu_morsel_dispatch_latency: float = 0.2 * US

    # --- synchronous device-to-host hash-table broadcast (GPU+Het).
    ht_copy_bandwidth_factor: float = 0.8  # of the GPU link's seq bw

    def independent_factor(self, resource_name: str) -> float:
        """Uplift factor for a spec name; unknown resources get 1.0."""
        return self.independent_access_factor.get(resource_name, 1.0)

    def atomic_rate_for(self, resource_name: str) -> float:
        """Atomic accesses/s for a spec name; falls back to 0.5e9."""
        return self.atomic_rate.get(resource_name, 0.5e9)


DEFAULT_CALIBRATION = Calibration()
