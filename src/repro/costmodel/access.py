"""Access patterns, streams, and access profiles.

A *stream* is the unit of traffic an operator reports to the cost model:
"processor P makes N {sequential | random | atomic} accesses of S bytes
each against memory region M".  Operators never talk about links — the
cost model routes streams over the topology.

Streams within one :class:`AccessProfile` are concurrent: a GPU probe
kernel simultaneously streams the outer relation over the interconnect
and issues random hash-table reads; the phase is as slow as the slowest
resource, not the sum (GPUs hide latency; Section 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.hardware.cache import HotSetProfile


class AccessPattern(enum.Enum):
    """Traffic classes priced differently by the cost model."""

    SEQUENTIAL = "sequential"
    RANDOM = "random"
    ATOMIC = "atomic"


@dataclass(frozen=True)
class Stream:
    """One homogeneous traffic stream of an operator phase.

    Attributes:
        processor: name of the initiating processor.
        memory: name of the target memory region.
        pattern: sequential scan, independent random accesses, or atomics.
        total_bytes: payload bytes moved (sequential streams).
        accesses: number of accesses (random/atomic streams).
        access_bytes: payload bytes per access (random/atomic streams).
        working_set_bytes: size of the randomly-accessed structure, used
            for cache-fit estimation (e.g. the hash table size).
        hot_set: optional skew profile of the random accesses (Figure 19).
        bandwidth_factor: effective-bandwidth multiplier for sequential
            streams, used by transfer methods whose ingest rate is below
            the raw route bandwidth (MMIO, staging, UM; Section 4).
        label: human-readable tag for timelines and debugging.
    """

    processor: str
    memory: str
    pattern: AccessPattern
    total_bytes: float = 0.0
    accesses: float = 0.0
    access_bytes: float = 0.0
    working_set_bytes: float = 0.0
    hot_set: Optional[HotSetProfile] = None
    bandwidth_factor: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.pattern is AccessPattern.SEQUENTIAL:
            if self.total_bytes < 0:
                raise ValueError("sequential stream needs non-negative bytes")
        else:
            if self.accesses < 0 or self.access_bytes < 0:
                raise ValueError("random/atomic stream needs non-negative accesses")
        if self.bandwidth_factor <= 0:
            raise ValueError(
                f"bandwidth factor must be positive, got {self.bandwidth_factor}"
            )

    @property
    def payload_bytes(self) -> float:
        """Useful bytes this stream moves (excluding headers/sectors)."""
        if self.pattern is AccessPattern.SEQUENTIAL:
            return self.total_bytes
        return self.accesses * self.access_bytes

    def scaled(self, factor: float) -> "Stream":
        """A copy with all volumes multiplied by ``factor``.

        Used to translate traffic counted at execution scale to the
        modeled (paper-scale) cardinality; all operators in this library
        generate traffic linear in tuple count.
        """
        if factor < 0:
            raise ValueError(f"scale factor must be non-negative, got {factor}")
        return replace(
            self,
            total_bytes=self.total_bytes * factor,
            accesses=self.accesses * factor,
            working_set_bytes=self.working_set_bytes,
        )


def seq_stream(
    processor: str,
    memory: str,
    total_bytes: float,
    label: str = "",
    bandwidth_factor: float = 1.0,
) -> Stream:
    """Convenience constructor for a sequential scan stream."""
    return Stream(
        processor=processor,
        memory=memory,
        pattern=AccessPattern.SEQUENTIAL,
        total_bytes=total_bytes,
        bandwidth_factor=bandwidth_factor,
        label=label,
    )


def random_stream(
    processor: str,
    memory: str,
    accesses: float,
    access_bytes: float,
    working_set_bytes: float = 0.0,
    hot_set: Optional[HotSetProfile] = None,
    label: str = "",
) -> Stream:
    """Convenience constructor for an independent random-access stream."""
    return Stream(
        processor=processor,
        memory=memory,
        pattern=AccessPattern.RANDOM,
        accesses=accesses,
        access_bytes=access_bytes,
        working_set_bytes=working_set_bytes,
        hot_set=hot_set,
        label=label,
    )


def atomic_stream(
    processor: str,
    memory: str,
    accesses: float,
    access_bytes: float,
    working_set_bytes: float = 0.0,
    contended: bool = False,
    label: str = "",
) -> Stream:
    """Convenience constructor for an atomic update stream.

    ``contended`` marks streams where several processors update the same
    structure concurrently (the Het build phase); the cost model applies
    the coherence-contention penalty then.
    """
    stream = Stream(
        processor=processor,
        memory=memory,
        pattern=AccessPattern.ATOMIC,
        accesses=accesses,
        access_bytes=access_bytes,
        working_set_bytes=working_set_bytes,
        label=label,
    )
    if contended:
        object.__setattr__(stream, "label", (stream.label + " [contended]").strip())
    return stream


@dataclass
class AccessProfile:
    """All concurrent traffic of one operator phase, plus fixed overheads.

    ``makespan_factor`` multiplies the bottleneck time; push-based
    transfer pipelines use it for their fill/drain overhead.

    ``processor`` names the processor executing the phase's *compute*
    work.  When set, all ``compute_tuples`` time is attributed to it;
    when unset, compute is split across the processors appearing in the
    streams.  A profile with compute but neither streams nor an explicit
    processor is unpriceable and the cost model rejects it — this used
    to silently price to zero.
    """

    streams: List[Stream] = field(default_factory=list)
    fixed_overhead: float = 0.0
    compute_tuples: float = 0.0
    makespan_factor: float = 1.0
    label: str = ""
    processor: Optional[str] = None

    def add(self, stream: Stream) -> "AccessProfile":
        self.streams.append(stream)
        return self

    def extend(self, streams: List[Stream]) -> "AccessProfile":
        self.streams.extend(streams)
        return self

    def scaled(self, factor: float) -> "AccessProfile":
        """Profile with all stream volumes and compute scaled linearly."""
        return AccessProfile(
            streams=[s.scaled(factor) for s in self.streams],
            fixed_overhead=self.fixed_overhead,
            compute_tuples=self.compute_tuples * factor,
            makespan_factor=self.makespan_factor,
            label=self.label,
            processor=self.processor,
        )

    @property
    def total_payload_bytes(self) -> float:
        return sum(s.payload_bytes for s in self.streams)
