"""Analytical cost model: prices memory traffic on a simulated machine.

Operators describe the traffic they generate as :class:`AccessProfile`
objects — bundles of :class:`Stream` s (sequential scans, random probes,
atomic updates) between a processor and a memory region.  The
:class:`CostModel` resolves each stream over the machine's interconnect
topology and computes phase times with bottleneck semantics: concurrent
streams overlap, each shared resource accumulates occupancy, and the
phase takes as long as its most-loaded resource.

The primitive bandwidth/latency numbers come from the paper's Figure 3
microbenchmarks (see :mod:`repro.hardware.specs`); a small set of derived
constants lives in :mod:`repro.costmodel.calibration`.
"""

from repro.costmodel.access import (
    AccessPattern,
    AccessProfile,
    Stream,
    atomic_stream,
    random_stream,
    seq_stream,
)
from repro.costmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.costmodel.model import CostModel, PhaseCost

__all__ = [
    "AccessPattern",
    "AccessProfile",
    "Stream",
    "atomic_stream",
    "random_stream",
    "seq_stream",
    "Calibration",
    "DEFAULT_CALIBRATION",
    "CostModel",
    "PhaseCost",
]
