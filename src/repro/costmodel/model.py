"""The cost model: translates access profiles into phase times.

Semantics
---------

* Streams of one profile are concurrent.  Every stream deposits
  *occupancy* (busy seconds) on each resource it crosses; the phase
  takes as long as its most-occupied resource (bottleneck / roofline
  semantics), times the profile's makespan factor, plus fixed overheads.
  Two streams crossing the same link serialize on it; streams on
  disjoint resources overlap fully.
* Sequential streams are priced at measured streaming bandwidths (times
  the stream's ``bandwidth_factor`` for software-limited transfers).
* Random streams involve three capacities, each its own resource:

  - the **initiator** (``issue:<proc>``): MLP over end-to-end latency,
    scaled by a calibrated issue efficiency;
  - every **link** crossed: the Figure-3 random rate with the
    independent-access uplift, plus sector-granular wire bytes;
  - the **target memory**: its random rate, uplifted and multiplied by
    the DRAM concurrency (a DDR4 socket absorbs both its own cores' and
    the GPU's requests — this is what makes Het co-processing pay off).

* Atomics use the slower calibrated atomic rates (they serialize in
  memory controllers and the NVLink NPU); ``[contended]`` streams are
  further penalized (Figure 21b's Het build).
* Cache effects: the initiating processor's caches absorb a fraction of
  random accesses when the working set or the skew hot set fits; the
  V100 L2 is memory-side and never caches remote data (Figure 14).

For co-processing, :meth:`CostModel.occupancy_per_unit` exposes a
worker's per-tuple occupancy vector, which feeds the max-min fair
concurrent-rate solver in :mod:`repro.sim.resources`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.costmodel.access import AccessPattern, AccessProfile, Stream
from repro.costmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hardware.cache import CacheModel
from repro.hardware.interconnect import Interconnect
from repro.hardware.memory import MemoryRegion
from repro.hardware.processor import Cpu, Gpu, Processor
from repro.hardware.topology import Machine
from repro.obs import Observability


@dataclass(frozen=True)
class PhaseCost:
    """Result of pricing one phase."""

    seconds: float
    bottleneck: str
    occupancy: Dict[str, float]
    label: str = ""

    def __str__(self) -> str:
        return f"PhaseCost({self.seconds:.4f}s, bottleneck={self.bottleneck})"


class CostModel:
    """Prices access profiles on one machine.

    Every cost model carries an :class:`~repro.obs.Observability` bundle
    (injectable for sharing across operators): :meth:`phase_cost` opens
    a span per priced phase on the deterministic sim-clock and deposits
    per-stream metrics — bytes per link, atomic ops, cache hit rates —
    so every priced stream is attributable after the fact.
    """

    def __init__(
        self,
        machine: Machine,
        calibration: Calibration = DEFAULT_CALIBRATION,
        obs: Optional[Observability] = None,
    ) -> None:
        self.machine = machine
        self.calibration = calibration
        self.obs = obs if obs is not None else Observability.create()

    # ------------------------------------------------------------------
    # Primitive queries
    # ------------------------------------------------------------------
    def sequential_bandwidth(self, processor: str, memory: str) -> float:
        """End-to-end streaming bandwidth from processor to memory region."""
        region = self.machine.memory(memory)
        path = self.machine.path(processor, memory)
        bandwidth = region.spec.seq_bw
        for link in path:
            bandwidth = min(bandwidth, link.spec.seq_bw)
        return bandwidth

    def path_latency(self, processor: str, memory: str) -> float:
        """End-to-end access latency: memory plus every link crossed."""
        region = self.machine.memory(memory)
        path = self.machine.path(processor, memory)
        return region.spec.latency + sum(link.spec.latency for link in path)

    def issue_rate(self, processor: str, memory: str) -> float:
        """Random accesses/s the *initiator* can keep in flight."""
        proc = self.machine.processor(processor)
        kind = "gpu" if isinstance(proc, Gpu) else "cpu"
        efficiency = self.calibration.issue_efficiency.get(kind, 1.0)
        rate = proc.memory_parallelism() / self.path_latency(processor, memory)
        hops = len(self.machine.path(processor, memory))
        if hops > 1:
            rate *= self.calibration.per_hop_random_penalty ** (hops - 1)
        return rate * efficiency

    def memory_random_capacity(self, memory: str) -> float:
        """Random accesses/s the target memory absorbs across initiators."""
        region = self.machine.memory(memory)
        return (
            region.spec.random_access_rate
            * self.calibration.independent_factor(region.spec.name)
            * self.calibration.dram_concurrency.get(region.spec.name, 1.0)
        )

    def link_random_rate(self, link: Interconnect) -> float:
        """Independent random accesses/s one link instance sustains."""
        return link.spec.random_access_rate * self.calibration.independent_factor(
            link.spec.name
        )

    def random_access_rate(self, processor: str, memory: str) -> float:
        """Solo end-to-end random access rate (min of all capacities)."""
        rate = min(
            self.issue_rate(processor, memory),
            self.memory_random_capacity(memory),
        )
        for link in self.machine.path(processor, memory):
            rate = min(rate, self.link_random_rate(link))
        return rate

    def atomic_rate(
        self, processor: str, memory: str, contended: bool = False
    ) -> float:
        """Atomic updates/s from processor into memory.

        An atomic is at least as expensive as a plain random access (it
        is a read-modify-write), so the read path's rate is an upper
        bound; memory controllers and link protocol engines lower it
        further (the calibrated per-technology atomic rates).
        """
        region = self.machine.memory(memory)
        path = self.machine.path(processor, memory)
        rate = self.calibration.atomic_rate_for(region.spec.name)
        for link in path:
            rate = min(rate, self.calibration.atomic_rate_for(link.spec.name))
        if len(path) > 1:
            rate *= self.calibration.per_hop_random_penalty ** (len(path) - 1)
        rate = min(rate, self.random_access_rate(processor, memory))
        if contended:
            rate *= self.calibration.shared_build_contention
        return rate

    # ------------------------------------------------------------------
    # Cache resolution
    # ------------------------------------------------------------------
    def _serving_cache(
        self,
        proc: Processor,
        region: MemoryRegion,
        path: List[Interconnect],
        skewed: bool,
    ) -> Tuple[Optional[CacheModel], float, str]:
        """Cache that may absorb random accesses, its rate, and its name.

        GPUs: local data is served by the memory-side L2; remote data is
        only cacheable over a coherent link, in the L1, and only with a
        small effective capacity (Figure 14 workload B vs. Figure 19).

        CPUs: LLC-resident working sets are served at the core-bound
        random rate (no faster than DRAM probes — Figure 13); skewed hot
        sets small enough for the per-core L1s are served fast.
        """
        remote = region.owner != proc.name
        if isinstance(proc, Gpu):
            if not remote:
                return proc.l2, self.calibration.l2_random_rate, f"{proc.name}:l2"
            coherent = all(link.spec.cache_coherent for link in path)
            if coherent:
                l1 = CacheModel(
                    proc.l1.spec,
                    capacity_override=int(self.calibration.l1_remote_capacity),
                )
                return l1, self.calibration.l1_random_rate, f"{proc.name}:l1"
            if skewed:
                # Non-coherent links get partial relief from Unified
                # Memory: hot pages migrate into GPU memory, but fault
                # handling bounds the service rate (Figure 19, PCI-e).
                um = CacheModel(
                    proc.l1.spec,
                    capacity_override=int(self.calibration.l1_remote_capacity),
                )
                return um, self.calibration.um_hot_page_rate, f"{proc.name}:um"
            return None, 0.0, ""
        if isinstance(proc, Cpu):
            if skewed:
                l1 = CacheModel(
                    proc.llc.spec,
                    capacity_override=int(self.calibration.cpu_l1_capacity),
                )
                return l1, self.calibration.cpu_l1_random_rate, f"{proc.name}:l1"
            return proc.llc, self.calibration.llc_random_rate, f"{proc.name}:llc"
        return None, 0.0, ""

    def cache_hit_rate(self, stream: Stream) -> Tuple[float, float, str]:
        """(hit_rate, cache_rate, cache_resource) for a random stream."""
        proc = self.machine.processor(stream.processor)
        region = self.machine.memory(stream.memory)
        path = self.machine.path(stream.processor, stream.memory)
        cache, rate, name = self._serving_cache(
            proc, region, path, skewed=stream.hot_set is not None
        )
        if cache is None or stream.working_set_bytes <= 0:
            return 0.0, rate, name
        remote = region.owner != proc.name
        # Without a skew profile, only whole-working-set fits count as
        # cacheable; a uniformly probed over-capacity set thrashes.
        if stream.hot_set is None and stream.working_set_bytes > cache.capacity:
            return 0.0, rate, name
        hit = cache.hit_rate(
            stream.working_set_bytes,
            data_is_remote=remote,
            hot_set=stream.hot_set,
            entry_bytes=max(stream.access_bytes, 1.0),
        )
        return hit, rate, name

    # ------------------------------------------------------------------
    # Stream pricing
    # ------------------------------------------------------------------
    def stream_occupancy(self, stream: Stream) -> Dict[str, float]:
        """Busy-seconds deposited by one stream on each resource."""
        if stream.pattern is AccessPattern.SEQUENTIAL:
            return self._sequential_occupancy(stream)
        return self._random_occupancy(stream)

    def _sequential_occupancy(self, stream: Stream) -> Dict[str, float]:
        region = self.machine.memory(stream.memory)
        path = self.machine.path(stream.processor, stream.memory)
        factor = stream.bandwidth_factor
        occupancy: Dict[str, float] = {}
        occupancy[f"mem:{region.name}"] = stream.total_bytes / (
            region.spec.seq_bw * factor
        )
        for link in path:
            occupancy[f"link:{link.name}"] = stream.total_bytes / (
                link.spec.seq_bw * factor
            )
        return occupancy

    def _random_occupancy(self, stream: Stream) -> Dict[str, float]:
        region = self.machine.memory(stream.memory)
        path = self.machine.path(stream.processor, stream.memory)
        contended = "[contended]" in stream.label
        occupancy: Dict[str, float] = defaultdict(float)

        if stream.pattern is AccessPattern.ATOMIC:
            rate = self.atomic_rate(stream.processor, stream.memory, contended)
            if stream.accesses > 0:
                occupancy[f"mem:{region.name}"] = stream.accesses / rate
                sector = max(
                    stream.access_bytes, self.calibration.random_sector_bytes
                )
                for link in path:
                    wire = stream.accesses * (sector + link.spec.header_bytes)
                    occupancy[f"link:{link.name}"] = max(
                        stream.accesses / rate, wire / link.spec.seq_bw
                    )
            return dict(occupancy)

        hit, cache_rate, cache_name = self.cache_hit_rate(stream)
        misses = stream.accesses * (1.0 - hit)
        hits = stream.accesses * hit
        sector = max(stream.access_bytes, self.calibration.random_sector_bytes)
        if misses > 0:
            occupancy[f"issue:{stream.processor}"] = misses / self.issue_rate(
                stream.processor, stream.memory
            )
            occupancy[f"mem:{region.name}"] = max(
                misses / self.memory_random_capacity(stream.memory),
                misses * sector / region.spec.seq_bw,
            )
            for link in path:
                wire = misses * (sector + link.spec.header_bytes)
                occupancy[f"link:{link.name}"] = max(
                    misses / self.link_random_rate(link),
                    wire / link.spec.seq_bw,
                )
        if hits > 0 and cache_name:
            occupancy[f"cache:{cache_name}"] += hits / cache_rate
        return dict(occupancy)

    # ------------------------------------------------------------------
    # Phase pricing
    # ------------------------------------------------------------------
    def profile_occupancy(self, profile: AccessProfile) -> Dict[str, float]:
        """Summed occupancy of a whole profile, including compute.

        Compute time goes to the profile's explicit ``processor`` when
        set, else is split across the processors its streams name.  A
        compute-only profile without either is rejected: it used to lose
        its compute time silently and price to zero.
        """
        occupancy: Dict[str, float] = defaultdict(float)
        for stream in profile.streams:
            for resource, busy in self.stream_occupancy(stream).items():
                occupancy[resource] += busy
        if profile.compute_tuples > 0:
            if profile.processor is not None:
                processors = [profile.processor]
            else:
                processors = sorted({s.processor for s in profile.streams})
            if not processors:
                raise ValueError(
                    f"profile {profile.label!r} has compute_tuples="
                    f"{profile.compute_tuples} but no streams and no "
                    "explicit processor; set AccessProfile.processor so "
                    "the compute time is attributable"
                )
            for name in processors:
                proc = self.machine.processor(name)
                occupancy[f"compute:{name}"] += (
                    profile.compute_tuples / len(processors)
                ) / proc.tuple_throughput()
        return dict(occupancy)

    def occupancy_per_unit(
        self, profile: AccessProfile, units: float
    ) -> Dict[str, float]:
        """Per-work-unit occupancy vector (for the concurrency solver)."""
        if units <= 0:
            raise ValueError(f"units must be positive, got {units}")
        return {
            resource: busy / units
            for resource, busy in self.profile_occupancy(profile).items()
        }

    def phase_cost(self, profile: AccessProfile) -> PhaseCost:
        """Price one phase: bottleneck over all resources plus overheads."""
        occupancy = self.profile_occupancy(profile)
        if not occupancy:
            cost = PhaseCost(
                seconds=profile.fixed_overhead,
                bottleneck="(none)",
                occupancy={},
                label=profile.label,
            )
            self._record_phase(profile, cost)
            return cost
        bottleneck = max(occupancy, key=lambda r: occupancy[r])
        seconds = occupancy[bottleneck] * (
            1.0 + self.calibration.join_pipeline_overhead
        )
        seconds *= profile.makespan_factor
        seconds += profile.fixed_overhead
        cost = PhaseCost(
            seconds=seconds,
            bottleneck=bottleneck,
            occupancy=occupancy,
            label=profile.label,
        )
        self._record_phase(profile, cost)
        return cost

    def phases_cost(self, profiles: List[AccessProfile]) -> List[PhaseCost]:
        """Price several sequential phases (build, then probe, ...)."""
        return [self.phase_cost(p) for p in profiles]

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _phase_worker(self, profile: AccessProfile) -> str:
        if profile.processor is not None:
            return profile.processor
        for stream in profile.streams:
            return stream.processor
        return "cost-model"

    def _record_phase(self, profile: AccessProfile, cost: PhaseCost) -> None:
        """Span + metrics for one priced phase (sim-clock seconds)."""
        with self.obs.tracer.span(
            f"price[{profile.label or 'phase'}]",
            worker=self._phase_worker(profile),
            units=profile.compute_tuples,
            bottleneck=cost.bottleneck,
        ) as span:
            span.advance(cost.seconds)
        self.record_profile_metrics(profile)

    def link_wire_bytes(self, stream: Stream) -> Dict[str, float]:
        """Wire bytes ``{link name: bytes}`` one stream puts on each link.

        Sequential streams move their payload; random/atomic streams
        move sector-granular lines plus per-access protocol headers —
        the same accounting the pricing path uses.
        """
        path = self.machine.path(stream.processor, stream.memory)
        if stream.pattern is AccessPattern.SEQUENTIAL:
            return {link.name: stream.total_bytes for link in path}
        sector = max(stream.access_bytes, self.calibration.random_sector_bytes)
        return {
            link.name: stream.accesses * (sector + link.spec.header_bytes)
            for link in path
        }

    def record_profile_metrics(self, profile: AccessProfile) -> None:
        """Deposit one profile's per-stream attribution into the registry.

        Called once per *priced* phase (never from the per-unit solver
        path, which re-evaluates profiles many times).
        """
        metrics = self.obs.metrics
        phase = profile.label or "phase"
        for resource, busy in self.profile_occupancy(profile).items():
            metrics.counter(
                "resource_busy_seconds_total", resource=resource
            ).inc(busy)
        for stream in profile.streams:
            for link_name, wire in self.link_wire_bytes(stream).items():
                metrics.counter(
                    "link_bytes_total",
                    link=link_name,
                    processor=stream.processor,
                ).inc(wire)
            metrics.counter(
                "stream_payload_bytes_total",
                processor=stream.processor,
                memory=stream.memory,
                pattern=stream.pattern.value,
            ).inc(stream.payload_bytes)
            if stream.pattern is AccessPattern.ATOMIC:
                metrics.counter(
                    "atomic_ops_total",
                    processor=stream.processor,
                    memory=stream.memory,
                ).inc(stream.accesses)
            elif stream.pattern is AccessPattern.RANDOM:
                hit, _rate, cache_name = self.cache_hit_rate(stream)
                if cache_name:
                    metrics.gauge(
                        "cache_hit_rate", cache=cache_name, phase=phase
                    ).set(hit)
                    metrics.counter(
                        "cache_hits_total", cache=cache_name
                    ).inc(stream.accesses * hit)
        if profile.compute_tuples > 0:
            metrics.counter(
                "compute_tuples_total", processor=self._phase_worker(profile)
            ).inc(profile.compute_tuples)
