"""Vectorized pull-based operators over column batches.

A *batch* is a dict of equal-length numpy arrays.  Operators are
iterables of batches; pipeline breakers (join build, aggregation)
consume their child eagerly.  Everything is deterministic and
allocation-light: filters and projections work on views where numpy
allows it.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, Mapping, Optional, Tuple

import numpy as np

from repro.core.hashtable import create_hash_table
from repro.data.relation import Relation

Batch = Dict[str, np.ndarray]


def _batch_rows(batch: Batch) -> int:
    if not batch:
        return 0
    lengths = {len(column) for column in batch.values()}
    if len(lengths) != 1:
        raise ValueError(f"ragged batch: column lengths {sorted(lengths)}")
    return lengths.pop()


class Operator:
    """Base: an iterable of batches with a fixed output schema."""

    def schema(self) -> Tuple[str, ...]:
        """Names of the output columns, in batch order."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[Batch]:
        """Yield output batches (dicts of equal-length arrays)."""
        raise NotImplementedError


class TableScan(Operator):
    """Scans in-memory columns morsel-wise.

    Accepts either a dict of columns or a :class:`Relation` (exposed as
    ``key`` and ``payload`` columns).
    """

    def __init__(
        self,
        source,
        morsel_rows: int = 1 << 16,
        columns: Optional[Iterable[str]] = None,
    ) -> None:
        if morsel_rows <= 0:
            raise ValueError(f"morsel size must be positive: {morsel_rows}")
        if isinstance(source, Relation):
            data = {"key": source.key, "payload": source.payload}
        else:
            data = dict(source)
        if not data:
            raise ValueError("scan needs at least one column")
        if columns is not None:
            data = {name: data[name] for name in columns}
        _batch_rows(data)  # validates equal lengths
        self._data = data
        self.morsel_rows = morsel_rows

    def schema(self) -> Tuple[str, ...]:
        return tuple(self._data)

    @property
    def rows(self) -> int:
        return _batch_rows(self._data)

    def __iter__(self) -> Iterator[Batch]:
        total = self.rows
        for start in range(0, total, self.morsel_rows):
            end = min(start + self.morsel_rows, total)
            yield {name: col[start:end] for name, col in self._data.items()}


class Filter(Operator):
    """Keeps rows where ``predicate(batch)`` is True."""

    def __init__(self, child: Operator, predicate: Callable[[Batch], np.ndarray]):
        self.child = child
        self.predicate = predicate

    def schema(self) -> Tuple[str, ...]:
        return self.child.schema()

    def __iter__(self) -> Iterator[Batch]:
        for batch in self.child:
            mask = np.asarray(self.predicate(batch), dtype=bool)
            if mask.shape != (next(iter(batch.values())).shape[0],):
                raise ValueError("predicate must return one bool per row")
            if mask.all():
                yield batch
            elif mask.any():
                yield {name: col[mask] for name, col in batch.items()}


class Project(Operator):
    """Computes output columns from expressions over the input batch."""

    def __init__(
        self,
        child: Operator,
        expressions: Mapping[str, Callable[[Batch], np.ndarray]],
    ):
        if not expressions:
            raise ValueError("projection needs at least one expression")
        self.child = child
        self.expressions = dict(expressions)

    def schema(self) -> Tuple[str, ...]:
        return tuple(self.expressions)

    def __iter__(self) -> Iterator[Batch]:
        for batch in self.child:
            yield {
                name: np.asarray(expr(batch))
                for name, expr in self.expressions.items()
            }


class Limit(Operator):
    """Passes through at most ``n`` rows."""

    def __init__(self, child: Operator, n: int):
        if n < 0:
            raise ValueError(f"limit must be non-negative: {n}")
        self.child = child
        self.n = n

    def schema(self) -> Tuple[str, ...]:
        return self.child.schema()

    def __iter__(self) -> Iterator[Batch]:
        remaining = self.n
        for batch in self.child:
            if remaining <= 0:
                return
            rows = _batch_rows(batch)
            if rows <= remaining:
                remaining -= rows
                yield batch
            else:
                yield {name: col[:remaining] for name, col in batch.items()}
                return


class HashJoinOp(Operator):
    """Equi-join: builds a table from the build child, streams the probe.

    Build-side columns are emitted with ``output_prefix`` prepended
    (``build_`` by default; star plans joining several identically-
    schemed dimensions pass a per-dimension prefix), except the key,
    which equals the probe key on output.  Inner join semantics; the
    build side must have unique keys (it is the paper's primary-key
    relation).
    """

    def __init__(
        self,
        build: Operator,
        probe: Operator,
        build_key: str,
        probe_key: str,
        hash_scheme: str = "open_addressing",
        output_prefix: str = "build_",
    ) -> None:
        self.build = build
        self.probe = probe
        self.build_key = build_key
        self.probe_key = probe_key
        self.hash_scheme = hash_scheme
        self.output_prefix = output_prefix
        self._build_payload_names = [
            name for name in build.schema() if name != build_key
        ]

    def schema(self) -> Tuple[str, ...]:
        probe_cols = self.probe.schema()
        build_cols = tuple(
            f"{self.output_prefix}{n}" for n in self._build_payload_names
        )
        return probe_cols + build_cols

    def __iter__(self) -> Iterator[Batch]:
        # Pipeline breaker: materialize the build side.
        build_batches = list(self.build)
        if build_batches:
            keys = np.concatenate([b[self.build_key] for b in build_batches])
            payload_rows = {
                name: np.concatenate([b[name] for b in build_batches])
                for name in self._build_payload_names
            }
        else:
            keys = np.array([], dtype=np.int64)
            payload_rows = {name: np.array([]) for name in self._build_payload_names}
        # The hash table stores row ids; payload columns stay columnar.
        table = create_hash_table(
            self.hash_scheme, max(1, len(keys)), np.int64, np.int64
        )
        if len(keys):
            table.insert_batch(
                keys.astype(np.int64), np.arange(len(keys), dtype=np.int64)
            )
        for batch in self.probe:
            probe_keys = batch[self.probe_key].astype(np.int64)
            found, row_ids = table.lookup_batch(probe_keys)
            if not found.any():
                continue
            out = {name: col[found] for name, col in batch.items()}
            matched_rows = row_ids[found]
            for name in self._build_payload_names:
                out_name = f"{self.output_prefix}{name}"
                out[out_name] = payload_rows[name][matched_rows]
            yield out


_AGG_FUNCTIONS = {
    "sum": np.add,
    "min": np.minimum,
    "max": np.maximum,
}


class HashAggregate(Operator):
    """Group-by aggregation (sum/min/max/count/mean).

    ``aggregates`` maps output names to ``(column, function)`` pairs;
    ``("*", "count")`` counts rows.  With an empty ``group_by`` the
    result is a single global row.
    """

    def __init__(
        self,
        child: Operator,
        group_by: Tuple[str, ...],
        aggregates: Mapping[str, Tuple[str, str]],
    ) -> None:
        if not aggregates:
            raise ValueError("aggregation needs at least one aggregate")
        for name, (column, function) in aggregates.items():
            if function not in ("sum", "min", "max", "count", "mean"):
                raise ValueError(f"unknown aggregate function: {function}")
            if function == "count" and column != "*":
                raise ValueError("count aggregates use column '*'")
        self.child = child
        self.group_by = tuple(group_by)
        self.aggregates = dict(aggregates)

    def schema(self) -> Tuple[str, ...]:
        return self.group_by + tuple(self.aggregates)

    def __iter__(self) -> Iterator[Batch]:
        groups: Dict[Tuple, Dict[str, float]] = {}

        def fold(key: Tuple, batch: Batch, rows: np.ndarray) -> None:
            state = groups.setdefault(key, {})
            n = int(rows.sum()) if rows.dtype == bool else len(rows)
            for name, (column, function) in self.aggregates.items():
                if function == "count":
                    state[name] = state.get(name, 0) + n
                    continue
                values = batch[column][rows]
                if len(values) == 0:
                    continue
                if function == "mean":
                    state[name + "#sum"] = state.get(name + "#sum", 0.0) + float(
                        values.astype(np.float64).sum()
                    )
                    state[name + "#n"] = state.get(name + "#n", 0) + len(values)
                    continue
                op = _AGG_FUNCTIONS[function]
                partial = op.reduce(values)
                if name in state:
                    state[name] = op(state[name], partial)
                else:
                    state[name] = partial

        for batch in self.child:
            rows = _batch_rows(batch)
            if rows == 0:
                continue
            if not self.group_by:
                fold((), batch, np.arange(rows))
                continue
            group_cols = [batch[name] for name in self.group_by]
            # Vectorized grouping: sort by a composite key within the batch.
            composite = np.rec.fromarrays(group_cols)
            order = np.argsort(composite, kind="stable")
            sorted_composite = composite[order]
            boundaries = np.flatnonzero(
                np.concatenate(
                    ([True], sorted_composite[1:] != sorted_composite[:-1])
                )
            )
            boundaries = np.append(boundaries, rows)
            for i in range(len(boundaries) - 1):
                segment = order[boundaries[i] : boundaries[i + 1]]
                key = tuple(col[segment[0]] for col in group_cols)
                fold(key, batch, segment)

        if not groups:
            return
        keys = sorted(groups)
        out: Batch = {}
        for i, name in enumerate(self.group_by):
            out[name] = np.array([key[i] for key in keys])
        for name, (column, function) in self.aggregates.items():
            if function == "mean":
                out[name] = np.array(
                    [
                        groups[key][name + "#sum"] / groups[key][name + "#n"]
                        for key in keys
                    ]
                )
            else:
                out[name] = np.array([groups[key].get(name, 0) for key in keys])
        yield out


class OrderBy(Operator):
    """Pipeline breaker: materializes the child and sorts by columns."""

    def __init__(
        self,
        child: Operator,
        by: Tuple[str, ...],
        descending: bool = False,
    ) -> None:
        if not by:
            raise ValueError("order-by needs at least one column")
        self.child = child
        self.by = tuple(by)
        self.descending = descending

    def schema(self) -> Tuple[str, ...]:
        return self.child.schema()

    def __iter__(self) -> Iterator[Batch]:
        data = collect(self.child)
        if not data or _batch_rows(data) == 0:
            return
        # Stable lexicographic sort: last key is most significant for
        # numpy's lexsort, so reverse the user's order.
        keys = [data[name] for name in reversed(self.by)]
        order = np.lexsort(keys)
        if self.descending:
            order = order[::-1]
        yield {name: col[order] for name, col in data.items()}


class TopK(Operator):
    """The k rows with the largest (or smallest) values of one column.

    Streaming: keeps a running candidate set of at most 2k rows per
    batch boundary, so the full input is never materialized.
    """

    def __init__(self, child: Operator, by: str, k: int, largest: bool = True):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.child = child
        self.by = by
        self.k = k
        self.largest = largest

    def schema(self) -> Tuple[str, ...]:
        return self.child.schema()

    def __iter__(self) -> Iterator[Batch]:
        candidates: Optional[Batch] = None
        for batch in self.child:
            if _batch_rows(batch) == 0:
                continue
            if candidates is None:
                candidates = {name: col.copy() for name, col in batch.items()}
            else:
                candidates = {
                    name: np.concatenate([candidates[name], batch[name]])
                    for name in candidates
                }
            if _batch_rows(candidates) > 2 * self.k:
                candidates = self._prune(candidates)
        if candidates is None:
            return
        result = self._prune(candidates)
        order = np.argsort(result[self.by], kind="stable")
        if self.largest:
            order = order[::-1]
        yield {name: col[order] for name, col in result.items()}

    def _prune(self, batch: Batch) -> Batch:
        values = batch[self.by]
        if len(values) <= self.k:
            return batch
        if self.largest:
            keep = np.argpartition(values, len(values) - self.k)[-self.k :]
        else:
            keep = np.argpartition(values, self.k - 1)[: self.k]
        return {name: col[keep] for name, col in batch.items()}


def collect(operator: Operator) -> Batch:
    """Materialize an operator tree into one concatenated batch."""
    batches = list(operator)
    if not batches:
        return {name: np.array([]) for name in operator.schema()}
    return {
        name: np.concatenate([batch[name] for batch in batches])
        for name in batches[0]
    }
