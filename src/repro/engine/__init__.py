"""A small vectorized, morsel-at-a-time query engine.

The paper's operators (selection, aggregation, hash join) composed into
pull-based pipelines over column batches.  This is the *functional*
execution substrate: it computes real answers on numpy columns,
morsel-wise, through the same dispatcher granularity the scheduler
uses.  The examples use it to run multi-operator queries (Q6, join +
aggregate) end to end; equivalence tests pin it against the dedicated
operators.

Operators::

    scan = TableScan({"k": keys, "v": values}, morsel_rows=65536)
    joined = HashJoinOp(build=scan_r, probe=scan_s,
                        build_key="k", probe_key="fk")
    result = collect(HashAggregate(joined, group_by=(),
                                   aggregates={"total": ("v", "sum")}))
"""

from repro.engine.operators import (
    Batch,
    Filter,
    HashAggregate,
    HashJoinOp,
    Limit,
    Operator,
    OrderBy,
    Project,
    TableScan,
    TopK,
    collect,
)

__all__ = [
    "Batch",
    "Filter",
    "HashAggregate",
    "HashJoinOp",
    "Limit",
    "Operator",
    "OrderBy",
    "Project",
    "TopK",
    "TableScan",
    "collect",
    "run_pipeline",
    "to_operators",
]


def __getattr__(name):
    # Lazy re-export of the logical-plan interpreter entry points
    # (repro.logical.interpret imports repro.engine.operators, so a
    # top-level import here would be circular).
    if name in ("run_pipeline", "to_operators"):
        from repro.logical import interpret

        return getattr(interpret, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
