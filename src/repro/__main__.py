"""Command-line entry point.

Usage::

    python -m repro info                # describe the simulated machines
    python -m repro figures             # run every figure reproduction
    python -m repro figure 17           # run one figure (by number)
    python -m repro join [options]      # run one configurable join
"""

from __future__ import annotations

import argparse
import importlib
import sys

from repro.utils.units import format_bytes

FIGURE_MODULES = {
    "1": "fig01_bandwidth",
    "3": "fig03_microbench",
    "11": "fig11_placement",
    "12": "fig12_transfer_methods",
    "13": "fig13_data_locality",
    "14": "fig14_hashtable_locality",
    "15": "fig15_tpch_q6",
    "16": "fig16_probe_scaling",
    "17": "fig17_build_scaling",
    "18": "fig18_build_probe_ratio",
    "19": "fig19_skew",
    "20": "fig20_selectivity",
    "21": "fig21_coprocessing",
    "ablations": "ablations",
    "multi-gpu": "multi_gpu",
    "table1": "table01_methods",
    "sensitivity": "sensitivity",
}


def cmd_info(_args) -> int:
    from repro.hardware.topology import ibm_ac922, intel_xeon_v100

    for machine in (ibm_ac922(), intel_xeon_v100()):
        print(f"{machine.name}")
        for cpu in machine.cpus():
            print(
                f"  {cpu.name}: {cpu.spec.name}, {cpu.spec.cores} cores x "
                f"SMT{cpu.spec.smt}, {format_bytes(cpu.local_memory.capacity)} "
                f"memory"
            )
        for gpu in machine.gpus():
            link = machine.gpu_link(gpu.name)
            print(
                f"  {gpu.name}: {gpu.spec.name}, {gpu.spec.sms} SMs, "
                f"{format_bytes(gpu.local_memory.capacity)} memory, "
                f"attached via {link.spec.name}"
            )
        print(f"  coherent GPU access: {machine.coherent_gpu_access}")
        print()
    return 0


def cmd_figures(_args) -> int:
    from repro.bench import run_all

    run_all.main([])
    return 0


def cmd_figure(args) -> int:
    name = FIGURE_MODULES.get(args.number)
    if name is None:
        valid = ", ".join(sorted(FIGURE_MODULES))
        print(f"unknown figure {args.number!r}; valid: {valid}", file=sys.stderr)
        return 2
    module = importlib.import_module(f"repro.bench.{name}")
    module.main()
    return 0


def cmd_join(args) -> int:
    import repro

    machine = (
        repro.ibm_ac922() if args.machine == "ibm" else repro.intel_xeon_v100()
    )
    builders = {
        "a": repro.workload_a,
        "b": repro.workload_b,
        "c": repro.workload_c,
    }
    workload = builders[args.workload](scale=args.scale)
    # Allocate the relations as the chosen transfer method requires.
    workload = workload.placed_for(args.method)
    join = repro.NoPartitioningJoin(
        machine,
        hash_table_placement=args.placement,
        transfer_method=args.method,
    )
    result = join.run(workload.r, workload.s, processor=args.processor)
    print(f"workload {args.workload.upper()} on {machine.name} "
          f"({args.processor}, table={args.placement}, method={args.method})")
    print(f"  matches:    {result.matches}")
    print(f"  build:      {result.build_cost.seconds:.3f} s "
          f"[{result.build_cost.bottleneck}]")
    print(f"  probe:      {result.probe_cost.seconds:.3f} s "
          f"[{result.probe_cost.bottleneck}]")
    print(f"  throughput: {result.throughput_gtuples:.2f} G Tuples/s")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Pump Up the Volume' (SIGMOD 2020)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="describe the simulated machines")
    sub.add_parser("figures", help="run every figure reproduction")

    one = sub.add_parser("figure", help="run one figure reproduction")
    one.add_argument("number", help="figure number (e.g. 17) or name")

    join = sub.add_parser("join", help="run one configurable join")
    join.add_argument("--machine", choices=("ibm", "intel"), default="ibm")
    join.add_argument("--workload", choices=("a", "b", "c"), default="a")
    join.add_argument(
        "--placement", default="gpu",
        help="gpu | cpu | hybrid | a region name",
    )
    join.add_argument("--method", default="coherence")
    join.add_argument("--processor", default="gpu0")
    join.add_argument("--scale", type=float, default=2.0**-12)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "info": cmd_info,
        "figures": cmd_figures,
        "figure": cmd_figure,
        "join": cmd_join,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
