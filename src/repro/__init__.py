"""repro — reproduction of "Pump Up the Volume: Processing Large Data on
GPUs with Fast Interconnects" (Lutz et al., SIGMOD 2020).

The library pairs a *functional* execution layer (real numpy hash joins,
selections, and aggregations that compute correct answers) with a
*performance* layer (a calibrated analytical + discrete-event model of
the paper's IBM AC922 and Intel Xeon + V100 machines).  See DESIGN.md for
the architecture and EXPERIMENTS.md for paper-vs-simulated results.

Quickstart::

    import repro

    machine = repro.ibm_ac922()
    wl = repro.workload_a(scale=1 / 64)
    join = repro.NoPartitioningJoin(machine, transfer_method="coherence")
    result = join.run(wl.r, wl.s)
    print(result.throughput_gtuples, "G Tuples/s")
"""

from repro.hardware.topology import Machine, ibm_ac922, intel_xeon_v100
from repro.costmodel import Calibration, CostModel, DEFAULT_CALIBRATION

__version__ = "1.0.0"

__all__ = [
    "Machine",
    "ibm_ac922",
    "intel_xeon_v100",
    "CostModel",
    "Calibration",
    "DEFAULT_CALIBRATION",
    "__version__",
]


def __getattr__(name):
    """Lazily expose the high-level API (joins, workloads, operators).

    Importing :mod:`repro.api` eagerly would pull the whole library into
    every ``import repro``; deferring keeps the base import light and
    avoids cycles while the package initializes.  ``import_module`` is
    used instead of ``from repro import api`` because the latter would
    re-enter this ``__getattr__`` before the submodule finishes loading.
    """
    import importlib

    api = importlib.import_module("repro.api")
    try:
        return getattr(api, name)
    except AttributeError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
