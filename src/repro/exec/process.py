"""Process-parallel morsel executor (past the GIL).

The threads backend parallelizes dispatch but numpy kernels still share
one interpreter; this backend forks real worker processes, echoing the
coupled-architecture co-processing split: the parent plans a static,
deterministic decomposition, forked children execute their ranges
against ``multiprocessing.shared_memory`` buffers (see
:mod:`repro.exec.shm`), and the parent merges per-worker summaries in
worker-name order.

**Fork is required.**  The functional layer's tasks close over numpy
arrays and lambdas — unpicklable under ``spawn`` — and fork's
copy-on-write pages give children free read access to every input.
Constructing the executor on a platform without fork raises.

Determinism guarantee (same contract as the threads pool): ranges
partition ``[0, total_tuples)``, each range executes exactly once into
a private (morsel-range or shard-disjoint) region, and summaries merge
in sorted worker order — so outputs and ``TableStats`` are bit-identical
to serial at every worker count.

Fault injection runs **in the parent, before forking**: the
:class:`~repro.faults.FaultPlan` hooks are deterministic functions of
``(worker, range, attempt)``, so the parent can replay the pool
semantics — transient retry-in-place, crashed workers handing their
range to a survivor (a ``redispatch``), whole-pool death degrading to a
serial replay by the parent — and only then fork the surviving
assignment.  Children never see fault hooks; a simulated "crash" means
the worker's process is simply never forked with that range.

Observability mirrors the threads pool: the executor keeps its *own*
metrics registry and timeline (never merged into run manifests — wall
clock and scheduling are host properties), and recovery actions land in
the shared :class:`~repro.faults.ResilienceLog`.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.scheduler.morsel import WorkRange
from repro.exec.pool import (
    DEFAULT_EXEC_MORSEL_TUPLES,
    DEFAULT_WORKERS,
    MorselFailedError,
)
from repro.faults.plan import TransientKernelFault, WorkerCrashFault
from repro.faults.recovery import RetryPolicy
from repro.faults.resilience import ResilienceLog
from repro.faults.runtime import active_plan
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Timeline

#: a per-worker body: (worker name, its ranges) -> picklable summary.
WorkerBody = Callable[[str, List[WorkRange]], Any]


def fork_available() -> bool:
    """True when the platform supports the fork start method (POSIX)."""
    return "fork" in mp.get_all_start_methods()


class _Assignment:
    """The post-fault-simulation work distribution of one run."""

    def __init__(self, workers: List[str]) -> None:
        #: per-worker surviving ranges, in receipt order.
        self.per_worker: Dict[str, List[WorkRange]] = {w: [] for w in workers}
        #: ranges the parent replays serially (whole pool died).
        self.fallback: List[Tuple[WorkRange, int, bool]] = []


class ProcessExecutor:
    """Runs a per-worker body across N forked processes.

    Interface parallels :class:`~repro.exec.pool.MorselExecutor` where
    the functional layer needs it (``worker_names``, ``metrics``,
    ``timeline``, ``retry``, ``resilience``), but the unit of dispatch
    is a *worker body* executed once per child over all of that
    worker's ranges — forking per morsel would swamp any kernel.
    """

    def __init__(
        self,
        workers: int = DEFAULT_WORKERS,
        morsel_tuples: int = DEFAULT_EXEC_MORSEL_TUPLES,
        name: str = "exec",
        retry: Optional[RetryPolicy] = None,
        resilience: Optional[ResilienceLog] = None,
        serial_fallback: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker: {workers}")
        if morsel_tuples <= 0:
            raise ValueError(f"morsel size must be positive: {morsel_tuples}")
        if not fork_available():
            raise RuntimeError(
                "backend='processes' requires the fork start method "
                "(POSIX); this platform offers: "
                f"{', '.join(mp.get_all_start_methods())}"
            )
        self.workers = workers
        self.morsel_tuples = morsel_tuples
        self.name = name
        self.retry = retry if retry is not None else RetryPolicy()
        self.resilience = resilience if resilience is not None else ResilienceLog()
        self.serial_fallback = serial_fallback
        self._ctx = mp.get_context("fork")
        #: executor-local observability (never merged into run manifests).
        self.metrics = MetricsRegistry()
        self.timeline = Timeline()

    # ------------------------------------------------------------------
    def worker_names(self) -> List[str]:
        """Stable worker labels (``<name>-w0`` ... ``<name>-wN-1``)."""
        return [f"{self.name}-w{i}" for i in range(self.workers)]

    def plan_ranges(
        self, total_tuples: int, morsel_tuples: Optional[int] = None
    ) -> List[WorkRange]:
        """The static morsel decomposition of ``[0, total_tuples)``."""
        step = morsel_tuples if morsel_tuples is not None else self.morsel_tuples
        if step <= 0:
            raise ValueError(f"morsel size must be positive: {step}")
        return [
            WorkRange(start, min(start + step, total_tuples))
            for start in range(0, total_tuples, step)
        ]

    # ------------------------------------------------------------------
    # Parent-side fault simulation
    # ------------------------------------------------------------------
    def _record_fault(self, kind: str, worker: str) -> None:
        self.metrics.counter(
            "faults_injected_total", kind=kind, worker=worker
        ).inc()

    def _record_retry(
        self, worker: str, work: WorkRange, attempt: int
    ) -> None:
        delay = self.retry.delay(attempt)
        self.resilience.record(
            "retry",
            worker=worker,
            start=work.start,
            end=work.end,
            attempt=attempt,
            backoff_seconds=delay,
        )
        self.metrics.counter("retries_total", worker=worker).inc()
        self.retry.sleep(attempt)

    def _receive(
        self, plan, worker: str, work: WorkRange, attempt: int, in_pool: bool
    ) -> Tuple[bool, int]:
        """Replay one receipt against the fault plan.

        Returns ``(survived, attempt)``: ``survived=False`` means the
        worker crashed holding the range (pool workers only — the
        fallback driver converts crashes into in-place retries, exactly
        like the thread pool's ``in_pool=False`` path).  Raises
        :class:`MorselFailedError` on budget exhaustion.
        """
        while True:
            try:
                plan.check_morsel(
                    worker=worker, start=work.start, end=work.end, attempt=attempt
                )
            except TransientKernelFault as fault:
                self._record_fault("transient", worker)
                attempt += 1
                if attempt >= self.retry.max_attempts:
                    raise MorselFailedError(work, worker, attempt, fault) from fault
                self._record_retry(worker, work, attempt)
                continue
            except WorkerCrashFault as fault:
                self._record_fault("crash", worker)
                attempt += 1
                if attempt >= self.retry.max_attempts:
                    raise MorselFailedError(work, worker, attempt, fault) from fault
                if not in_pool:
                    self._record_retry(worker, work, attempt)
                    continue
                return False, attempt
            else:
                return True, attempt

    def _simulate(self, ranges: List[WorkRange]) -> _Assignment:
        """Distribute ranges round-robin and replay the fault plan.

        Without an active plan this is a plain static round-robin
        split.  With one, receipts are replayed per worker in queue
        order — the fault hooks are pure functions of
        ``(worker, range, attempt)`` plus per-worker receipt ordinals,
        so the replay is deterministic and interleaving-free.
        """
        names = self.worker_names()
        assignment = _Assignment(names)
        #: queue entries: (range, attempt, was_redispatched)
        queues: Dict[str, List[Tuple[WorkRange, int, bool]]] = {
            w: [] for w in names
        }
        for i, work in enumerate(ranges):
            queues[names[i % len(names)]].append((work, 0, False))
        plan = active_plan()
        alive = {w: True for w in names}

        def receive_all() -> bool:
            progressed = False
            for w in names:
                while alive[w] and queues[w]:
                    progressed = True
                    work, attempt, redispatched = queues[w].pop(0)
                    if redispatched:
                        self.resilience.record(
                            "redispatch",
                            worker=w,
                            start=work.start,
                            end=work.end,
                            attempt=attempt,
                        )
                        self.metrics.counter(
                            "redispatches_total", worker=w
                        ).inc()
                    if plan is None:
                        assignment.per_worker[w].append(work)
                        continue
                    survived, attempt = self._receive(
                        plan, w, work, attempt, in_pool=True
                    )
                    if survived:
                        assignment.per_worker[w].append(work)
                        continue
                    # Crash: this worker is dead.  Its held range moves
                    # to a survivor as a redispatch; its still-queued
                    # ranges are work nobody received yet — survivors
                    # pick them up as ordinary dispatches.
                    alive[w] = False
                    leftovers = [(work, attempt, True)] + queues[w]
                    queues[w] = []
                    survivors = [n for n in names if alive[n]]
                    if not survivors:
                        assignment.fallback.extend(leftovers)
                        continue
                    for j, item in enumerate(leftovers):
                        queues[survivors[j % len(survivors)]].append(item)
            return progressed

        while receive_all():
            pass
        return assignment

    def _run_fallback(
        self, backlog: List[Tuple[WorkRange, int, bool]], body: WorkerBody
    ) -> Tuple[str, Any]:
        """Serial replay by the parent after the whole pool died."""
        if not self.serial_fallback:
            raise RuntimeError(
                f"{self.name}: every worker died with work remaining and "
                "serial_fallback is disabled"
            )
        fallback = f"{self.name}-fallback"
        backlog = sorted(backlog, key=lambda item: item[0].start)
        redispatched = [item for item in backlog if item[2]]
        self.resilience.record(
            "serial_fallback",
            worker=fallback,
            pending_ranges=len(redispatched),
            ordered=False,
        )
        self.metrics.counter("serial_fallbacks_total").inc()
        plan = active_plan()
        survivors: List[WorkRange] = []
        for work, attempt, was_redispatched in backlog:
            if was_redispatched:
                self.resilience.record(
                    "redispatch",
                    worker=fallback,
                    start=work.start,
                    end=work.end,
                    attempt=attempt,
                )
                self.metrics.counter(
                    "redispatches_total", worker=fallback
                ).inc()
            if plan is not None:
                self._receive(plan, fallback, work, attempt, in_pool=False)
            survivors.append(work)
        return fallback, body(fallback, survivors)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        total_tuples: int,
        body: WorkerBody,
        morsel_tuples: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Fork one child per surviving worker; return their summaries.

        ``body(worker, ranges)`` runs once per worker in a forked child
        (side effects must target shared memory; the return value must
        pickle).  Returns ``{worker_name: summary}`` including the
        parent-side fallback driver when the pool died.  Ranges always
        execute exactly once; coverage of ``[0, total_tuples)`` is
        verified before returning.
        """
        ranges = self.plan_ranges(total_tuples, morsel_tuples)
        assignment = self._simulate(ranges)
        summaries: Dict[str, Any] = {}
        procs: List[Tuple[Any, str]] = []
        queue = self._ctx.SimpleQueue()
        for worker in self.worker_names():
            assigned = assignment.per_worker[worker]
            if not assigned:
                continue
            self.metrics.counter(
                "morsels_dispatched_total", worker=worker
            ).inc(len(assigned))
            child = self._ctx.Process(
                target=_child_main,
                args=(queue, worker, body, assigned),
                name=worker,
            )
            child.start()
            procs.append((child, worker))
        for child, worker in procs:
            child.join()
        replies: Dict[str, Tuple[bool, Any]] = {}
        while not queue.empty():
            worker, ok, payload = queue.get()
            replies[worker] = (ok, payload)
        failure: Optional[BaseException] = None
        for child, worker in procs:
            if worker not in replies:
                failure = failure or RuntimeError(
                    f"{self.name}: worker process {worker} died without a "
                    f"result (exit code {child.exitcode})"
                )
                continue
            ok, payload = replies[worker]
            if not ok and failure is None:
                if isinstance(payload, BaseException):
                    failure = payload
                else:
                    failure = RuntimeError(
                        f"{self.name}: worker {worker} failed: {payload}"
                    )
                failure.failed_worker = worker  # type: ignore[attr-defined]
            elif ok:
                summaries[worker] = payload
        if failure is not None:
            raise failure
        executed = {
            worker: list(assignment.per_worker[worker])
            for worker in summaries
        }
        if assignment.fallback:
            fallback, summary = self._run_fallback(assignment.fallback, body)
            summaries[fallback] = summary
            executed[fallback] = [work for work, _, __ in assignment.fallback]
        for worker, works in executed.items():
            for work in works:
                self.timeline.record(
                    worker, f"{self.name}:morsel", 0.0, 0.0, units=work.tuples
                )
        self._check_coverage(executed, total_tuples)
        return summaries

    @staticmethod
    def _check_coverage(
        executed: Dict[str, List[WorkRange]], total_tuples: int
    ) -> None:
        merged = sorted(
            (work for works in executed.values() for work in works),
            key=lambda work: work.start,
        )
        cursor = 0
        for work in merged:
            if work.start != cursor:
                raise RuntimeError(
                    f"process merge lost coverage at tuple {cursor}: "
                    f"next range starts at {work.start}"
                )
            cursor = work.end
        if cursor != total_tuples:
            raise RuntimeError(
                f"process merge covers {cursor} of {total_tuples} tuples"
            )


def _child_main(
    queue, worker: str, body: WorkerBody, ranges: List[WorkRange]
) -> None:
    """Forked-child entry: run the body, ship the summary (or the error)."""
    try:
        summary = body(worker, ranges)
    except BaseException as exc:  # noqa: B036 - shipped to the parent
        try:
            queue.put((worker, False, exc))
        except Exception:
            queue.put((worker, False, f"{type(exc).__name__}: {exc}"))
    else:
        queue.put((worker, True, summary))
