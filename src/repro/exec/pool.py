"""Thread-pool morsel-parallel executor (Section 6.1, for real).

The functional layer used to drive its numpy kernels from exactly one
thread; this module runs them across N workers pulling work from the
(now thread-safe) :class:`~repro.core.scheduler.morsel.MorselDispatcher`
— the same "cores request fixed-sized chunks from a central read
cursor" scheme the paper's Het strategy uses, executed with real
concurrency instead of a discrete-event simulation of it.

Determinism guarantee: each dispatched range lands in the worker's
private result buffer; after the pool drains, buffers are merged by
range start (ranges partition ``[0, total_tuples)``, so the merge is a
stable morsel-order concatenation).  Parallel output is therefore
bit-identical to a serial execution of the same morsel decomposition,
regardless of worker count or interleaving.

The executor keeps its *own* metrics registry and span timeline.  The
observability bundle attached to an operator records the *priced*
(modeled) execution; wall-clock worker scheduling is a property of the
host machine and must not leak into run manifests, which are diffed
bit-for-bit across backends and PRs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Generic, List, Optional, TypeVar

from repro.core.scheduler.morsel import MorselDispatcher, WorkRange
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Timeline

T = TypeVar("T")

#: valid execution backends for the functional layer.
EXEC_BACKENDS = ("serial", "threads")

#: default morsel size (executed tuples) for the thread backend — small
#: enough that reduced-scale workloads still decompose into many
#: morsels, large enough that numpy kernels dominate dispatch overhead.
DEFAULT_EXEC_MORSEL_TUPLES = 1 << 15

#: default worker count of the thread backend.
DEFAULT_WORKERS = 4


def check_backend(backend: str) -> str:
    """Validate a ``backend`` knob value ("serial" or "threads")."""
    if backend not in EXEC_BACKENDS:
        raise ValueError(
            f"unknown execution backend {backend!r}; "
            f"valid: {', '.join(EXEC_BACKENDS)}"
        )
    return backend


@dataclass(frozen=True)
class MorselOutcome(Generic[T]):
    """One dispatched range, the worker that ran it, and its result."""

    work: WorkRange
    worker: str
    value: T


class _Sequencer:
    """Enforces morsel-order application of side-effecting tasks.

    A worker holding range ``[s, e)`` blocks until every earlier range
    has been applied; hash-table builds use this so the shared table
    evolves exactly as a serial morsel-order build would.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._next = 0
        self._aborted = False

    def run_in_order(self, start: int, end: int, fn: Callable[[], T]) -> T:
        with self._cond:
            while self._next != start and not self._aborted:
                self._cond.wait()
            if self._aborted:
                raise RuntimeError("ordered execution aborted by a peer worker")
        try:
            return fn()
        finally:
            with self._cond:
                self._next = end
                self._cond.notify_all()

    def abort(self) -> None:
        with self._cond:
            self._aborted = True
            self._cond.notify_all()


class MorselExecutor:
    """Runs a per-range task across N workers over ``[0, total_tuples)``.

    Args:
        workers: number of pool threads (1 degenerates to an in-line
            loop through the same dispatcher — useful for tests).
        morsel_tuples: dispatcher morsel size in executed tuples.
        batch_morsels: morsels per dispatch request (GPU-style batching).
        name: label prefix for executor-local spans and metrics.
    """

    def __init__(
        self,
        workers: int = DEFAULT_WORKERS,
        morsel_tuples: int = DEFAULT_EXEC_MORSEL_TUPLES,
        batch_morsels: int = 1,
        name: str = "exec",
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker: {workers}")
        if morsel_tuples <= 0:
            raise ValueError(f"morsel size must be positive: {morsel_tuples}")
        if batch_morsels <= 0:
            raise ValueError(f"batch must be at least one morsel: {batch_morsels}")
        self.workers = workers
        self.morsel_tuples = morsel_tuples
        self.batch_morsels = batch_morsels
        self.name = name
        #: executor-local observability (never merged into run manifests).
        self.metrics = MetricsRegistry()
        self.timeline = Timeline()

    # ------------------------------------------------------------------
    def worker_names(self) -> List[str]:
        """Stable worker labels (``<name>-w0`` ... ``<name>-wN-1``)."""
        return [f"{self.name}-w{i}" for i in range(self.workers)]

    # ------------------------------------------------------------------
    def run(
        self,
        total_tuples: int,
        task: Callable[[WorkRange, str], T],
        ordered: bool = False,
    ) -> List[MorselOutcome[T]]:
        """Dispatch ``[0, total_tuples)`` to the pool; merge by range start.

        ``task(work, worker)`` is called once per dispatched range.  With
        ``ordered=True`` tasks are *applied* in morsel order (workers
        still pull concurrently but block on a sequencer), which is what
        shared-table mutation requires.

        Returns the outcomes sorted by ``work.start`` — the morsel-order
        merge — after verifying the ranges exactly cover the input.
        """
        dispatcher = MorselDispatcher(
            total_tuples, self.morsel_tuples, metrics=self.metrics
        )
        buffers: List[List[MorselOutcome[T]]] = [[] for _ in range(self.workers)]
        errors: List[BaseException] = []
        errors_lock = threading.Lock()
        stop = threading.Event()
        sequencer = _Sequencer() if ordered else None

        def worker_loop(worker: str, buffer: List[MorselOutcome[T]]) -> None:
            try:
                while not stop.is_set():
                    work = dispatcher.next_batch(self.batch_morsels, worker=worker)
                    if work is None:
                        return
                    if sequencer is not None:
                        value = sequencer.run_in_order(
                            work.start, work.end, lambda: task(work, worker)
                        )
                    else:
                        value = task(work, worker)
                    buffer.append(MorselOutcome(work, worker, value))
                    self.timeline.record(
                        worker, f"{self.name}:morsel", 0.0, 0.0, units=work.tuples
                    )
            except BaseException as exc:  # noqa: B036 - propagate to caller
                with errors_lock:
                    errors.append(exc)
                stop.set()
                if sequencer is not None:
                    sequencer.abort()

        names = self.worker_names()
        if self.workers == 1:
            worker_loop(names[0], buffers[0])
        else:
            threads = [
                threading.Thread(
                    target=worker_loop,
                    args=(names[i], buffers[i]),
                    name=names[i],
                    daemon=True,
                )
                for i in range(self.workers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        if errors:
            raise errors[0]

        merged: List[MorselOutcome[T]] = sorted(
            (outcome for buffer in buffers for outcome in buffer),
            key=lambda outcome: outcome.work.start,
        )
        cursor = 0
        for outcome in merged:
            if outcome.work.start != cursor:
                raise RuntimeError(
                    f"morsel merge lost coverage at tuple {cursor}: "
                    f"next range starts at {outcome.work.start}"
                )
            cursor = outcome.work.end
        if cursor != total_tuples:
            raise RuntimeError(
                f"morsel merge covers {cursor} of {total_tuples} tuples"
            )
        return merged

    def map_values(
        self,
        total_tuples: int,
        task: Callable[[WorkRange, str], T],
        ordered: bool = False,
    ) -> List[T]:
        """:meth:`run`, returning just the values in morsel order."""
        return [outcome.value for outcome in self.run(total_tuples, task, ordered)]


def make_executor(
    backend: str,
    workers: int = DEFAULT_WORKERS,
    morsel_tuples: int = DEFAULT_EXEC_MORSEL_TUPLES,
    name: str = "exec",
) -> Optional[MorselExecutor]:
    """Executor for ``backend`` — ``None`` selects the serial fast path."""
    check_backend(backend)
    if backend == "serial":
        return None
    return MorselExecutor(workers=workers, morsel_tuples=morsel_tuples, name=name)
