"""Thread-pool morsel-parallel executor (Section 6.1, for real).

The functional layer used to drive its numpy kernels from exactly one
thread; this module runs them across N workers pulling work from the
(now thread-safe) :class:`~repro.core.scheduler.morsel.MorselDispatcher`
— the same "cores request fixed-sized chunks from a central read
cursor" scheme the paper's Het strategy uses, executed with real
concurrency instead of a discrete-event simulation of it.

Determinism guarantee: each dispatched range lands in the worker's
private result buffer; after the pool drains, buffers are merged by
range start (ranges partition ``[0, total_tuples)``, so the merge is a
stable morsel-order concatenation).  Parallel output is therefore
bit-identical to a serial execution of the same morsel decomposition,
regardless of worker count or interleaving.

Resilience (``repro.faults``): when a :class:`~repro.faults.FaultPlan`
is installed, the executor checks each morsel receipt *before* the task
runs — the crash-safe injection point — and recovers:

* a :class:`~repro.faults.TransientKernelFault` retries the same range
  in place with bounded backoff (:class:`~repro.faults.RetryPolicy`);
* a :class:`~repro.faults.WorkerCrashFault` kills the worker; its range
  is re-dispatched to a surviving worker (unordered runs) or the pool
  degrades to a serial morsel-order replay (ordered runs, where blocked
  peers cannot take over);
* if every worker dies, the main thread replays the remaining ranges
  serially — output stays bit-identical because ranges still run
  exactly once and merge in morsel order;
* an exhausted retry budget raises :class:`MorselFailedError` naming
  the failed range, with every peer woken (no stranded waiters).

Genuine (non-injected) task exceptions propagate unchanged, with the
failed range attached as ``failed_work`` / ``failed_worker`` attributes.

The executor keeps its *own* metrics registry and span timeline.  The
observability bundle attached to an operator records the *priced*
(modeled) execution; wall-clock worker scheduling is a property of the
host machine and must not leak into run manifests, which are diffed
bit-for-bit across backends and PRs.  Recovery actions additionally
land in a :class:`~repro.faults.ResilienceLog` for the manifest's
``resilience`` section.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Generic, List, Optional, Tuple, TypeVar

from repro.core.scheduler.morsel import MorselDispatcher, WorkRange
from repro.faults.plan import (
    FaultPlan,
    TransientKernelFault,
    WorkerCrashFault,
)
from repro.faults.recovery import RetryPolicy
from repro.faults.resilience import ResilienceLog
from repro.faults.runtime import active_plan
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Timeline

T = TypeVar("T")

#: valid execution backends for the functional layer.
EXEC_BACKENDS = ("serial", "threads", "processes")

#: default morsel size (executed tuples) for the thread backend — small
#: enough that reduced-scale workloads still decompose into many
#: morsels, large enough that numpy kernels dominate dispatch overhead.
DEFAULT_EXEC_MORSEL_TUPLES = 1 << 15

#: default worker count of the thread backend.
DEFAULT_WORKERS = 4


def check_backend(backend: str) -> str:
    """Validate a ``backend`` knob: serial | threads | processes."""
    if backend not in EXEC_BACKENDS:
        raise ValueError(
            f"unknown execution backend {backend!r}; "
            f"valid: {', '.join(EXEC_BACKENDS)}"
        )
    return backend


class AbortedError(RuntimeError):
    """Ordered execution was aborted before this range could be applied.

    Raised out of :meth:`_Sequencer.run_in_order` to every waiter when a
    peer worker fails (or crashes); the range the waiter held was *not*
    applied and is safe to replay.
    """


class MorselFailedError(RuntimeError):
    """A work range exhausted its retry budget.

    Attributes:
        work: the failed :class:`WorkRange`.
        worker: the worker holding the range on the final attempt.
        attempts: attempts consumed (including the first).
    """

    def __init__(
        self, work: WorkRange, worker: str, attempts: int, cause: BaseException
    ) -> None:
        super().__init__(
            f"morsel [{work.start}, {work.end}) failed on {worker} after "
            f"{attempts} attempt(s): {cause}"
        )
        self.work = work
        self.worker = worker
        self.attempts = attempts
        self.__cause__ = cause


class _WorkerCrashed(Exception):
    """Internal control flow: this worker was killed by an injected crash."""


@dataclass(frozen=True)
class MorselOutcome(Generic[T]):
    """One dispatched range, the worker that ran it, and its result."""

    work: WorkRange
    worker: str
    value: T


class _Sequencer:
    """Enforces morsel-order application of side-effecting tasks.

    A worker holding range ``[s, e)`` blocks until every earlier range
    has been applied; hash-table builds use this so the shared table
    evolves exactly as a serial morsel-order build would.

    Abort protocol: :meth:`abort` wakes every waiter, which raises
    :class:`AbortedError` *without* applying its range; a task that
    raises mid-apply aborts its peers and never advances the cursor, so
    nothing is applied out of order and nobody is left blocked.  A task
    already past the fault check finishes its application even if an
    abort lands meanwhile — its side effects are real, so the cursor
    must record them.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._next = 0
        self._aborted = False

    @property
    def applied_through(self) -> int:
        """Every range below this tuple index has been applied."""
        with self._cond:
            return self._next

    def run_in_order(self, start: int, end: int, fn: Callable[[], T]) -> T:
        with self._cond:
            while self._next != start and not self._aborted:
                self._cond.wait()
            if self._aborted:
                raise AbortedError(
                    f"ordered execution aborted; range [{start}, {end}) "
                    "was not applied"
                )
        try:
            value = fn()
        except BaseException:
            # The range may be partially applied: poison the sequence so
            # no later range is applied after the gap, and wake everyone.
            self.abort()
            raise
        with self._cond:
            self._next = end
            self._cond.notify_all()
        return value

    def abort(self) -> None:
        with self._cond:
            self._aborted = True
            self._cond.notify_all()


class MorselExecutor:
    """Runs a per-range task across N workers over ``[0, total_tuples)``.

    Args:
        workers: number of pool threads (1 degenerates to an in-line
            loop through the same dispatcher — useful for tests).
        morsel_tuples: dispatcher morsel size in executed tuples.
        batch_morsels: morsels per dispatch request (GPU-style batching).
        name: label prefix for executor-local spans and metrics.
        retry: bounded retry/backoff policy for injected faults.
        resilience: recovery audit log (a fresh one is created when not
            injected; operators share one per run so it lands in the
            manifest's ``resilience`` section).
        serial_fallback: allow degradation to a serial morsel-order
            replay when the whole pool dies; disabling it turns that
            situation into an error.
    """

    def __init__(
        self,
        workers: int = DEFAULT_WORKERS,
        morsel_tuples: int = DEFAULT_EXEC_MORSEL_TUPLES,
        batch_morsels: int = 1,
        name: str = "exec",
        retry: Optional[RetryPolicy] = None,
        resilience: Optional[ResilienceLog] = None,
        serial_fallback: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker: {workers}")
        if morsel_tuples <= 0:
            raise ValueError(f"morsel size must be positive: {morsel_tuples}")
        if batch_morsels <= 0:
            raise ValueError(f"batch must be at least one morsel: {batch_morsels}")
        self.workers = workers
        self.morsel_tuples = morsel_tuples
        self.batch_morsels = batch_morsels
        self.name = name
        self.retry = retry if retry is not None else RetryPolicy()
        self.resilience = resilience if resilience is not None else ResilienceLog()
        self.serial_fallback = serial_fallback
        #: executor-local observability (never merged into run manifests).
        self.metrics = MetricsRegistry()
        self.timeline = Timeline()

    # ------------------------------------------------------------------
    def worker_names(self) -> List[str]:
        """Stable worker labels (``<name>-w0`` ... ``<name>-wN-1``)."""
        return [f"{self.name}-w{i}" for i in range(self.workers)]

    # ------------------------------------------------------------------
    def run(
        self,
        total_tuples: int,
        task: Callable[[WorkRange, str], T],
        ordered: bool = False,
        morsel_tuples: Optional[int] = None,
    ) -> List[MorselOutcome[T]]:
        """Dispatch ``[0, total_tuples)`` to the pool; merge by range start.

        ``task(work, worker)`` is called once per dispatched range.  With
        ``ordered=True`` tasks are *applied* in morsel order (workers
        still pull concurrently but block on a sequencer), which is what
        shared-table mutation requires.  ``morsel_tuples`` overrides the
        executor's configured morsel size for this run only — sharded
        builds dispatch shard *indices* (morsel size 1) through the same
        machinery.

        Returns the outcomes sorted by ``work.start`` — the morsel-order
        merge — after verifying the ranges exactly cover the input.
        """
        run = _PoolRun(
            self, total_tuples, task, ordered, active_plan(),
            morsel_tuples=morsel_tuples,
        )
        return run.execute()

    def map_values(
        self,
        total_tuples: int,
        task: Callable[[WorkRange, str], T],
        ordered: bool = False,
        morsel_tuples: Optional[int] = None,
    ) -> List[T]:
        """:meth:`run`, returning just the values in morsel order."""
        return [
            outcome.value
            for outcome in self.run(
                total_tuples, task, ordered, morsel_tuples=morsel_tuples
            )
        ]


class _PoolRun(Generic[T]):
    """One :meth:`MorselExecutor.run` invocation's mutable state.

    Separated from the executor so concurrent state (pending queues,
    stop events, the sequencer) has run lifetime, while the executor
    keeps only configuration plus cumulative observability.
    """

    def __init__(
        self,
        executor: MorselExecutor,
        total_tuples: int,
        task: Callable[[WorkRange, str], T],
        ordered: bool,
        plan: Optional[FaultPlan],
        morsel_tuples: Optional[int] = None,
    ) -> None:
        self.executor = executor
        self.task = task
        self.ordered = ordered
        self.plan = plan
        self.total_tuples = total_tuples
        self.dispatcher = MorselDispatcher(
            total_tuples,
            morsel_tuples if morsel_tuples is not None else executor.morsel_tuples,
            metrics=executor.metrics,
        )
        self.buffers: List[List[MorselOutcome[T]]] = [
            [] for _ in range(executor.workers + 1)  # +1: serial-fallback buffer
        ]
        self.errors: List[BaseException] = []
        self.fatal = threading.Event()
        self.degrade = threading.Event()
        #: ranges pulled but not executed, awaiting another worker:
        #: re-dispatch queue (unordered) / replay backlog (ordered).
        self.pending: Deque[Tuple[WorkRange, int]] = deque()
        self.lock = threading.Lock()
        self.sequencer = _Sequencer() if ordered else None

    # -- fault bookkeeping ----------------------------------------------
    def _record_fault(self, kind: str, worker: str) -> None:
        self.executor.metrics.counter(
            "faults_injected_total", kind=kind, worker=worker
        ).inc()

    def _fail(
        self, work: WorkRange, worker: str, attempts: int, cause: BaseException
    ) -> MorselFailedError:
        """Build the typed budget-exhausted error and stop the pool."""
        failure = MorselFailedError(work, worker, attempts, cause)
        with self.lock:
            self.errors.append(failure)
        self.fatal.set()
        if self.sequencer is not None:
            self.sequencer.abort()
        return failure

    # -- per-range execution with recovery -------------------------------
    def _attempt(
        self,
        work: WorkRange,
        worker: str,
        attempt: int,
        buffer: List[MorselOutcome[T]],
        in_pool: bool,
    ) -> None:
        """Run one range, retrying injected faults within the budget.

        ``in_pool`` distinguishes pool workers (which may die and hand
        their range to a peer) from the serial-fallback driver (which
        has no peers and converts crashes into in-place retries).
        Raises :class:`_WorkerCrashed` to unwind a killed pool worker.
        """
        executor = self.executor
        retry = executor.retry
        while True:
            try:
                if self.plan is not None:
                    self.plan.check_morsel(
                        worker=worker,
                        start=work.start,
                        end=work.end,
                        attempt=attempt,
                    )
                if self.sequencer is not None and in_pool:
                    value = self.sequencer.run_in_order(
                        work.start, work.end, lambda: self.task(work, worker)
                    )
                else:
                    value = self.task(work, worker)
            except TransientKernelFault as fault:
                self._record_fault("transient", worker)
                attempt += 1
                if attempt >= retry.max_attempts:
                    raise self._fail(work, worker, attempt, fault) from fault
                delay = retry.delay(attempt)
                executor.resilience.record(
                    "retry",
                    worker=worker,
                    start=work.start,
                    end=work.end,
                    attempt=attempt,
                    backoff_seconds=delay,
                )
                executor.metrics.counter("retries_total", worker=worker).inc()
                retry.sleep(attempt)
                continue
            except WorkerCrashFault as fault:
                self._record_fault("crash", worker)
                attempt += 1
                if attempt >= retry.max_attempts:
                    raise self._fail(work, worker, attempt, fault) from fault
                if not in_pool:
                    # The fallback driver has no peers to die for; treat
                    # the crash as one more retry against the budget.
                    delay = retry.delay(attempt)
                    executor.resilience.record(
                        "retry",
                        worker=worker,
                        start=work.start,
                        end=work.end,
                        attempt=attempt,
                        backoff_seconds=delay,
                    )
                    executor.metrics.counter("retries_total", worker=worker).inc()
                    retry.sleep(attempt)
                    continue
                # Hand the (side-effect free) range to the survivors and
                # die.  Ordered runs additionally degrade: peers may be
                # blocked in the sequencer and cannot pull the queue, so
                # the pool drains and the main thread replays serially.
                with self.lock:
                    self.pending.append((work, attempt))
                if self.ordered:
                    self.degrade.set()
                    assert self.sequencer is not None
                    self.sequencer.abort()
                raise _WorkerCrashed(worker) from fault
            else:
                buffer.append(MorselOutcome(work, worker, value))
                executor.timeline.record(
                    worker, f"{executor.name}:morsel", 0.0, 0.0, units=work.tuples
                )
                return

    # -- work acquisition -------------------------------------------------
    def _take_work(self, worker: str) -> Optional[Tuple[WorkRange, int]]:
        """Next unit: a re-dispatched crashed range, else the cursor."""
        if not self.ordered:
            with self.lock:
                if self.pending:
                    work, attempt = self.pending.popleft()
                    self.executor.resilience.record(
                        "redispatch",
                        worker=worker,
                        start=work.start,
                        end=work.end,
                        attempt=attempt,
                    )
                    self.executor.metrics.counter(
                        "redispatches_total", worker=worker
                    ).inc()
                    return work, attempt
        grant = self.dispatcher.next_batch(
            self.executor.batch_morsels, worker=worker
        )
        if grant is None:
            return None
        return grant, 0

    # -- worker loop -------------------------------------------------------
    def _worker_loop(self, worker: str, buffer: List[MorselOutcome[T]]) -> None:
        while not self.fatal.is_set() and not self.degrade.is_set():
            got = self._take_work(worker)
            if got is None:
                return
            work, attempt = got
            try:
                self._attempt(work, worker, attempt, buffer, in_pool=True)
            except _WorkerCrashed:
                return  # range already re-queued (or error recorded)
            except AbortedError:
                if not self.fatal.is_set():
                    # Degrading: the range this worker held was never
                    # applied; park it for the serial replay.
                    with self.lock:
                        self.pending.append((work, attempt))
                return
            except MorselFailedError:
                return  # _fail already recorded it and stopped the pool
            except BaseException as exc:  # noqa: B036 - propagate to caller
                # A genuine task bug: attach the failed range and stop.
                exc.failed_work = work  # type: ignore[attr-defined]
                exc.failed_worker = worker  # type: ignore[attr-defined]
                with self.lock:
                    self.errors.append(exc)
                self.fatal.set()
                if self.sequencer is not None:
                    self.sequencer.abort()
                return

    # -- serial replay fallback ---------------------------------------------
    def _serial_replay(self) -> None:
        """Drain every unexecuted range in morsel order on this thread.

        Reached when the pool died (all workers crashed) or an ordered
        run degraded after a crash.  Ranges still execute exactly once —
        the applied prefix is in the buffers, the rest is here — so the
        merged output stays bit-identical.
        """
        executor = self.executor
        fallback = f"{executor.name}-fallback"
        with self.lock:
            backlog = sorted(self.pending, key=lambda item: item[0].start)
            self.pending.clear()
        executor.resilience.record(
            "serial_fallback",
            worker=fallback,
            pending_ranges=len(backlog),
            ordered=self.ordered,
        )
        executor.metrics.counter("serial_fallbacks_total").inc()
        buffer = self.buffers[-1]
        for work, attempt in backlog:
            executor.resilience.record(
                "redispatch",
                worker=fallback,
                start=work.start,
                end=work.end,
                attempt=attempt,
            )
            executor.metrics.counter(
                "redispatches_total", worker=fallback
            ).inc()
            self._attempt(work, fallback, attempt, buffer, in_pool=False)
        while True:
            grant = self.dispatcher.next_batch(
                executor.batch_morsels, worker=fallback
            )
            if grant is None:
                return
            self._attempt(grant, fallback, 0, buffer, in_pool=False)

    # -- top level ------------------------------------------------------------
    def execute(self) -> List[MorselOutcome[T]]:
        executor = self.executor
        names = executor.worker_names()
        if executor.workers == 1:
            self._worker_loop(names[0], self.buffers[0])
        else:
            threads = [
                threading.Thread(
                    target=self._worker_loop,
                    args=(names[i], self.buffers[i]),
                    name=names[i],
                    daemon=True,
                )
                for i in range(executor.workers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        # The workers have been joined, but the lock discipline for
        # ``errors``/``pending`` is acquire-to-read everywhere — the
        # serial path (workers == 1) shares this code and a failed
        # worker thread may have died mid-update.
        with self.lock:
            if self.errors:
                raise self.errors[0]
            leftover = bool(self.pending)
        if leftover or not self.dispatcher.exhausted:
            if not executor.serial_fallback:
                raise RuntimeError(
                    f"{executor.name}: every worker died with work "
                    "remaining and serial_fallback is disabled"
                )
            self._serial_replay()
        return self._merge()

    def _merge(self) -> List[MorselOutcome[T]]:
        merged: List[MorselOutcome[T]] = sorted(
            (outcome for buffer in self.buffers for outcome in buffer),
            key=lambda outcome: outcome.work.start,
        )
        cursor = 0
        for outcome in merged:
            if outcome.work.start != cursor:
                raise RuntimeError(
                    f"morsel merge lost coverage at tuple {cursor}: "
                    f"next range starts at {outcome.work.start}"
                )
            cursor = outcome.work.end
        if cursor != self.total_tuples:
            raise RuntimeError(
                f"morsel merge covers {cursor} of {self.total_tuples} tuples"
            )
        return merged


def make_executor(
    backend: str,
    workers: int = DEFAULT_WORKERS,
    morsel_tuples: int = DEFAULT_EXEC_MORSEL_TUPLES,
    name: str = "exec",
    retry: Optional[RetryPolicy] = None,
    resilience: Optional[ResilienceLog] = None,
):
    """Executor for ``backend`` — ``None`` selects the serial fast path.

    ``threads`` returns a :class:`MorselExecutor`; ``processes`` a
    :class:`~repro.exec.process.ProcessExecutor` (imported lazily — it
    is only needed when requested, and keeping it out of this module's
    imports keeps the fork requirement a runtime property).
    """
    check_backend(backend)
    if backend == "serial":
        return None
    if backend == "processes":
        from repro.exec.process import ProcessExecutor

        return ProcessExecutor(
            workers=workers,
            morsel_tuples=morsel_tuples,
            name=name,
            retry=retry,
            resilience=resilience,
        )
    return MorselExecutor(
        workers=workers,
        morsel_tuples=morsel_tuples,
        name=name,
        retry=retry,
        resilience=resilience,
    )
