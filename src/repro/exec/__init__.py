"""Morsel-parallel execution backend (``repro.exec``).

Runs the functional layer — hash-table builds, probes, predicate
cascades — across a pool of worker threads pulling morsels from the
thread-safe :class:`~repro.core.scheduler.morsel.MorselDispatcher`, or
across forked worker processes (:class:`~repro.exec.process.ProcessExecutor`)
writing into ``multiprocessing.shared_memory`` buffers, with results
merged deterministically so parallel output is bit-identical to serial
and the measured TableStats (hence every priced manifest) are the same
at any worker count.

Operators expose it through a
``backend="serial" | "threads" | "processes"`` knob.
"""

from repro.exec.functional import (
    execute_build,
    execute_masks,
    execute_probe,
)
from repro.exec.pool import (
    DEFAULT_EXEC_MORSEL_TUPLES,
    DEFAULT_WORKERS,
    EXEC_BACKENDS,
    AbortedError,
    MorselExecutor,
    MorselFailedError,
    MorselOutcome,
    check_backend,
    make_executor,
)
from repro.exec.process import ProcessExecutor, fork_available
from repro.exec.shm import ShmArena, table_storage_in_shm

__all__ = [
    "AbortedError",
    "DEFAULT_EXEC_MORSEL_TUPLES",
    "DEFAULT_WORKERS",
    "EXEC_BACKENDS",
    "MorselExecutor",
    "MorselFailedError",
    "MorselOutcome",
    "ProcessExecutor",
    "ShmArena",
    "check_backend",
    "execute_build",
    "execute_masks",
    "execute_probe",
    "fork_available",
    "make_executor",
    "table_storage_in_shm",
]
