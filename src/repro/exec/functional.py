"""Morsel-parallel drivers for the functional layer's kernels.

These helpers run a hash-table build, a probe, or a predicate cascade
either serially (``executor is None`` — the exact code path the
operators always had) or across a :class:`~repro.exec.pool.MorselExecutor`.
The contract, enforced by the equivalence tests, is that the two paths
produce **bit-identical outputs and identical TableStats**, so the
``backend`` knob changes wall-clock behaviour only — never a result,
a priced manifest, or a metric snapshot.

Build decomposition is scheme-aware, because not every table build is
morsel-divisible:

* **perfect** — ``slot = key`` with unique keys means writes are
  slot-disjoint; workers build fully in parallel through private
  :meth:`~repro.core.hashtable.base.HashTableBase.stats_view`\\ s.  A
  post-build occupancy audit catches the one race the per-batch
  duplicate check cannot see (the same key arriving in two concurrent
  morsels).
* **chaining** — head-pointer prepends commute per bucket but the chain
  *layout* depends on application order, so morsels are applied through
  the executor's sequencer in morsel order; the resulting table is
  bit-identical to a serial morsel-order build.
* **open addressing** — the numpy CAS emulation resolves within-round
  races per *batch*; splitting the batch changes which keys race and
  therefore the final slot layout (and downstream probe counts).  The
  build stays one whole batch regardless of backend.
* **sharded** — the contention-free case: shard routing is a pure
  function of the key, so the batch decomposes into per-shard
  sub-batches *before* execution and each worker builds whole shards it
  exclusively owns.  Any application order (serial loop, thread pool,
  forked processes) yields bit-identical storage; works for every inner
  scheme, including the two that are not morsel-divisible unsharded.

Probes and predicate masks are read-only and element-independent, so
they decompose for every scheme: each morsel produces a private output
slice, merged by stable morsel-order concatenation.

The ``processes`` backend (:class:`~repro.exec.process.ProcessExecutor`)
runs the same decompositions in forked children: inputs arrive via
fork's copy-on-write pages, mutated table storage and output buffers
live in ``multiprocessing.shared_memory`` (:mod:`repro.exec.shm`), and
per-worker ``TableStats`` come back as picklable summaries that merge
in worker-name order — the exact guarantees the threads backend makes.
Unsharded chaining and open-addressing builds are not process-divisible
(same reasons as above), so they run serially in the parent.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.scheduler.morsel import WorkRange
from repro.exec.pool import MorselExecutor
from repro.exec.process import ProcessExecutor
from repro.exec.shm import ShmArena, table_storage_in_shm

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.hashtable.base import HashTableBase

# The concrete hash-table classes are imported inside execute_build():
# importing them at module scope triggers the repro.core package
# __init__, whose operators import repro.exec right back — a cycle that
# breaks whichever side is imported first.

#: a predicate-mask evaluator over a half-open row range.
MaskEvaluator = Callable[[int, int], np.ndarray]

#: either executor flavour (or None for the serial fast path).
Executor = Union[MorselExecutor, ProcessExecutor]


def _worker_views(table: HashTableBase) -> Dict[str, HashTableBase]:
    """Lazily-populated per-worker stats views (created under the GIL;
    dict item assignment is atomic, and each worker only touches its own
    key)."""
    return {}


def _view_for(
    views: Dict[str, HashTableBase], table: HashTableBase, worker: str
) -> HashTableBase:
    view = views.get(worker)
    if view is None:
        view = table.stats_view()
        views[worker] = view
    return view


def _absorb_all(
    table: HashTableBase, views: Dict[str, HashTableBase]
) -> None:
    """Fold per-worker counters back, in worker-name order.

    The merge is a commutative integer sum, so any order yields the
    serial counts; sorting just makes the absorption itself
    deterministic."""
    for worker in sorted(views):
        table.absorb_view(views[worker])


def _view_summary(view: HashTableBase) -> Tuple[str, Any]:
    """A picklable stats/size delta of a (possibly sharded) view."""
    shards = getattr(view, "shards", None)
    if shards is not None:
        return (
            "sharded",
            [(shard.stats.as_tuple(), shard.size) for shard in shards],
        )
    return ("flat", (view.stats.as_tuple(), view.size))


def _absorb_summary(table: HashTableBase, payload: Tuple[str, Any]) -> None:
    """Fold a worker summary back (shard-granular for sharded tables)."""
    from repro.core.hashtable.base import TableStats

    kind, data = payload
    if kind == "sharded":
        for shard, (stats_tuple, size) in zip(table.shards, data):
            shard.stats.merge(TableStats(*stats_tuple))
            shard.size += size
    else:
        stats_tuple, size = data
        table.stats.merge(TableStats(*stats_tuple))
        table.size += size


def _audit_perfect_occupancy(table: HashTableBase) -> None:
    """Catch same-key races a per-batch duplicate check cannot see.

    Two concurrent morsels carrying the same key can both observe the
    slot EMPTY and both count a successful insert; audit the actual
    occupancy against the claimed size.
    """
    occupied = int(np.count_nonzero(table.keys != table.EMPTY))
    if occupied != table.size:
        raise ValueError(
            "perfect hashing requires unique keys; concurrent build "
            f"claimed {table.size} inserts but occupies {occupied} slots"
        )


def _build_sharded(
    table: HashTableBase,
    keys: np.ndarray,
    values: np.ndarray,
    executor: Executor,
) -> None:
    """Contention-free sharded build: workers own whole shards.

    The work unit dispatched through the executor is a *shard index*
    (morsel size 1), so crash recovery re-dispatches whole shards —
    safe in any order because shards share no storage.  The partition
    is computed up front (a pure function of the keys), making the
    per-shard sub-batches identical to the serial
    ``ShardedHashTable.insert_batch`` decomposition.
    """
    parts = table.partition_batch(keys)

    if isinstance(executor, ProcessExecutor):

        def body(worker: str, ranges) -> List[Tuple[int, tuple, int]]:
            out = []
            for work in ranges:
                for sid in range(work.start, work.end):
                    index = parts[sid]
                    table.insert_shard(sid, keys[index], values[index])
                    shard = table.shards[sid]
                    out.append((sid, shard.stats.as_tuple(), shard.size))
            return out

        from repro.core.hashtable.base import TableStats

        with table_storage_in_shm(table):
            summaries = executor.run(table.n_shards, body, morsel_tuples=1)
            # Each shard is built by exactly one child; its summary
            # carries the shard's absolute post-build counters.
            for worker in sorted(summaries):
                for sid, stats_tuple, size in summaries[worker]:
                    table.shards[sid].stats = TableStats(*stats_tuple)
                    table.shards[sid].size = size
        return

    def build_shards(work: WorkRange, worker: str) -> None:
        for sid in range(work.start, work.end):
            index = parts[sid]
            table.insert_shard(sid, keys[index], values[index])

    executor.run(table.n_shards, build_shards, morsel_tuples=1)


def _process_build_perfect(
    table: HashTableBase,
    keys: np.ndarray,
    values: np.ndarray,
    executor: ProcessExecutor,
) -> None:
    """Slot-disjoint parallel build in forked children via shared memory."""

    def body(worker: str, ranges) -> Tuple[str, Any]:
        view = table.stats_view()
        for work in ranges:
            view.insert_batch(
                keys[work.start : work.end], values[work.start : work.end]
            )
        return _view_summary(view)

    with table_storage_in_shm(table):
        summaries = executor.run(len(keys), body)
        for worker in sorted(summaries):
            _absorb_summary(table, summaries[worker])


def execute_build(
    table: HashTableBase,
    keys: np.ndarray,
    values: np.ndarray,
    executor: Optional[Executor] = None,
) -> None:
    """Populate ``table`` with (keys, values); scheme-aware decomposition."""
    from repro.core.hashtable.chaining import ChainingHashTable
    from repro.core.hashtable.perfect import PerfectHashTable
    from repro.core.hashtable.sharded import ShardedHashTable

    if executor is None or len(keys) == 0:
        table.insert_batch(keys, values)
        return
    if isinstance(table, ShardedHashTable):
        _build_sharded(table, keys, values, executor)
        if table.scheme == "perfect":
            for shard in table.shards:
                _audit_perfect_occupancy(shard)
        return
    if isinstance(executor, ProcessExecutor):
        if isinstance(table, PerfectHashTable):
            _process_build_perfect(table, keys, values, executor)
            _audit_perfect_occupancy(table)
            return
        # Unsharded chaining (order-dependent layout) and open
        # addressing (batch-scoped race resolution) are not
        # process-divisible; the parent builds serially.  Shard the
        # table to parallelize these schemes across processes.
        table.insert_batch(keys, values)
        return
    if isinstance(table, PerfectHashTable):
        views = _worker_views(table)

        def build_morsel(work: WorkRange, worker: str) -> None:
            view = _view_for(views, table, worker)
            view.insert_batch(keys[work.start : work.end],
                              values[work.start : work.end])

        executor.run(len(keys), build_morsel)
        _absorb_all(table, views)
        _audit_perfect_occupancy(table)
        return
    if isinstance(table, ChainingHashTable):
        # Chain layout follows application order: sequence the morsels.
        def build_ordered(work: WorkRange, worker: str) -> None:
            table.insert_batch(keys[work.start : work.end],
                               values[work.start : work.end])

        executor.run(len(keys), build_ordered, ordered=True)
        return
    # Open addressing: batch-scoped race resolution — not morsel-divisible.
    table.insert_batch(keys, values)


def _process_probe(
    table: HashTableBase,
    keys: np.ndarray,
    executor: ProcessExecutor,
) -> Tuple[np.ndarray, np.ndarray]:
    """Probe in forked children; outputs land in shared buffers.

    The table is frozen during a probe, so children read it through
    fork's copy-on-write pages — only the two output arrays need real
    shared memory.  Each morsel writes its own disjoint slice, making
    the merged output independent of completion order.
    """
    arena = ShmArena()
    try:
        found = arena.array(len(keys), np.bool_)
        values = arena.array(len(keys), table.values.dtype)

        def body(worker: str, ranges) -> Tuple[str, Any]:
            view = table.stats_view()
            for work in ranges:
                part_found, part_values = view.lookup_batch(
                    keys[work.start : work.end]
                )
                found[work.start : work.end] = part_found
                values[work.start : work.end] = part_values
            return _view_summary(view)

        summaries = executor.run(len(keys), body)
        for worker in sorted(summaries):
            _absorb_summary(table, summaries[worker])
        return np.array(found), np.array(values)
    finally:
        arena.close()


def execute_probe(
    table: HashTableBase,
    keys: np.ndarray,
    executor: Optional[Executor] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Look up ``keys``; returns (found, values) bit-identical to serial.

    Linear probing, chain walks, and perfect lookups are pure functions
    of the (frozen) table and the key slice, and all counters are
    per-tuple sums — so a morsel-split probe returns the same outputs
    and records the same TableStats as one whole-batch lookup.
    """
    if executor is None or len(keys) == 0:
        return table.lookup_batch(keys)
    if isinstance(executor, ProcessExecutor):
        return _process_probe(table, keys, executor)
    views = _worker_views(table)

    def probe_morsel(
        work: WorkRange, worker: str
    ) -> Tuple[np.ndarray, np.ndarray]:
        view = _view_for(views, table, worker)
        return view.lookup_batch(keys[work.start : work.end])

    parts = executor.map_values(len(keys), probe_morsel)
    _absorb_all(table, views)
    found = np.concatenate([part[0] for part in parts])
    values = np.concatenate([part[1] for part in parts])
    return found, values


def _process_masks(
    n_rows: int,
    evaluators: Sequence[MaskEvaluator],
    executor: ProcessExecutor,
) -> List[np.ndarray]:
    """Evaluate predicates in forked children via shared output arrays."""
    arena = ShmArena()
    try:
        # Probe each evaluator's output dtype with an empty range so the
        # shared buffers match (Q6's last mask is a float revenue term,
        # not a bool).
        outputs = [
            arena.array(n_rows, evaluator(0, 0).dtype)
            for evaluator in evaluators
        ]

        def body(worker: str, ranges) -> None:
            for work in ranges:
                for out, evaluator in zip(outputs, evaluators):
                    out[work.start : work.end] = evaluator(
                        work.start, work.end
                    )
            return None

        executor.run(n_rows, body)
        return [np.array(out) for out in outputs]
    finally:
        arena.close()


def execute_masks(
    n_rows: int,
    evaluators: Sequence[MaskEvaluator],
    executor: Optional[Executor] = None,
) -> List[np.ndarray]:
    """Evaluate row-range predicates over ``[0, n_rows)``.

    Each evaluator maps a half-open row range to a boolean (or
    element-wise) mask for those rows; masks are merged by morsel-order
    concatenation.  Element-wise predicates make slice-then-concatenate
    bit-identical to whole-array evaluation.
    """
    if executor is None or n_rows == 0:
        return [evaluator(0, n_rows) for evaluator in evaluators]
    if isinstance(executor, ProcessExecutor):
        return _process_masks(n_rows, evaluators, executor)

    def masks_morsel(work: WorkRange, worker: str) -> List[np.ndarray]:
        return [evaluator(work.start, work.end) for evaluator in evaluators]

    parts = executor.map_values(n_rows, masks_morsel)
    return [
        np.concatenate([part[i] for part in parts])
        for i in range(len(evaluators))
    ]
