"""Morsel-parallel drivers for the functional layer's kernels.

These helpers run a hash-table build, a probe, or a predicate cascade
either serially (``executor is None`` — the exact code path the
operators always had) or across a :class:`~repro.exec.pool.MorselExecutor`.
The contract, enforced by the equivalence tests, is that the two paths
produce **bit-identical outputs and identical TableStats**, so the
``backend`` knob changes wall-clock behaviour only — never a result,
a priced manifest, or a metric snapshot.

Build decomposition is scheme-aware, because not every table build is
morsel-divisible:

* **perfect** — ``slot = key`` with unique keys means writes are
  slot-disjoint; workers build fully in parallel through private
  :meth:`~repro.core.hashtable.base.HashTableBase.stats_view`\\ s.  A
  post-build occupancy audit catches the one race the per-batch
  duplicate check cannot see (the same key arriving in two concurrent
  morsels).
* **chaining** — head-pointer prepends commute per bucket but the chain
  *layout* depends on application order, so morsels are applied through
  the executor's sequencer in morsel order; the resulting table is
  bit-identical to a serial morsel-order build.
* **open addressing** — the numpy CAS emulation resolves within-round
  races per *batch*; splitting the batch changes which keys race and
  therefore the final slot layout (and downstream probe counts).  The
  build stays one whole batch regardless of backend.

Probes and predicate masks are read-only and element-independent, so
they decompose for every scheme: each morsel produces a private output
slice, merged by stable morsel-order concatenation.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.core.scheduler.morsel import WorkRange
from repro.exec.pool import MorselExecutor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.hashtable.base import HashTableBase

# The concrete hash-table classes are imported inside execute_build():
# importing them at module scope triggers the repro.core package
# __init__, whose operators import repro.exec right back — a cycle that
# breaks whichever side is imported first.

#: a predicate-mask evaluator over a half-open row range.
MaskEvaluator = Callable[[int, int], np.ndarray]


def _worker_views(table: HashTableBase) -> Dict[str, HashTableBase]:
    """Lazily-populated per-worker stats views (created under the GIL;
    dict item assignment is atomic, and each worker only touches its own
    key)."""
    return {}


def _view_for(
    views: Dict[str, HashTableBase], table: HashTableBase, worker: str
) -> HashTableBase:
    view = views.get(worker)
    if view is None:
        view = table.stats_view()
        views[worker] = view
    return view


def _absorb_all(
    table: HashTableBase, views: Dict[str, HashTableBase]
) -> None:
    """Fold per-worker counters back, in worker-name order.

    The merge is a commutative integer sum, so any order yields the
    serial counts; sorting just makes the absorption itself
    deterministic."""
    for worker in sorted(views):
        table.absorb_view(views[worker])


def execute_build(
    table: HashTableBase,
    keys: np.ndarray,
    values: np.ndarray,
    executor: Optional[MorselExecutor] = None,
) -> None:
    """Populate ``table`` with (keys, values); scheme-aware decomposition."""
    from repro.core.hashtable.chaining import ChainingHashTable
    from repro.core.hashtable.perfect import PerfectHashTable

    if executor is None or len(keys) == 0:
        table.insert_batch(keys, values)
        return
    if isinstance(table, PerfectHashTable):
        views = _worker_views(table)

        def build_morsel(work: WorkRange, worker: str) -> None:
            view = _view_for(views, table, worker)
            view.insert_batch(keys[work.start : work.end],
                              values[work.start : work.end])

        executor.run(len(keys), build_morsel)
        _absorb_all(table, views)
        # Two concurrent morsels carrying the same key can both observe
        # the slot EMPTY and both count a successful insert; audit the
        # actual occupancy against the claimed size.
        occupied = int(np.count_nonzero(table.keys != table.EMPTY))
        if occupied != table.size:
            raise ValueError(
                "perfect hashing requires unique keys; concurrent build "
                f"claimed {table.size} inserts but occupies {occupied} slots"
            )
        return
    if isinstance(table, ChainingHashTable):
        # Chain layout follows application order: sequence the morsels.
        def build_ordered(work: WorkRange, worker: str) -> None:
            table.insert_batch(keys[work.start : work.end],
                               values[work.start : work.end])

        executor.run(len(keys), build_ordered, ordered=True)
        return
    # Open addressing: batch-scoped race resolution — not morsel-divisible.
    table.insert_batch(keys, values)


def execute_probe(
    table: HashTableBase,
    keys: np.ndarray,
    executor: Optional[MorselExecutor] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Look up ``keys``; returns (found, values) bit-identical to serial.

    Linear probing, chain walks, and perfect lookups are pure functions
    of the (frozen) table and the key slice, and all counters are
    per-tuple sums — so a morsel-split probe returns the same outputs
    and records the same TableStats as one whole-batch lookup.
    """
    if executor is None or len(keys) == 0:
        return table.lookup_batch(keys)
    views = _worker_views(table)

    def probe_morsel(
        work: WorkRange, worker: str
    ) -> Tuple[np.ndarray, np.ndarray]:
        view = _view_for(views, table, worker)
        return view.lookup_batch(keys[work.start : work.end])

    parts = executor.map_values(len(keys), probe_morsel)
    _absorb_all(table, views)
    found = np.concatenate([part[0] for part in parts])
    values = np.concatenate([part[1] for part in parts])
    return found, values


def execute_masks(
    n_rows: int,
    evaluators: Sequence[MaskEvaluator],
    executor: Optional[MorselExecutor] = None,
) -> List[np.ndarray]:
    """Evaluate row-range predicates over ``[0, n_rows)``.

    Each evaluator maps a half-open row range to a boolean (or
    element-wise) mask for those rows; masks are merged by morsel-order
    concatenation.  Element-wise predicates make slice-then-concatenate
    bit-identical to whole-array evaluation.
    """
    if executor is None or n_rows == 0:
        return [evaluator(0, n_rows) for evaluator in evaluators]

    def masks_morsel(work: WorkRange, worker: str) -> List[np.ndarray]:
        return [evaluator(work.start, work.end) for evaluator in evaluators]

    parts = executor.map_values(n_rows, masks_morsel)
    return [
        np.concatenate([part[i] for part in parts])
        for i in range(len(evaluators))
    ]
