"""Shared-memory buffers for the process-parallel backend.

The ``processes`` backend forks workers (fork is mandatory: the
functional layer's tasks close over numpy arrays and lambdas, which do
not pickle).  Fork gives children copy-on-write access to every *input*
array for free; only arrays the children must *write* — hash-table
storage during builds, output buffers during probes and mask
evaluation — need to live in real shared memory.

:class:`ShmArena` owns a set of ``multiprocessing.shared_memory``
segments and hands out numpy views into them.  The parent creates every
segment *before* forking, children write disjoint regions (morsel
ranges or whole shards), and the parent copies results out and unlinks
the segments afterwards — children never manage segment lifetime, so a
crashed child cannot leak shared memory.
"""

from __future__ import annotations

from contextlib import contextmanager
from multiprocessing import shared_memory
from typing import Iterator, List, Tuple

import numpy as np


class ShmArena:
    """A set of shared-memory segments with numpy array views.

    Segment lifetime is strictly parent-side: :meth:`close` unlinks
    everything.  Call it only after copying results out of the views
    (see :meth:`ShmArena.close`).
    """

    def __init__(self) -> None:
        self._segments: List[shared_memory.SharedMemory] = []

    def array(self, length: int, dtype) -> np.ndarray:
        """A zero-initialized shared array of ``length`` items."""
        dtype = np.dtype(dtype)
        segment = shared_memory.SharedMemory(
            create=True, size=max(1, length * dtype.itemsize)
        )
        self._segments.append(segment)
        view = np.ndarray((length,), dtype=dtype, buffer=segment.buf)
        if length:
            view[:] = 0
        return view

    def share_copy(self, source: np.ndarray) -> np.ndarray:
        """A shared array holding a copy of ``source``."""
        view = self.array(len(source), source.dtype)
        if len(source):
            view[:] = source
        return view

    def close(self) -> None:
        """Unlink every segment (idempotent).

        numpy views handed out earlier keep their mapping alive until
        they are garbage-collected (``close`` on an exported buffer is
        best-effort); the *name* is unlinked here, so nothing persists
        past this call beyond the caller's own references.
        """
        segments, self._segments = self._segments, []
        for segment in segments:
            try:
                segment.close()
            except BufferError:
                # A live numpy view still pins the mapping; the memory
                # is reclaimed when the view goes away.  The unlink
                # below still removes the named segment.
                pass
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - double close
                pass


def _storage_attrs(table) -> List[Tuple[object, str]]:
    """(owner, attribute) pairs for every mutable storage array.

    Covers the chaining extras (``heads``/``next``) and recurses into
    sharded wrappers by duck typing, so the exec layer needs no imports
    from ``repro.core`` (which imports ``repro.exec`` right back).
    """
    shards = getattr(table, "shards", None)
    if shards is not None:
        pairs: List[Tuple[object, str]] = []
        for shard in shards:
            pairs.extend(_storage_attrs(shard))
        return pairs
    pairs = [(table, "keys"), (table, "values")]
    if hasattr(table, "heads"):
        pairs.append((table, "heads"))
        pairs.append((table, "next"))
    return pairs


@contextmanager
def table_storage_in_shm(table) -> Iterator[None]:
    """Swap a table's storage into shared memory for the duration.

    On entry every storage array is replaced by a shared-memory copy,
    so forked children mutating the table mutate memory the parent
    sees.  On exit the (now final) contents are copied back into
    ordinary private arrays and the segments are unlinked — the table
    ends up bit-identical to a build that never left private memory.
    """
    arena = ShmArena()
    pairs = _storage_attrs(table)
    try:
        for owner, attr in pairs:
            setattr(owner, attr, arena.share_copy(getattr(owner, attr)))
        yield
    finally:
        for owner, attr in pairs:
            setattr(owner, attr, np.array(getattr(owner, attr)))
        arena.close()
