"""Core library: the paper's primary contribution.

* :mod:`repro.core.hashtable` — perfect / open-addressing / chaining
  hash tables with SoA layout, access counting, and (hybrid) placement.
* :mod:`repro.core.join` — the no-partitioning hash join (NOPA), the
  radix-partitioned CPU baseline (PRA/PRO), and cooperative CPU+GPU
  execution (Het, GPU+Het).
* :mod:`repro.core.ops` — selection/aggregation operators and TPC-H Q6.
* :mod:`repro.core.scheduler` — morsel-driven heterogeneous scheduling.
* :mod:`repro.core.placement` — the hash-table placement decision tree.

The operator classes are exposed lazily: the join operators import
:mod:`repro.exec`, whose modules import ``repro.core`` submodules (the
dispatcher, the hash tables) right back.  An eager import here would
make ``import repro.exec`` fail whenever it runs before ``repro.core``
has initialized; deferring to first attribute access breaks the cycle
for both import orders.
"""

_LAZY = {
    "JoinResult": ("repro.core.join.nopa", "JoinResult"),
    "NoPartitioningJoin": ("repro.core.join.nopa", "NoPartitioningJoin"),
    "RadixJoin": ("repro.core.join.radix", "RadixJoin"),
    "CoopJoin": ("repro.core.join.coop", "CoopJoin"),
    "CoopResult": ("repro.core.join.coop", "CoopResult"),
    "PlacementDecision": ("repro.core.placement", "PlacementDecision"),
    "decide_placement": ("repro.core.placement", "decide_placement"),
}

__all__ = list(_LAZY)


def __getattr__(name):
    """Resolve the operator re-exports on first access (see module doc)."""
    import importlib

    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.core' has no attribute {name!r}"
        ) from None
    return getattr(importlib.import_module(module_name), attr)
