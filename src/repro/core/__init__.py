"""Core library: the paper's primary contribution.

* :mod:`repro.core.hashtable` — perfect / open-addressing / chaining
  hash tables with SoA layout, access counting, and (hybrid) placement.
* :mod:`repro.core.join` — the no-partitioning hash join (NOPA), the
  radix-partitioned CPU baseline (PRA/PRO), and cooperative CPU+GPU
  execution (Het, GPU+Het).
* :mod:`repro.core.ops` — selection/aggregation operators and TPC-H Q6.
* :mod:`repro.core.scheduler` — morsel-driven heterogeneous scheduling.
* :mod:`repro.core.placement` — the hash-table placement decision tree.
"""

from repro.core.join.nopa import JoinResult, NoPartitioningJoin
from repro.core.join.radix import RadixJoin
from repro.core.join.coop import CoopJoin, CoopResult
from repro.core.placement import PlacementDecision, decide_placement

__all__ = [
    "JoinResult",
    "NoPartitioningJoin",
    "RadixJoin",
    "CoopJoin",
    "CoopResult",
    "PlacementDecision",
    "decide_placement",
]
