"""Hash-table placement and execution-strategy decision tree (Figure 11).

The paper's decision process::

    hash table fits the CPU cache?
      yes -> GPU+Het strategy (build once, copy to all, probe everywhere)
      no  -> large hash table (exceeds GPU memory)?
               yes -> fast CPU? -> Het strategy (shared table in CPU mem)
                      slow CPU? -> GPU with hybrid hash table
               no  -> GPU with in-GPU hash table
                      (probe relation large? keep it streaming anyway)

This module encodes the tree and explains its choice, so the library
can auto-pick a strategy from workload statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.processor import Gpu
from repro.hardware.topology import Machine
from repro.utils.units import MIB


@dataclass(frozen=True)
class PlacementDecision:
    """Outcome of the Figure 11 decision tree."""

    strategy: str  # "gpu+het" | "het" | "gpu-hybrid" | "gpu"
    hash_table_placement: str  # "gpu" | "cpu" | "hybrid"
    reason: str

    def __str__(self) -> str:
        return f"{self.strategy} (table: {self.hash_table_placement}) — {self.reason}"


def decide_placement(
    machine: Machine,
    hash_table_bytes: int,
    gpu_name: str = "gpu0",
    fast_cpu: bool = True,
    gpu_reserve: int = 512 * MIB,
) -> PlacementDecision:
    """Walk the Figure 11 tree for one join.

    Args:
        hash_table_bytes: modeled table size.
        fast_cpu: whether the CPU is worth co-processing with (the
            paper's "Fast CPU?" node; POWER9 yes, a weak host no).
    """
    if hash_table_bytes < 0:
        raise ValueError("hash table size must be non-negative")
    gpu = machine.processor(gpu_name)
    if not isinstance(gpu, Gpu):
        raise ValueError(f"{gpu_name} is not a GPU")
    cpus = machine.cpus()
    if not cpus:
        raise ValueError("machine has no CPU")
    llc_capacity = min(cpu.llc.capacity for cpu in cpus)
    gpu_capacity = gpu.local_memory.capacity - gpu_reserve

    if hash_table_bytes <= llc_capacity and machine.coherent_gpu_access:
        return PlacementDecision(
            strategy="gpu+het",
            hash_table_placement="gpu",
            reason=(
                "table fits the CPU cache: build once, copy to every "
                "processor, probe cooperatively (small dimension table)"
            ),
        )
    if hash_table_bytes > gpu_capacity:
        if fast_cpu and machine.coherent_gpu_access:
            return PlacementDecision(
                strategy="het",
                hash_table_placement="cpu",
                reason=(
                    "table exceeds GPU memory and the CPU is fast: share "
                    "one table in CPU memory and process cooperatively"
                ),
            )
        return PlacementDecision(
            strategy="gpu",
            hash_table_placement="hybrid",
            reason=(
                "table exceeds GPU memory: hybrid hash table spills the "
                "overflow to CPU memory with graceful degradation"
            ),
        )
    return PlacementDecision(
        strategy="gpu",
        hash_table_placement="gpu",
        reason="table fits GPU memory: keep it local and stream the probe side",
    )
