"""The no-partitioning hash join (NOPA) on the simulated machine.

The operator (Sections 2.1 and 5):

* **build** — populate the hash table with the inner relation R,
* **probe** — look every outer tuple of S up and aggregate matches.

The functional layer executes the join on real numpy columns; the
measured traffic (scaled to the modeled cardinality) is priced by the
cost model with the configured transfer method and hash-table placement:

* placement ``gpu``  — the non-scalable fast path (Figure 6b),
* placement ``cpu``  — build-side scalable, spilled table (Figure 7a),
* placement ``hybrid`` — the hybrid hash table (Figures 7b and 8),
* any region name — the locality experiments (Figures 13 and 14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.costmodel.access import Stream
from repro.costmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.costmodel.model import CostModel, PhaseCost
from repro.core.hashtable import create_hash_table
from repro.core.hashtable.base import HashTableBase
from repro.core.hashtable.placement import HashTablePlacement, place_hash_table
from repro.data.relation import Relation
from repro.exec import (
    DEFAULT_EXEC_MORSEL_TUPLES,
    DEFAULT_WORKERS,
    check_backend,
    execute_build,
    execute_probe,
    make_executor,
)
from repro.faults.recovery import RetryPolicy
from repro.faults.resilience import ResilienceLog
from repro.hardware.cache import HotSetProfile
from repro.hardware.processor import Gpu
from repro.hardware.topology import Machine
from repro.logical.algebra import Query, scan
from repro.logical.lower import (
    GPU_BUILD_ACCESSES,
    CPU_BUILD_ACCESSES,
    PhysicalConfig,
    compile_query,
    join_build_phase,
    join_probe_phase,
    table_streams,
)
from repro.logical.stats import JoinStats, TableProfile
from repro.memory.allocator import OutOfMemoryError
from repro.obs import Observability
from repro.plan import PhaseSpec, Plan, PlanExecutor, ingest
from repro.utils.units import MIB

#: coherence/cache-line granularity used for payload-column line skipping.
LINE_BYTES = 128


def payload_line_fraction(match_mask: np.ndarray, payload_bytes: int) -> float:
    """Fraction of payload-column cache lines with at least one match.

    The probe loads a payload value only for matching tuples; at 128-byte
    line granularity a line is transferred when *any* of its entries
    matches (Section 7.2.9: "at 10% selectivity, 81.5% of values are
    loaded").
    """
    n = len(match_mask)
    if n == 0:
        return 0.0
    per_line = max(1, LINE_BYTES // payload_bytes)
    full_lines = n // per_line
    if full_lines == 0:
        return float(match_mask.any())
    head = match_mask[: full_lines * per_line].reshape(full_lines, per_line)
    line_hits = head.any(axis=1).sum()
    tail = match_mask[full_lines * per_line :]
    lines = full_lines + (1 if len(tail) else 0)
    line_hits += 1 if (len(tail) and tail.any()) else 0
    return float(line_hits / lines)


@dataclass
class JoinResult:
    """Functional result plus simulated performance of one join."""

    matches: int
    aggregate: int
    build_cost: PhaseCost
    probe_cost: PhaseCost
    modeled_tuples: int
    placement: HashTablePlacement
    payload_lines_loaded: float
    table_stats_probe_factor: float
    processor: str
    materialized: Optional[Dict[str, "np.ndarray"]] = None

    @property
    def runtime(self) -> float:
        """Simulated end-to-end seconds at modeled (paper) scale."""
        return self.build_cost.seconds + self.probe_cost.seconds

    @property
    def throughput_tuples(self) -> float:
        """(|R| + |S|) / runtime — the paper's throughput metric."""
        if self.runtime == 0:
            return float("inf")
        return self.modeled_tuples / self.runtime

    @property
    def throughput_gtuples(self) -> float:
        return self.throughput_tuples / 1e9

    @property
    def build_fraction(self) -> float:
        """Share of runtime spent in the build phase (Figure 18b)."""
        if self.runtime == 0:
            return 0.0
        return self.build_cost.seconds / self.runtime

    def __str__(self) -> str:
        return (
            f"JoinResult({self.matches} matches, "
            f"{self.throughput_gtuples:.2f} G Tuples/s on {self.processor})"
        )


class NoPartitioningJoin:
    """Configurable NOPA join operator.

    Args:
        machine: the simulated machine.
        hash_table_placement: ``gpu`` | ``cpu`` | ``hybrid`` | region name.
        transfer_method: Table 1 method used by a GPU to reach CPU-memory
            relations; ignored for CPU execution and local data.
        hash_scheme: ``perfect`` (paper default) | ``open_addressing`` |
            ``chaining``.
        layout: ``soa`` (paper default; separate key/value arrays, value
            traffic only on matches — Figure 20) or ``aos`` (interleaved
            entries; every probe pulls the full entry).
        output: ``aggregate`` (paper default: the probe emits a running
            sum) or ``materialize`` (write <probe payload, build payload>
            result tuples to the processor's local memory — Section 5.1:
            "emit the join result (i.e., an aggregate or a
            materialization)").
        calibration: cost-model constants.
        gpu_reserve: GPU bytes kept free when placing the table.
        backend: how the *functional* execution runs — ``serial`` (one
            thread, the default), ``threads`` (morsel-parallel via
            ``repro.exec``), or ``processes`` (forked workers writing
            shared-memory buffers — parallel numpy past the GIL).
            Results, ``TableStats``, and everything priced from them
            are identical across backends; only wall-clock behaviour
            differs.
        workers: worker count for the parallel backends.
        exec_morsel_tuples: executed-tuple morsel size for the parallel
            backends' dispatchers.
        shards: key-space shard count for the hash table (power of
            two).  ``shards > 1`` wraps the scheme in a
            :class:`~repro.core.hashtable.sharded.ShardedHashTable`
            whose build is contention-free — each worker owns whole
            shards — making every scheme (including chaining and open
            addressing) parallel-buildable; probes fan out by the
            shard router.  Sharding changes the table geometry, so
            measured probe counts may differ from ``shards=1``; for a
            *fixed* shard count, results and stats stay identical
            across backends and worker counts.
        oom_policy: what to do when the ``gpu`` placement cannot fit the
            table — ``raise`` (the paper's pre-NVLink scalability cliff,
            the default) or ``spill`` (degrade gracefully to the hybrid
            GPU-first/CPU-spill placement of Section 5.3 / Figure 8).
        retry_policy: bounded retry/backoff for transient morsel faults
            in the thread backend (None uses the executor default).
    """

    #: calibrated accounting: a GPU insert is one 16-byte CAS; a CPU
    #: insert is a compare-exchange plus a store (two accesses).  The
    #: constants live with the lowering arithmetic in ``repro.logical``.
    GPU_BUILD_ACCESSES = GPU_BUILD_ACCESSES
    CPU_BUILD_ACCESSES = CPU_BUILD_ACCESSES

    def __init__(
        self,
        machine: Machine,
        hash_table_placement: str = "gpu",
        transfer_method: str = "coherence",
        hash_scheme: str = "perfect",
        calibration: Calibration = DEFAULT_CALIBRATION,
        gpu_reserve: int = 512 * MIB,
        gpu_name: str = "gpu0",
        layout: str = "soa",
        output: str = "aggregate",
        obs: Optional[Observability] = None,
        backend: str = "serial",
        workers: int = DEFAULT_WORKERS,
        exec_morsel_tuples: int = DEFAULT_EXEC_MORSEL_TUPLES,
        oom_policy: str = "raise",
        retry_policy: Optional[RetryPolicy] = None,
        shards: int = 1,
    ) -> None:
        if layout not in ("soa", "aos"):
            raise ValueError(f"layout must be 'soa' or 'aos', got {layout!r}")
        if output not in ("aggregate", "materialize"):
            raise ValueError(
                f"output must be 'aggregate' or 'materialize', got {output!r}"
            )
        if oom_policy not in ("raise", "spill"):
            raise ValueError(
                f"oom_policy must be 'raise' or 'spill', got {oom_policy!r}"
            )
        self.machine = machine
        self.obs = obs if obs is not None else Observability.create()
        self.cost_model = CostModel(machine, calibration, obs=self.obs)
        self.hash_table_placement = hash_table_placement
        self.transfer_method = transfer_method
        self.hash_scheme = hash_scheme
        self.gpu_reserve = gpu_reserve
        self.gpu_name = gpu_name
        self.layout = layout
        self.output = output
        self.backend = check_backend(backend)
        self.workers = workers
        self.exec_morsel_tuples = exec_morsel_tuples
        self.oom_policy = oom_policy
        self.retry_policy = retry_policy
        self.shards = shards
        #: the executor of the most recent run (None for serial) — its
        #: metrics/timeline expose worker-level dispatch for inspection.
        self.last_executor = None
        #: recovery audit of the most recent run: retries, re-dispatches,
        #: serial fallbacks, and placement spills land here.  Feed its
        #: ``section()`` to ``build_manifest(resilience=...)`` for chaos
        #: manifests; it stays empty for fault-free runs.
        self.last_resilience = ResilienceLog()

    # ------------------------------------------------------------------
    # Functional execution
    # ------------------------------------------------------------------
    def _execute(self, r: Relation, s: Relation) -> tuple:
        table = create_hash_table(
            self.hash_scheme,
            r.executed_tuples,
            r.key.dtype,
            r.payload.dtype,
            shards=self.shards,
        )
        self.last_resilience = ResilienceLog()
        executor = make_executor(
            self.backend,
            self.workers,
            self.exec_morsel_tuples,
            name="nopa",
            retry=self.retry_policy,
            resilience=self.last_resilience,
        )
        self.last_executor = executor
        execute_build(table, r.key, r.payload, executor)
        found, values = execute_probe(table, s.key, executor)
        matches = int(found.sum())
        aggregate = int(values[found].astype(np.int64).sum())
        lines = payload_line_fraction(found, s.payload_bytes)
        materialized = None
        if self.output == "materialize":
            materialized = {
                "key": s.key[found],
                "s_payload": s.payload[found],
                "r_payload": values[found],
            }
        return table, matches, aggregate, lines, materialized

    # ------------------------------------------------------------------
    # Traffic assembly
    # ------------------------------------------------------------------
    def _resolve_placement(
        self,
        table: HashTableBase,
        r: Relation,
        processor: str,
        strategy: Optional[str] = None,
    ) -> HashTablePlacement:
        modeled_bytes = table.modeled_bytes(r.modeled_tuples)
        strategy = strategy if strategy is not None else self.hash_table_placement
        proc = self.machine.processor(processor)
        if not isinstance(proc, Gpu) and strategy in ("gpu", "hybrid"):
            # A CPU-only join keeps its table in local CPU memory.
            return HashTablePlacement(
                total_bytes=modeled_bytes,
                fractions={proc.local_memory.name: 1.0},
                label="cpu-local",
            )
        return place_hash_table(
            self.machine,
            modeled_bytes,
            strategy,
            gpu_name=processor if isinstance(proc, Gpu) else self.gpu_name,
            gpu_reserve=self.gpu_reserve,
        )

    def _ingest(self, processor: str, relation: Relation, nbytes: float, label: str):
        """Shared ingest glue: streams + chunked overlap for one input."""
        return ingest(
            self.cost_model,
            self.transfer_method,
            processor,
            relation.location,
            nbytes,
            label,
            kind=relation.kind,
        )

    def _table_streams(
        self,
        processor: str,
        placement: HashTablePlacement,
        accesses: float,
        access_bytes: float,
        atomic: bool,
        hot_set: Optional[HotSetProfile],
        label: str,
    ) -> List[Stream]:
        """Hash-table traffic split across the placement's regions."""
        return table_streams(
            processor, placement, accesses, access_bytes, atomic, hot_set,
            label,
        )

    def _physical_config(
        self, processor: str, placement: HashTablePlacement
    ) -> PhysicalConfig:
        return PhysicalConfig(
            strategy="single",
            processor=processor,
            transfer_method=self.transfer_method,
            placement=placement,
            layout=self.layout,
            output=self.output,
            backend=self.backend,
            exec_workers=self.workers,
            shards=self.shards,
            hash_scheme=self.hash_scheme,
            label="nopa",
        )

    def _join_stats(
        self,
        table: HashTableBase,
        r: Relation,
        s: Relation,
        lines_loaded: float,
        hot_set: Optional[HotSetProfile],
        matches: int,
    ) -> JoinStats:
        return JoinStats(
            table=TableProfile.from_table(table, r.modeled_tuples),
            lines_loaded=lines_loaded,
            matches=matches,
            model_factor=s.model_factor,
            hot_set=hot_set,
        )

    def build_phase(
        self,
        r: Relation,
        processor: str,
        table: HashTableBase,
        placement: HashTablePlacement,
    ) -> PhaseSpec:
        """The build phase at modeled scale, as a plan node."""
        return join_build_phase(
            self.cost_model,
            self.transfer_method,
            r,
            processor,
            TableProfile.from_table(table, r.modeled_tuples),
            placement,
        )

    def probe_phase(
        self,
        s: Relation,
        processor: str,
        table: HashTableBase,
        placement: HashTablePlacement,
        lines_loaded: float,
        hot_set: Optional[HotSetProfile],
        matches: int = 0,
    ) -> PhaseSpec:
        """The probe phase at modeled scale, as a plan node."""
        return join_probe_phase(
            self.cost_model,
            self.transfer_method,
            s,
            processor,
            TableProfile.from_table(table, s.modeled_tuples),
            placement,
            lines_loaded,
            hot_set,
            layout=self.layout,
            output=self.output,
            matches=matches,
            model_factor=s.model_factor,
        )

    def logical_query(self, r: Relation, s: Relation) -> Query:
        """The join as a logical plan (S probes a table built from R)."""
        return (
            scan(s)
            .join(scan(r), build_key="key", probe_key="key")
            .aggregate(agg=("build_payload", "sum"))
        )

    def compile_plan(
        self,
        r: Relation,
        s: Relation,
        processor: str,
        table: HashTableBase,
        placement: HashTablePlacement,
        lines_loaded: float,
        hot_set: Optional[HotSetProfile] = None,
        matches: int = 0,
    ) -> Plan:
        """Compile the two-phase NOPA DAG (build -> probe) by lowering
        the logical join through :func:`repro.logical.compile_query`."""
        return compile_query(
            self.logical_query(r, s),
            self._physical_config(processor, placement),
            self.cost_model,
            self._join_stats(table, r, s, lines_loaded, hot_set, matches),
        )

    def _place_with_oom_policy(
        self, table: HashTableBase, r: Relation, processor: str
    ) -> HashTablePlacement:
        """Resolve the placement, degrading to hybrid on build-side OOM.

        This is the operator-level graceful degradation of Section 5.3 /
        Figure 8: when ``oom_policy="spill"`` and the requested placement
        cannot fit the build side in GPU memory, the join falls back to
        the hybrid hash table (GPU-first, CPU-spill) instead of failing,
        and records the decision as a ``spill`` resilience event.
        """
        try:
            return self._resolve_placement(table, r, processor)
        except OutOfMemoryError as exc:
            if self.oom_policy != "spill" or self.hash_table_placement == "hybrid":
                raise
            placement = self._resolve_placement(
                table, r, processor, strategy="hybrid"
            )
            self.last_resilience.record(
                "spill",
                phase="placement",
                from_strategy=self.hash_table_placement,
                to_strategy="hybrid",
                reason=str(exc),
                fractions=dict(placement.fractions),
            )
            return placement

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(
        self,
        r: Relation,
        s: Relation,
        processor: str = "gpu0",
        hot_set: Optional[HotSetProfile] = None,
        placement_fractions: Optional[Dict[str, float]] = None,
    ) -> JoinResult:
        """Execute the join functionally and price it on the machine.

        ``placement_fractions`` overrides the placement strategy with an
        explicit region->fraction split (Figure 19 sweeps the hybrid
        table's GPU/CPU ratio directly).
        """
        table, matches, aggregate, lines_loaded, materialized = self._execute(
            r, s
        )
        if placement_fractions is not None:
            unknown = [
                name
                for name in placement_fractions
                if name not in self.machine.memories
            ]
            if unknown:
                valid = ", ".join(sorted(self.machine.memories))
                raise ValueError(
                    f"placement_fractions references unknown memory "
                    f"region(s) {unknown}; valid regions on "
                    f"{self.machine.name}: {valid}"
                )
            placement = HashTablePlacement(
                total_bytes=table.modeled_bytes(r.modeled_tuples),
                fractions=dict(placement_fractions),
                label="explicit",
            )
        else:
            placement = self._place_with_oom_policy(table, r, processor)
        plan = self.compile_plan(
            r, s, processor, table, placement, lines_loaded, hot_set,
            matches=matches,
        )
        executed = PlanExecutor(self.cost_model).execute(plan)
        return JoinResult(
            matches=matches,
            aggregate=aggregate,
            build_cost=executed.cost("build"),
            probe_cost=executed.cost("probe"),
            modeled_tuples=r.modeled_tuples + s.modeled_tuples,
            placement=placement,
            payload_lines_loaded=lines_loaded,
            table_stats_probe_factor=table.stats.probe_factor,
            processor=processor,
            materialized=materialized,
        )
