"""Multi-GPU hash-table placement and execution (Section 6.3).

"Systems with multiple GPUs are connected in a mesh topology similar to
multi-socket CPU systems.  For small hash tables, we can use the
GPU+Het execution strategy with multiple GPUs.  However, for large hash
tables, multi-GPU systems can distribute the hash table over multiple
GPUs, as GPUs are latency insensitive.  We distribute the table by
interleaving the pages over all GPUs."

Two placements:

* ``replicated`` — every GPU holds its own copy of a small table (one
  GPU builds, the copy is broadcast); each GPU probes locally.
* ``interleaved`` — the table's pages are dealt round-robin over all
  GPU memories; each GPU's probes hit every GPU's memory uniformly,
  exploiting the full bidirectional bandwidth of the fast interconnect.

The paper describes this strategy without a dedicated experiment; the
bench in :mod:`repro.bench.multi_gpu` explores it as an extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.costmodel.access import (
    AccessProfile,
    atomic_stream,
    random_stream,
    seq_stream,
)
from repro.costmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.costmodel.model import CostModel
from repro.core.hashtable import create_hash_table
from repro.data.relation import Relation
from repro.hardware.processor import Gpu
from repro.hardware.topology import Machine
from repro.memory.allocator import Allocator, OutOfMemoryError
from repro.memory.hybrid import allocate_interleaved
from repro.obs import Observability
from repro.plan import (
    PhaseSpec,
    Plan,
    PlanExecutor,
    Surcharge,
    WorkerLoad,
    concurrent_phase,
    priced_phase,
)

PLACEMENTS = ("replicated", "interleaved")


@dataclass
class MultiGpuResult:
    """Functional result plus simulated performance."""

    matches: int
    aggregate: int
    placement: str
    build_seconds: float
    probe_seconds: float
    modeled_tuples: int
    gpu_rates: Dict[str, float]
    table_bytes_per_gpu: Dict[str, int]

    @property
    def runtime(self) -> float:
        return self.build_seconds + self.probe_seconds

    @property
    def throughput_tuples(self) -> float:
        if self.runtime == 0:
            return float("inf")
        return self.modeled_tuples / self.runtime

    @property
    def throughput_gtuples(self) -> float:
        return self.throughput_tuples / 1e9


class MultiGpuJoin:
    """NOPA join distributed over several GPUs.

    The probe side is split over the GPUs by the morsel dispatcher at
    the rates the contention solver assigns; the build is executed by
    all GPUs in parallel (interleaved) or by one GPU plus a broadcast
    (replicated).
    """

    def __init__(
        self,
        machine: Machine,
        placement: str = "interleaved",
        calibration: Calibration = DEFAULT_CALIBRATION,
        hash_scheme: str = "perfect",
        obs: Optional[Observability] = None,
    ) -> None:
        if placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {placement!r}; valid: {', '.join(PLACEMENTS)}"
            )
        self.machine = machine
        self.placement = placement
        self.calibration = calibration
        self.obs = obs if obs is not None else Observability.create()
        self.cost_model = CostModel(machine, calibration, obs=self.obs)
        self.hash_scheme = hash_scheme

    # ------------------------------------------------------------------
    def _gpus(self, workers: Sequence[str]) -> List[Gpu]:
        gpus = []
        for name in workers:
            proc = self.machine.processor(name)
            if not isinstance(proc, Gpu):
                raise ValueError(f"multi-GPU join accepts GPUs only, got {name}")
            gpus.append(proc)
        if not gpus:
            raise ValueError("need at least one GPU")
        return gpus

    def _table_fractions(
        self, gpus: Sequence[Gpu], table_bytes: int
    ) -> Tuple[Dict[str, float], Dict[str, int]]:
        """Region fractions + per-GPU bytes for the chosen placement."""
        if self.placement == "replicated":
            for gpu in gpus:
                if table_bytes > gpu.local_memory.capacity:
                    raise OutOfMemoryError(
                        "replicated placement needs the table to fit every "
                        f"GPU; {table_bytes} bytes exceed {gpu.name}"
                    )
            return (
                {gpu.local_memory.name: 1.0 for gpu in gpus},
                {gpu.local_memory.name: table_bytes for gpu in gpus},
            )
        # Interleaved: validate via the real allocator, then return the
        # byte split it produced.
        allocator = Allocator(self.machine)
        allocation = allocate_interleaved(
            allocator, [gpu.name for gpu in gpus], table_bytes
        )
        per_region = allocation.bytes_per_region()
        allocation.free(allocator)
        fractions = {
            region: nbytes / table_bytes if table_bytes else 0.0
            for region, nbytes in per_region.items()
        }
        return fractions, per_region

    # ------------------------------------------------------------------
    def _probe_profile(
        self,
        gpu: Gpu,
        s: Relation,
        fractions: Dict[str, float],
        accesses_per_tuple: float,
        key_bytes: float,
        table_bytes: int,
    ) -> AccessProfile:
        work = self.calibration.join_work_per_tuple["gpu"]
        streams = [seq_stream(gpu.name, s.location, s.modeled_bytes, "read S")]
        if self.placement == "replicated":
            streams.append(
                random_stream(
                    gpu.name,
                    gpu.local_memory.name,
                    s.modeled_tuples * accesses_per_tuple,
                    key_bytes,
                    working_set_bytes=table_bytes,
                    label="ht probe",
                )
            )
        else:
            for region, fraction in fractions.items():
                streams.append(
                    random_stream(
                        gpu.name,
                        region,
                        s.modeled_tuples * accesses_per_tuple * fraction,
                        key_bytes,
                        working_set_bytes=table_bytes * fraction,
                        label="ht probe",
                    )
                )
        return AccessProfile(
            streams=streams,
            compute_tuples=s.modeled_tuples * work,
            label=f"probe[{gpu.name}]",
            processor=gpu.name,
        )

    def build_phase_spec(
        self,
        gpus: Sequence[Gpu],
        r: Relation,
        fractions: Dict[str, float],
        entry_bytes: int,
        table_bytes: int,
    ) -> PhaseSpec:
        """Compile the build phase for the chosen placement."""
        workers = tuple(gpu.name for gpu in gpus)
        if self.placement == "replicated":
            builder = gpus[0]
            profile = AccessProfile(
                streams=[
                    seq_stream(builder.name, r.location, r.modeled_bytes, "read R"),
                    atomic_stream(
                        builder.name,
                        builder.local_memory.name,
                        r.modeled_tuples,
                        entry_bytes,
                        working_set_bytes=table_bytes,
                        label="ht insert",
                    ),
                ],
                compute_tuples=r.modeled_tuples
                * self.calibration.join_work_per_tuple["gpu"],
                label="build[replicated]",
                processor=builder.name,
            )
            # Broadcast the finished table to the other GPUs over their
            # links (peer-to-peer through the mesh).
            others = len(gpus) - 1
            surcharges: Tuple[Surcharge, ...] = ()
            if others:
                link = self.machine.gpu_link(builder.name)
                copy_bw = (
                    link.spec.seq_bw * self.calibration.ht_copy_bandwidth_factor
                )
                surcharges = (
                    Surcharge(
                        others * table_bytes / copy_bw,
                        f"link:{link.name}",
                        "ht broadcast",
                    ),
                )
            return priced_phase(
                "build",
                profile,
                surcharges=surcharges,
                claims=workers,
                span_worker=",".join(workers),
                span_units=float(r.modeled_tuples),
            )
        # Interleaved: all GPUs build concurrently; each GPU's inserts
        # scatter over every GPU's memory by the byte fractions.
        loads: Dict[str, WorkerLoad] = {}
        share = 1.0 / len(gpus)
        for gpu in gpus:
            streams = [
                seq_stream(
                    gpu.name, r.location, r.modeled_bytes * share, "read R"
                )
            ]
            for region, fraction in fractions.items():
                streams.append(
                    atomic_stream(
                        gpu.name,
                        region,
                        r.modeled_tuples * share * fraction,
                        entry_bytes,
                        working_set_bytes=table_bytes * fraction,
                        label="ht insert",
                    )
                )
            profile = AccessProfile(
                streams=streams,
                compute_tuples=r.modeled_tuples
                * share
                * self.calibration.join_work_per_tuple["gpu"],
                label=f"build[{gpu.name}]",
                processor=gpu.name,
            )
            loads[gpu.name] = WorkerLoad(profile, float(r.modeled_tuples) * share)
        return concurrent_phase(
            "build",
            loads,
            shared_units=float(r.modeled_tuples),
            claims=workers,
            span_units=float(r.modeled_tuples),
        )

    def probe_phase_spec(
        self,
        gpus: Sequence[Gpu],
        s: Relation,
        fractions: Dict[str, float],
        accesses_per_tuple: float,
        key_bytes: float,
        table_bytes: int,
    ) -> PhaseSpec:
        """Compile the all-GPU probe (pool mode over the probe side)."""
        loads = {
            gpu.name: WorkerLoad(
                self._probe_profile(
                    gpu, s, fractions, accesses_per_tuple, key_bytes, table_bytes
                ),
                float(s.modeled_tuples),
            )
            for gpu in gpus
        }
        return concurrent_phase(
            "probe",
            loads,
            shared_units=float(s.modeled_tuples),
            deps=("build",),
            claims=tuple(gpu.name for gpu in gpus),
            span_units=float(s.modeled_tuples),
        )

    # ------------------------------------------------------------------
    def run(
        self,
        r: Relation,
        s: Relation,
        workers: Optional[Sequence[str]] = None,
    ) -> MultiGpuResult:
        """Execute the join functionally and price it across the GPUs."""
        workers = tuple(workers or (gpu.name for gpu in self.machine.gpus()))
        gpus = self._gpus(workers)

        table = create_hash_table(
            self.hash_scheme, r.executed_tuples, r.key.dtype, r.payload.dtype
        )
        table.insert_batch(r.key, r.payload)
        found, values = table.lookup_batch(s.key)
        matches = int(found.sum())
        aggregate = int(values[found].astype(np.int64).sum())
        accesses_per_tuple = (
            table.stats.lookup_probes + table.stats.value_reads
        ) / max(1, table.stats.lookups)
        table_bytes = table.modeled_bytes(r.modeled_tuples)

        fractions, per_region = self._table_fractions(gpus, table_bytes)
        build_spec = self.build_phase_spec(
            gpus, r, fractions, table.entry_bytes, table_bytes
        )
        probe_spec = self.probe_phase_spec(
            gpus,
            s,
            fractions,
            accesses_per_tuple,
            float(table.keys.dtype.itemsize),
            table_bytes,
        )
        plan = Plan(
            [build_spec, probe_spec], label=f"multigpu[{self.placement}]"
        )
        executed = PlanExecutor(self.cost_model).execute(plan)
        probe_out = executed.outcomes["probe"]
        return MultiGpuResult(
            matches=matches,
            aggregate=aggregate,
            placement=self.placement,
            build_seconds=executed.seconds("build"),
            probe_seconds=probe_out.cost.seconds,
            modeled_tuples=r.modeled_tuples + s.modeled_tuples,
            gpu_rates=probe_out.rates,
            table_bytes_per_gpu={k: int(v) for k, v in per_region.items()},
        )
