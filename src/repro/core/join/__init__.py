"""Join operators: NOPA, the radix baseline, and cooperative execution."""

from repro.core.join.nopa import JoinResult, NoPartitioningJoin
from repro.core.join.radix import RadixJoin, RadixJoinResult
from repro.core.join.coop import CoopJoin, CoopResult

__all__ = [
    "JoinResult",
    "NoPartitioningJoin",
    "RadixJoin",
    "RadixJoinResult",
    "CoopJoin",
    "CoopResult",
]
