"""Cooperative CPU+GPU join execution (Section 6).

Two strategies on top of the NOPA join:

* **Het** — one globally shared hash table in CPU memory; CPU and GPU
  build it together (contended atomics over the coherent interconnect)
  and probe it together via morsel-driven scheduling (Figure 9a).
* **GPU+Het** — for small build sides: one processor (the GPU) builds
  the table in its local memory, the finished table is copied to every
  other processor's local memory, and all processors probe their local
  copy (Figure 9b).

Per-worker throughputs come from the shared-resource solver (CPU cores
and the GPU compete for CPU-memory bandwidth); the probe phase then runs
as a discrete-event simulation of the morsel dispatcher — one morsel at
a time for CPU workers, latency-amortizing batches for GPUs — which
adds the end-of-input skew and batching effects of Section 6.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.costmodel.access import AccessProfile
from repro.costmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.costmodel.model import CostModel, PhaseCost
from repro.core.hashtable import create_hash_table
from repro.data.relation import Relation
from repro.exec import (
    DEFAULT_EXEC_MORSEL_TUPLES,
    DEFAULT_WORKERS,
    check_backend,
    execute_build,
    execute_probe,
    make_executor,
)
from repro.hardware.cache import HotSetProfile
from repro.hardware.processor import Gpu
from repro.hardware.topology import Machine
from repro.logical.algebra import Query, scan
from repro.logical.lower import (
    PhysicalConfig,
    _coop_build_profile,
    _coop_probe_profile,
    _local_table_region,
    _shared_table_region,
    compile_query,
    coop_build_phase,
    coop_probe_phase,
)
from repro.logical.stats import JoinStats, TableProfile
from repro.obs import Observability
from repro.obs.trace import Timeline
from repro.plan import PhaseSpec, PlanExecutor

STRATEGIES = ("het", "gpu+het")


@dataclass
class CoopResult:
    """Functional result plus simulated performance of a cooperative join."""

    matches: int
    aggregate: int
    strategy: str
    build_seconds: float
    probe_seconds: float
    modeled_tuples: int
    worker_rates: Dict[str, float]
    worker_shares: Dict[str, float]
    timeline: Timeline
    workers: Tuple[str, ...]
    #: aggregate per-phase costs (occupancy summed across workers at
    #: their solved shares) — the same shape single-processor joins
    #: report, so run manifests can treat both uniformly.
    build_cost: Optional[PhaseCost] = None
    probe_cost: Optional[PhaseCost] = None

    @property
    def runtime(self) -> float:
        return self.build_seconds + self.probe_seconds

    @property
    def throughput_tuples(self) -> float:
        if self.runtime == 0:
            return float("inf")
        return self.modeled_tuples / self.runtime

    @property
    def throughput_gtuples(self) -> float:
        return self.throughput_tuples / 1e9

    def __str__(self) -> str:
        return (
            f"CoopResult({self.strategy}: {self.throughput_gtuples:.2f} "
            f"G Tuples/s, workers={self.workers})"
        )


class CoopJoin:
    """Cooperative NOPA join across heterogeneous processors.

    Args:
        machine: the simulated machine (must have a coherent GPU link for
            the shared-table Het strategy).
        strategy: ``het`` or ``gpu+het``.
        morsel_tuples: dispatcher morsel size (modeled tuples) of the
            *simulated* probe-phase dispatcher.
        gpu_batch_morsels: morsels per GPU batch; ``None`` auto-tunes.
        backend: ``serial`` | ``threads`` | ``processes`` — how the
            functional build and probe execute on the host.  Results and
            TableStats are identical across backends; the simulated Het
            schedule is priced from the same counters regardless.
        exec_workers: worker count for the parallel backends.
        exec_morsel_tuples: *executed*-tuple morsel size for the parallel
            backends (unrelated to the modeled ``morsel_tuples``).
        shards: key-space shard count for the build table (power of
            two); ``shards > 1`` makes the build contention-free for
            every scheme (see :mod:`repro.core.hashtable.sharded`).
    """

    def __init__(
        self,
        machine: Machine,
        strategy: str = "het",
        calibration: Calibration = DEFAULT_CALIBRATION,
        morsel_tuples: int = 1 << 22,
        gpu_batch_morsels: Optional[int] = None,
        hash_scheme: str = "perfect",
        obs: Optional[Observability] = None,
        backend: str = "serial",
        exec_workers: int = DEFAULT_WORKERS,
        exec_morsel_tuples: int = DEFAULT_EXEC_MORSEL_TUPLES,
        shards: int = 1,
    ) -> None:
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; valid: {', '.join(STRATEGIES)}"
            )
        self.machine = machine
        self.strategy = strategy
        self.calibration = calibration
        self.obs = obs if obs is not None else Observability.create()
        self.cost_model = CostModel(machine, calibration, obs=self.obs)
        self.morsel_tuples = morsel_tuples
        self.gpu_batch_morsels = gpu_batch_morsels
        self.hash_scheme = hash_scheme
        self.backend = check_backend(backend)
        self.exec_workers = exec_workers
        self.exec_morsel_tuples = exec_morsel_tuples
        self.shards = shards
        self.last_executor = None

    # ------------------------------------------------------------------
    # Placement per strategy (delegating to the lowering compiler)
    # ------------------------------------------------------------------
    def _shared_table_region(self, workers: Tuple[str, ...]) -> str:
        """Het: the shared table lives in the CPU memory nearest the GPU."""
        return _shared_table_region(self.machine, tuple(workers))

    def _local_table_region(self, worker: str) -> str:
        """GPU+Het: every worker probes a copy in its local memory."""
        return _local_table_region(self.machine, worker)

    # ------------------------------------------------------------------
    # Per-worker profiles
    # ------------------------------------------------------------------
    def _is_gpu(self, worker: str) -> bool:
        return isinstance(self.machine.processor(worker), Gpu)

    def _build_profile(
        self,
        worker: str,
        r: Relation,
        table_region: str,
        table_bytes: float,
        entry_bytes: float,
        contended: bool,
    ) -> AccessProfile:
        return _coop_build_profile(
            self.machine,
            self.calibration,
            worker,
            r,
            table_region,
            table_bytes,
            entry_bytes,
            contended,
        )

    def _probe_profile(
        self,
        worker: str,
        s: Relation,
        table_region: str,
        table_bytes: float,
        key_bytes: float,
        accesses_per_tuple: float,
        lines_loaded: float,
        hot_set: Optional[HotSetProfile],
    ) -> AccessProfile:
        return _coop_probe_profile(
            self.machine,
            self.calibration,
            worker,
            s,
            table_region,
            table_bytes,
            key_bytes,
            accesses_per_tuple,
            lines_loaded,
            hot_set,
        )

    # ------------------------------------------------------------------
    # Plan compilation (delegating to the lowering compiler)
    # ------------------------------------------------------------------
    def build_phase_spec(
        self,
        r: Relation,
        workers: Tuple[str, ...],
        table_bytes: float,
        entry_bytes: float,
    ) -> Tuple[PhaseSpec, Dict[str, str]]:
        """Compile the build phase; returns (spec, worker -> probe region)."""
        return coop_build_phase(
            self.cost_model,
            self.strategy,
            r,
            tuple(workers),
            table_bytes,
            entry_bytes,
        )

    def probe_phase_spec(
        self,
        s: Relation,
        workers: Tuple[str, ...],
        regions: Dict[str, str],
        table_bytes: float,
        key_bytes: float,
        accesses_per_tuple: float,
        lines_loaded: float,
        hot_set: Optional[HotSetProfile],
        matches: int = 0,
    ) -> PhaseSpec:
        """Compile the morsel-dispatched cooperative probe phase."""
        return coop_probe_phase(
            self.cost_model,
            self.strategy,
            s,
            tuple(workers),
            regions,
            table_bytes,
            key_bytes,
            accesses_per_tuple,
            lines_loaded,
            hot_set,
            self.morsel_tuples,
            self.gpu_batch_morsels,
            matches=matches,
        )

    def logical_query(self, r: Relation, s: Relation) -> Query:
        """The join as a logical plan (S probes a table built from R)."""
        return (
            scan(s)
            .join(scan(r), build_key="key", probe_key="key")
            .aggregate(agg=("build_payload", "sum"))
        )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(
        self,
        r: Relation,
        s: Relation,
        workers: Tuple[str, ...] = ("cpu0", "gpu0"),
        hot_set: Optional[HotSetProfile] = None,
    ) -> CoopResult:
        """Execute the cooperative join and price it on the machine."""
        if not workers:
            raise ValueError("need at least one worker")
        for worker in workers:
            self.machine.processor(worker)  # validate names early
        if self.strategy == "het" and len(workers) > 1:
            # A shared *mutable* hash table needs system-wide atomics,
            # which only cache-coherent interconnects provide (L3 /
            # Section 3: PCI-e lacks them).
            gpu_workers = [w for w in workers if self._is_gpu(w)]
            for worker in gpu_workers:
                link = self.machine.gpu_link(worker)
                if not link.spec.cache_coherent:
                    raise ValueError(
                        f"the Het strategy shares a mutable hash table and "
                        f"requires a cache-coherent interconnect; {worker}'s "
                        f"{link.spec.name} is not coherent — use 'gpu+het' "
                        "or single-processor execution"
                    )

        # Functional execution: one shared table, full probe.
        table = create_hash_table(
            self.hash_scheme,
            r.executed_tuples,
            r.key.dtype,
            r.payload.dtype,
            shards=self.shards,
        )
        executor = make_executor(
            self.backend, self.exec_workers, self.exec_morsel_tuples, name="coop"
        )
        self.last_executor = executor
        execute_build(table, r.key, r.payload, executor)
        found, values = execute_probe(table, s.key, executor)
        matches = int(found.sum())
        aggregate = int(values[found].astype(np.int64).sum())
        lines_loaded = _line_fraction(found, s.payload_bytes)

        stats = JoinStats(
            table=TableProfile.from_table(table, r.modeled_tuples),
            lines_loaded=lines_loaded,
            matches=matches,
            hot_set=hot_set,
        )
        config = PhysicalConfig(
            strategy=self.strategy,
            workers=tuple(workers),
            morsel_tuples=self.morsel_tuples,
            gpu_batch_morsels=self.gpu_batch_morsels,
            backend=self.backend,
            exec_workers=self.exec_workers,
            shards=self.shards,
            hash_scheme=self.hash_scheme,
            label="coop",
        )
        plan = compile_query(
            self.logical_query(r, s), config, self.cost_model, stats
        )
        executed = PlanExecutor(self.cost_model).execute(plan)
        build_out = executed.outcomes["build"]
        probe_out = executed.outcomes["probe"]
        assert probe_out.timeline is not None
        return CoopResult(
            matches=matches,
            aggregate=aggregate,
            strategy=self.strategy,
            build_seconds=build_out.cost.seconds,
            probe_seconds=probe_out.cost.seconds,
            modeled_tuples=r.modeled_tuples + s.modeled_tuples,
            worker_rates=probe_out.rates,
            worker_shares=probe_out.shares,
            timeline=probe_out.timeline,
            workers=tuple(workers),
            build_cost=build_out.cost,
            probe_cost=probe_out.cost,
        )


def _line_fraction(match_mask: np.ndarray, payload_bytes: int) -> float:
    """Payload-column line-load fraction (shared with the NOPA join)."""
    from repro.core.join.nopa import payload_line_fraction

    return payload_line_fraction(match_mask, payload_bytes)
