"""Cooperative CPU+GPU join execution (Section 6).

Two strategies on top of the NOPA join:

* **Het** — one globally shared hash table in CPU memory; CPU and GPU
  build it together (contended atomics over the coherent interconnect)
  and probe it together via morsel-driven scheduling (Figure 9a).
* **GPU+Het** — for small build sides: one processor (the GPU) builds
  the table in its local memory, the finished table is copied to every
  other processor's local memory, and all processors probe their local
  copy (Figure 9b).

Per-worker throughputs come from the shared-resource solver (CPU cores
and the GPU compete for CPU-memory bandwidth); the probe phase then runs
as a discrete-event simulation of the morsel dispatcher — one morsel at
a time for CPU workers, latency-amortizing batches for GPUs — which
adds the end-of-input skew and batching effects of Section 6.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.costmodel.access import (
    AccessProfile,
    atomic_stream,
    random_stream,
    seq_stream,
)
from repro.costmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.costmodel.model import CostModel, PhaseCost
from repro.core.hashtable import create_hash_table
from repro.data.relation import Relation
from repro.exec import (
    DEFAULT_EXEC_MORSEL_TUPLES,
    DEFAULT_WORKERS,
    check_backend,
    execute_build,
    execute_probe,
    make_executor,
)
from repro.hardware.cache import HotSetProfile
from repro.hardware.processor import Gpu
from repro.hardware.topology import Machine
from repro.memory.allocator import OutOfMemoryError
from repro.obs import Observability
from repro.obs.trace import Timeline
from repro.plan import (
    MorselWorker,
    PhaseSpec,
    Plan,
    PlanExecutor,
    Surcharge,
    WorkerLoad,
    concurrent_phase,
    morsel_phase,
    priced_phase,
)

STRATEGIES = ("het", "gpu+het")


@dataclass
class CoopResult:
    """Functional result plus simulated performance of a cooperative join."""

    matches: int
    aggregate: int
    strategy: str
    build_seconds: float
    probe_seconds: float
    modeled_tuples: int
    worker_rates: Dict[str, float]
    worker_shares: Dict[str, float]
    timeline: Timeline
    workers: Tuple[str, ...]
    #: aggregate per-phase costs (occupancy summed across workers at
    #: their solved shares) — the same shape single-processor joins
    #: report, so run manifests can treat both uniformly.
    build_cost: Optional[PhaseCost] = None
    probe_cost: Optional[PhaseCost] = None

    @property
    def runtime(self) -> float:
        return self.build_seconds + self.probe_seconds

    @property
    def throughput_tuples(self) -> float:
        if self.runtime == 0:
            return float("inf")
        return self.modeled_tuples / self.runtime

    @property
    def throughput_gtuples(self) -> float:
        return self.throughput_tuples / 1e9

    def __str__(self) -> str:
        return (
            f"CoopResult({self.strategy}: {self.throughput_gtuples:.2f} "
            f"G Tuples/s, workers={self.workers})"
        )


class CoopJoin:
    """Cooperative NOPA join across heterogeneous processors.

    Args:
        machine: the simulated machine (must have a coherent GPU link for
            the shared-table Het strategy).
        strategy: ``het`` or ``gpu+het``.
        morsel_tuples: dispatcher morsel size (modeled tuples) of the
            *simulated* probe-phase dispatcher.
        gpu_batch_morsels: morsels per GPU batch; ``None`` auto-tunes.
        backend: ``serial`` | ``threads`` | ``processes`` — how the
            functional build and probe execute on the host.  Results and
            TableStats are identical across backends; the simulated Het
            schedule is priced from the same counters regardless.
        exec_workers: worker count for the parallel backends.
        exec_morsel_tuples: *executed*-tuple morsel size for the parallel
            backends (unrelated to the modeled ``morsel_tuples``).
        shards: key-space shard count for the build table (power of
            two); ``shards > 1`` makes the build contention-free for
            every scheme (see :mod:`repro.core.hashtable.sharded`).
    """

    def __init__(
        self,
        machine: Machine,
        strategy: str = "het",
        calibration: Calibration = DEFAULT_CALIBRATION,
        morsel_tuples: int = 1 << 22,
        gpu_batch_morsels: Optional[int] = None,
        hash_scheme: str = "perfect",
        obs: Optional[Observability] = None,
        backend: str = "serial",
        exec_workers: int = DEFAULT_WORKERS,
        exec_morsel_tuples: int = DEFAULT_EXEC_MORSEL_TUPLES,
        shards: int = 1,
    ) -> None:
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; valid: {', '.join(STRATEGIES)}"
            )
        self.machine = machine
        self.strategy = strategy
        self.calibration = calibration
        self.obs = obs if obs is not None else Observability.create()
        self.cost_model = CostModel(machine, calibration, obs=self.obs)
        self.morsel_tuples = morsel_tuples
        self.gpu_batch_morsels = gpu_batch_morsels
        self.hash_scheme = hash_scheme
        self.backend = check_backend(backend)
        self.exec_workers = exec_workers
        self.exec_morsel_tuples = exec_morsel_tuples
        self.shards = shards
        self.last_executor = None

    # ------------------------------------------------------------------
    # Placement per strategy
    # ------------------------------------------------------------------
    def _shared_table_region(self, workers: Tuple[str, ...]) -> str:
        """Het: the shared table lives in the CPU memory nearest the GPU.

        "We avoid our hybrid hash table optimization and store the hash
        table in CPU memory ... we avoid slowing down CPU processing
        through remote GPU memory accesses" (Section 6.2).
        """
        gpus = [w for w in workers if isinstance(self.machine.processor(w), Gpu)]
        anchor = gpus[0] if gpus else workers[0]
        return self.machine.nearest_cpu_memory(anchor).name

    def _local_table_region(self, worker: str) -> str:
        """GPU+Het: every worker probes a copy in its local memory."""
        return self.machine.processor(worker).local_memory.name

    # ------------------------------------------------------------------
    # Per-worker profiles
    # ------------------------------------------------------------------
    def _is_gpu(self, worker: str) -> bool:
        return isinstance(self.machine.processor(worker), Gpu)

    def _build_profile(
        self,
        worker: str,
        r: Relation,
        table_region: str,
        table_bytes: float,
        entry_bytes: float,
        contended: bool,
    ) -> AccessProfile:
        is_gpu = self._is_gpu(worker)
        accesses_per_tuple = 1.0 if is_gpu else 2.0
        label = "ht insert [contended]" if contended else "ht insert"
        work = self.calibration.join_work_per_tuple["gpu" if is_gpu else "cpu"]
        return AccessProfile(
            streams=[
                seq_stream(worker, r.location, r.modeled_bytes, "read R"),
                atomic_stream(
                    worker,
                    table_region,
                    r.modeled_tuples * accesses_per_tuple,
                    entry_bytes,
                    working_set_bytes=table_bytes,
                    label=label,
                ),
            ],
            compute_tuples=r.modeled_tuples * work,
            label=f"build[{worker}]",
        )

    def _probe_profile(
        self,
        worker: str,
        s: Relation,
        table_region: str,
        table_bytes: float,
        key_bytes: float,
        accesses_per_tuple: float,
        lines_loaded: float,
        hot_set: Optional[HotSetProfile],
    ) -> AccessProfile:
        is_gpu = self._is_gpu(worker)
        work = self.calibration.join_work_per_tuple["gpu" if is_gpu else "cpu"]
        stream_bytes = s.modeled_tuples * (
            s.key_bytes + s.payload_bytes * lines_loaded
        )
        return AccessProfile(
            streams=[
                seq_stream(worker, s.location, stream_bytes, "read S"),
                random_stream(
                    worker,
                    table_region,
                    s.modeled_tuples * accesses_per_tuple,
                    key_bytes,
                    working_set_bytes=table_bytes,
                    hot_set=hot_set,
                    label="ht probe",
                ),
            ],
            compute_tuples=s.modeled_tuples * work,
            label=f"probe[{worker}]",
        )

    # ------------------------------------------------------------------
    # Plan compilation
    # ------------------------------------------------------------------
    def build_phase_spec(
        self,
        r: Relation,
        workers: Tuple[str, ...],
        table_bytes: float,
        entry_bytes: float,
    ) -> Tuple[PhaseSpec, Dict[str, str]]:
        """Compile the build phase; returns (spec, worker -> probe region)."""
        span_attrs = {"strategy": self.strategy}
        if self.strategy == "het":
            region = self._shared_table_region(workers)
            contended = len(workers) > 1
            loads = {
                worker: WorkerLoad(
                    self._build_profile(
                        worker, r, region, table_bytes, entry_bytes, contended
                    ),
                    float(r.modeled_tuples),
                )
                for worker in workers
            }
            spec = concurrent_phase(
                "build",
                loads,
                shared_units=float(r.modeled_tuples),
                claims=tuple(workers),
                span_worker=",".join(workers),
                span_units=float(r.modeled_tuples),
                span_attrs=span_attrs,
            )
            return spec, {worker: region for worker in workers}

        # gpu+het: the GPU builds locally, then broadcasts the table.
        # Every worker holds a private copy, so the table must fit the
        # smallest GPU memory (this is the "small build-side relations"
        # special case of Section 6.2).
        gpus = [w for w in workers if self._is_gpu(w)]
        if not gpus:
            raise ValueError("gpu+het requires at least one GPU worker")
        for worker in gpus:
            capacity = self.machine.processor(worker).local_memory.capacity
            if table_bytes > capacity:
                raise OutOfMemoryError(
                    f"gpu+het replicates the {table_bytes}-byte hash table "
                    f"to every processor, but it exceeds {worker}'s memory; "
                    "use the Het strategy for large build sides"
                )
        builder = gpus[0]
        build_region = self._local_table_region(builder)
        profile = self._build_profile(
            builder, r, build_region, table_bytes, entry_bytes, contended=False
        )
        # Synchronous copy of the finished table to each other worker's
        # local memory over the builder's link (Figure 9b, step 2).
        others = [w for w in workers if w != builder]
        copy_targets = {self._local_table_region(w) for w in others}
        surcharges: Tuple[Surcharge, ...] = ()
        if copy_targets:
            link = self.machine.gpu_link(builder)
            copy_bw = link.spec.seq_bw * self.calibration.ht_copy_bandwidth_factor
            copy_seconds = len(copy_targets) * table_bytes / copy_bw
            surcharges = (
                Surcharge(copy_seconds, f"link:{link.name}", "ht broadcast"),
            )
        spec = priced_phase(
            "build",
            profile,
            surcharges=surcharges,
            claims=tuple(workers),
            span_worker=",".join(workers),
            span_units=float(r.modeled_tuples),
            span_attrs=span_attrs,
        )
        return spec, {w: self._local_table_region(w) for w in workers}

    def probe_phase_spec(
        self,
        s: Relation,
        workers: Tuple[str, ...],
        regions: Dict[str, str],
        table_bytes: float,
        key_bytes: float,
        accesses_per_tuple: float,
        lines_loaded: float,
        hot_set: Optional[HotSetProfile],
        matches: int = 0,
    ) -> PhaseSpec:
        """Compile the morsel-dispatched cooperative probe phase."""
        loads = {}
        morsel_workers = {}
        for worker in workers:
            profile = self._probe_profile(
                worker,
                s,
                regions[worker],
                table_bytes,
                key_bytes,
                accesses_per_tuple,
                lines_loaded,
                hot_set,
            )
            loads[worker] = WorkerLoad(profile, float(s.modeled_tuples))
            if self._is_gpu(worker):
                morsel_workers[worker] = MorselWorker(
                    dispatch_latency=self.calibration.gpu_batch_dispatch_latency,
                    batch_morsels=self.gpu_batch_morsels,
                )
            else:
                morsel_workers[worker] = MorselWorker(
                    dispatch_latency=self.calibration.cpu_morsel_dispatch_latency,
                    batch_morsels=1,
                )
        return morsel_phase(
            "probe",
            loads,
            shared_units=float(s.modeled_tuples),
            morsel_tuples=self.morsel_tuples,
            morsel_workers=morsel_workers,
            deps=("build",),
            claims=tuple(workers),
            span_worker=",".join(workers),
            span_units=float(s.modeled_tuples),
            span_attrs={"strategy": self.strategy},
            annotations={"matches": matches},
        )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(
        self,
        r: Relation,
        s: Relation,
        workers: Tuple[str, ...] = ("cpu0", "gpu0"),
        hot_set: Optional[HotSetProfile] = None,
    ) -> CoopResult:
        """Execute the cooperative join and price it on the machine."""
        if not workers:
            raise ValueError("need at least one worker")
        for worker in workers:
            self.machine.processor(worker)  # validate names early
        if self.strategy == "het" and len(workers) > 1:
            # A shared *mutable* hash table needs system-wide atomics,
            # which only cache-coherent interconnects provide (L3 /
            # Section 3: PCI-e lacks them).
            gpu_workers = [w for w in workers if self._is_gpu(w)]
            for worker in gpu_workers:
                link = self.machine.gpu_link(worker)
                if not link.spec.cache_coherent:
                    raise ValueError(
                        f"the Het strategy shares a mutable hash table and "
                        f"requires a cache-coherent interconnect; {worker}'s "
                        f"{link.spec.name} is not coherent — use 'gpu+het' "
                        "or single-processor execution"
                    )

        # Functional execution: one shared table, full probe.
        table = create_hash_table(
            self.hash_scheme,
            r.executed_tuples,
            r.key.dtype,
            r.payload.dtype,
            shards=self.shards,
        )
        executor = make_executor(
            self.backend, self.exec_workers, self.exec_morsel_tuples, name="coop"
        )
        self.last_executor = executor
        execute_build(table, r.key, r.payload, executor)
        found, values = execute_probe(table, s.key, executor)
        matches = int(found.sum())
        aggregate = int(values[found].astype(np.int64).sum())
        lines_loaded = _line_fraction(found, s.payload_bytes)

        table_bytes = table.modeled_bytes(r.modeled_tuples)
        accesses_per_tuple = (
            table.stats.lookup_probes + table.stats.value_reads
        ) / max(1, table.stats.lookups)

        build_spec, regions = self.build_phase_spec(
            r, workers, table_bytes, table.entry_bytes
        )
        probe_spec = self.probe_phase_spec(
            s,
            workers,
            regions,
            table_bytes,
            table.keys.dtype.itemsize,
            accesses_per_tuple,
            lines_loaded,
            hot_set,
            matches=matches,
        )
        plan = Plan([build_spec, probe_spec], label=f"coop[{self.strategy}]")
        executed = PlanExecutor(self.cost_model).execute(plan)
        build_out = executed.outcomes["build"]
        probe_out = executed.outcomes["probe"]
        assert probe_out.timeline is not None
        return CoopResult(
            matches=matches,
            aggregate=aggregate,
            strategy=self.strategy,
            build_seconds=build_out.cost.seconds,
            probe_seconds=probe_out.cost.seconds,
            modeled_tuples=r.modeled_tuples + s.modeled_tuples,
            worker_rates=probe_out.rates,
            worker_shares=probe_out.shares,
            timeline=probe_out.timeline,
            workers=tuple(workers),
            build_cost=build_out.cost,
            probe_cost=probe_out.cost,
        )


def _line_fraction(match_mask: np.ndarray, payload_bytes: int) -> float:
    """Payload-column line-load fraction (shared with the NOPA join)."""
    from repro.core.join.nopa import payload_line_fraction

    return payload_line_fraction(match_mask, payload_bytes)
