"""Radix-partitioned hash join — the paper's CPU baseline.

"As a CPU baseline, we use the radix partitioned, multi-core hash join
implementation ('PRO') provided by Barthels et al.  We modify the
baseline to use our perfect hash function, thus transforming the PRO
join into a PRA join" (Section 7.1), tuned with 12 radix bits, huge
pages, SMT and software write-combine (SWWC) buffers.

The functional layer really partitions both relations by the low radix
bits and joins partition pairs with cache-resident sort-probe kernels.
The cost model prices:

* the **partition pass** — one read+write round trip over both
  relations at the calibrated effective partitioning bandwidth (which
  absorbs SWWC flushes and TLB pressure), and
* the **join pass** — re-reading the partitions at memory bandwidth,
  overlapping with the per-core cache-resident join rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.costmodel.access import AccessProfile, seq_stream
from repro.costmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.costmodel.model import CostModel, PhaseCost
from repro.data.relation import Relation
from repro.hardware.processor import Cpu
from repro.hardware.topology import Machine
from repro.obs import Observability
from repro.plan import Plan, PlanExecutor, fixed_phase, priced_phase
from repro.utils.units import GIB


@dataclass
class RadixJoinResult:
    """Functional result plus simulated performance."""

    matches: int
    aggregate: int
    partition_cost: PhaseCost
    join_cost: PhaseCost
    modeled_tuples: int
    partitions: int
    max_partition_skew: float
    processor: str

    @property
    def runtime(self) -> float:
        return self.partition_cost.seconds + self.join_cost.seconds

    @property
    def throughput_tuples(self) -> float:
        if self.runtime == 0:
            return float("inf")
        return self.modeled_tuples / self.runtime

    @property
    def throughput_gtuples(self) -> float:
        return self.throughput_tuples / 1e9


class RadixJoin:
    """The PRA/PRO baseline (CPU only).

    Args:
        radix_bits: modeled fan-out is ``2**radix_bits`` (paper: 12).
        executed_radix_bits: fan-out used by the functional layer, kept
            smaller so tiny executed relations still get non-trivial
            partitions; defaults to ``min(radix_bits, 8)``.
    """

    def __init__(
        self,
        machine: Machine,
        radix_bits: int = 12,
        executed_radix_bits: Optional[int] = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
        obs: Optional[Observability] = None,
    ) -> None:
        if not 1 <= radix_bits <= 20:
            raise ValueError(f"radix bits out of range: {radix_bits}")
        self.machine = machine
        self.obs = obs if obs is not None else Observability.create()
        self.cost_model = CostModel(machine, calibration, obs=self.obs)
        self.calibration = calibration
        self.radix_bits = radix_bits
        self.executed_radix_bits = (
            executed_radix_bits
            if executed_radix_bits is not None
            else min(radix_bits, 8)
        )

    # ------------------------------------------------------------------
    # Functional execution
    # ------------------------------------------------------------------
    @staticmethod
    def _partition(
        keys: np.ndarray, payloads: np.ndarray, bits: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Stable radix partition; returns (keys, payloads, boundaries)."""
        fanout = 1 << bits
        buckets = (keys.astype(np.int64)) & (fanout - 1)
        order = np.argsort(buckets, kind="stable")
        sorted_buckets = buckets[order]
        boundaries = np.searchsorted(sorted_buckets, np.arange(fanout + 1))
        return keys[order], payloads[order], boundaries

    def _execute(self, r: Relation, s: Relation) -> Tuple[int, int, float]:
        bits = self.executed_radix_bits
        r_keys, r_vals, r_bounds = self._partition(r.key, r.payload, bits)
        s_keys, _, s_bounds = self._partition(s.key, s.payload, bits)
        matches = 0
        aggregate = 0
        fanout = 1 << bits
        largest = 0
        for p in range(fanout):
            rk = r_keys[r_bounds[p] : r_bounds[p + 1]]
            rv = r_vals[r_bounds[p] : r_bounds[p + 1]]
            sk = s_keys[s_bounds[p] : s_bounds[p + 1]]
            largest = max(largest, len(rk) + len(sk))
            if len(rk) == 0 or len(sk) == 0:
                continue
            order = np.argsort(rk, kind="stable")
            rk_sorted = rk[order]
            rv_sorted = rv[order]
            pos = np.searchsorted(rk_sorted, sk)
            pos_clamped = np.minimum(pos, len(rk_sorted) - 1)
            hit = rk_sorted[pos_clamped] == sk
            matches += int(hit.sum())
            aggregate += int(rv_sorted[pos_clamped[hit]].astype(np.int64).sum())
        total = r.executed_tuples + s.executed_tuples
        avg = total / fanout if fanout else 0
        skew = largest / avg if avg else 0.0
        return matches, aggregate, skew

    # ------------------------------------------------------------------
    # Cost assembly
    # ------------------------------------------------------------------
    def _partition_profile(
        self, r: Relation, s: Relation, processor: str
    ) -> AccessProfile:
        proc = self.machine.processor(processor)
        memory = proc.local_memory
        partition_bw = self.calibration.partition_bandwidth.get(
            proc.spec.name, 10 * GIB
        )
        factor = min(1.0, partition_bw / memory.spec.seq_bw)
        total_bytes = r.modeled_bytes + s.modeled_bytes
        return AccessProfile(
            streams=[
                seq_stream(
                    processor,
                    memory.name,
                    total_bytes,
                    label="radix partition r+w",
                    bandwidth_factor=factor,
                )
            ],
            label="partition",
            processor=processor,
        )

    def _join_cost(self, r: Relation, s: Relation, processor: str) -> PhaseCost:
        proc = self.machine.processor(processor)
        if not isinstance(proc, Cpu):
            raise ValueError("the radix baseline runs on CPUs only")
        memory = proc.local_memory
        total_bytes = r.modeled_bytes + s.modeled_bytes
        reread = total_bytes / memory.spec.seq_bw
        tuples = r.modeled_tuples + s.modeled_tuples
        compute = tuples / (
            proc.spec.cores * self.calibration.partition_join_rate_per_core
        )
        seconds = max(reread, compute)
        bottleneck = (
            f"mem:{memory.name}" if reread >= compute else f"compute:{processor}"
        )
        return PhaseCost(
            seconds=seconds,
            bottleneck=bottleneck,
            occupancy={f"mem:{memory.name}": reread, f"compute:{processor}": compute},
            label="join",
        )

    # ------------------------------------------------------------------
    def compile_plan(self, r: Relation, s: Relation, processor: str) -> Plan:
        """Compile the two-pass baseline into a phase plan.

        The partition pass is priced from its access profile; the join
        pass is a fixed cost (max of re-read bandwidth and the per-core
        cache-resident join rate, neither of which is a stream model).
        """
        tuples = float(r.modeled_tuples + s.modeled_tuples)
        partition = priced_phase(
            "partition",
            self._partition_profile(r, s, processor),
            claims=(processor,),
            span_worker=processor,
            span_units=tuples,
        )
        join = fixed_phase(
            "join",
            self._join_cost(r, s, processor),
            deps=("partition",),
            claims=(processor,),
            span_worker=processor,
            span_units=tuples,
        )
        return Plan([partition, join], label="radix")

    def run(self, r: Relation, s: Relation, processor: str = "cpu0") -> RadixJoinResult:
        """Partition, join, and price the baseline."""
        proc = self.machine.processor(processor)
        if not isinstance(proc, Cpu):
            raise ValueError("the radix baseline runs on CPUs only")
        matches, aggregate, skew = self._execute(r, s)
        executed = PlanExecutor(self.cost_model).execute(
            self.compile_plan(r, s, processor)
        )
        partition_cost = executed.cost("partition")
        join_cost = executed.cost("join")
        return RadixJoinResult(
            matches=matches,
            aggregate=aggregate,
            partition_cost=partition_cost,
            join_cost=join_cost,
            modeled_tuples=r.modeled_tuples + s.modeled_tuples,
            partitions=1 << self.radix_bits,
            max_partition_skew=skew,
            processor=processor,
        )
