"""Multi-way (star schema) joins — the Section 6.2 extension.

"Our strategy could be extended to multi-way joins (e.g., for a star
schema) by building hash tables on a different processor in parallel,
and then copying all hash tables to all processors."

A :class:`StarJoin` joins one fact relation against several dimension
relations on independent foreign keys.  Execution:

* **build** — each dimension's hash table is built by a processor
  (assigned round-robin over the workers; tables build in parallel),
  then every finished table is broadcast to each worker's local memory
  (GPU+Het generalized).
* **probe** — the fact relation streams through the workers via morsel
  dispatch; every fact tuple probes all dimension tables, and only
  tuples matching *every* dimension survive (conjunctive star query).

The functional layer computes the true survivor count and aggregate;
the performance layer prices k probes per tuple plus the broadcasts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.costmodel.access import AccessProfile, atomic_stream, random_stream, seq_stream
from repro.costmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.costmodel.model import CostModel
from repro.core.hashtable import create_hash_table
from repro.data.relation import Relation
from repro.hardware.processor import Gpu
from repro.hardware.topology import Machine
from repro.memory.allocator import OutOfMemoryError
from repro.sim.resources import solve_concurrent_rates
from repro.utils.units import MIB


@dataclass(frozen=True)
class Dimension:
    """One dimension table plus the fact column that references it."""

    relation: Relation
    fact_key: str  # name of the fact key column referencing this table

    def __post_init__(self) -> None:
        if not self.fact_key:
            raise ValueError("dimension needs the fact key column name")


@dataclass
class StarJoinResult:
    """Functional result plus simulated performance."""

    survivors: int
    aggregate: int
    build_seconds: float
    broadcast_seconds: float
    probe_seconds: float
    modeled_tuples: int
    builder_of: Dict[str, str]
    workers: Tuple[str, ...]

    @property
    def runtime(self) -> float:
        return self.build_seconds + self.broadcast_seconds + self.probe_seconds

    @property
    def throughput_tuples(self) -> float:
        if self.runtime == 0:
            return float("inf")
        return self.modeled_tuples / self.runtime

    @property
    def throughput_gtuples(self) -> float:
        return self.throughput_tuples / 1e9


class StarJoin:
    """Join a fact relation against several dimensions (Section 6.2)."""

    def __init__(
        self,
        machine: Machine,
        calibration: Calibration = DEFAULT_CALIBRATION,
        hash_scheme: str = "perfect",
        gpu_reserve: int = 512 * MIB,
    ) -> None:
        self.machine = machine
        self.calibration = calibration
        self.cost_model = CostModel(machine, calibration)
        self.hash_scheme = hash_scheme
        self.gpu_reserve = gpu_reserve

    # ------------------------------------------------------------------
    def _validate_capacity(
        self, dimensions: Sequence[Dimension], workers: Sequence[str]
    ) -> None:
        """All dimension tables (replicated) must fit every GPU worker."""
        total = sum(
            d.relation.modeled_tuples * d.relation.tuple_bytes
            for d in dimensions
        )
        for worker in workers:
            proc = self.machine.processor(worker)
            if isinstance(proc, Gpu):
                available = proc.local_memory.capacity - self.gpu_reserve
                if total > available:
                    raise OutOfMemoryError(
                        f"replicating {total} bytes of dimension tables "
                        f"exceeds {worker}'s memory; reduce dimensions or "
                        "use the Het strategy"
                    )

    def _is_gpu(self, worker: str) -> bool:
        return isinstance(self.machine.processor(worker), Gpu)

    # ------------------------------------------------------------------
    def _build_phase(
        self, dimensions: Sequence[Dimension], workers: Sequence[str]
    ) -> Tuple[float, float, Dict[str, str]]:
        """Parallel builds (round-robin) + broadcast of every table.

        Returns (build seconds, broadcast seconds, fact_key -> builder).
        """
        builder_of: Dict[str, str] = {}
        demands: Dict[str, Dict[str, float]] = {}
        tuples_of: Dict[str, float] = {}
        for i, dimension in enumerate(dimensions):
            builder = workers[i % len(workers)]
            builder_of[dimension.fact_key] = builder
            rel = dimension.relation
            table_bytes = rel.modeled_tuples * rel.tuple_bytes
            is_gpu = self._is_gpu(builder)
            accesses = rel.modeled_tuples * (1.0 if is_gpu else 2.0)
            local = self.machine.processor(builder).local_memory.name
            profile = AccessProfile(
                streams=[
                    seq_stream(builder, rel.location, rel.modeled_bytes, "read dim"),
                    atomic_stream(
                        builder, local, accesses, rel.tuple_bytes,
                        working_set_bytes=table_bytes, label="ht insert",
                    ),
                ],
                compute_tuples=rel.modeled_tuples
                * self.calibration.join_work_per_tuple["gpu" if is_gpu else "cpu"],
                label=f"build[{dimension.fact_key}]",
                processor=builder,
            )
            key = f"{builder}#{dimension.fact_key}"
            demands[key] = self.cost_model.occupancy_per_unit(
                profile, rel.modeled_tuples
            )
            tuples_of[key] = rel.modeled_tuples
        rates = solve_concurrent_rates(demands)
        build_seconds = max(
            tuples_of[key] / rates[key] for key in demands
        )
        # Broadcast every table to every *other* worker over the
        # builder's link.
        broadcast = 0.0
        for dimension in dimensions:
            builder = builder_of[dimension.fact_key]
            rel = dimension.relation
            table_bytes = rel.modeled_tuples * rel.tuple_bytes
            others = len(workers) - 1
            if others == 0:
                continue
            if self._is_gpu(builder):
                link_bw = self.machine.gpu_link(builder).spec.seq_bw
            else:
                link_bw = self.machine.processor(builder).local_memory.spec.seq_bw
            broadcast += others * table_bytes / (
                link_bw * self.calibration.ht_copy_bandwidth_factor
            )
        return build_seconds, broadcast, builder_of

    def _probe_phase(
        self,
        fact_columns: Dict[str, np.ndarray],
        fact_location: str,
        modeled_fact: int,
        dimensions: Sequence[Dimension],
        workers: Sequence[str],
        survival_per_dim: List[float],
    ) -> float:
        demands = {}
        for worker in workers:
            is_gpu = self._is_gpu(worker)
            local = self.machine.processor(worker).local_memory.name
            streams = [
                seq_stream(
                    worker,
                    fact_location,
                    modeled_fact * sum(c.dtype.itemsize for c in fact_columns.values()),
                    "read fact",
                )
            ]
            alive = 1.0
            for dimension, survival in zip(dimensions, survival_per_dim):
                rel = dimension.relation
                table_bytes = rel.modeled_tuples * rel.tuple_bytes
                # Short-circuit: only tuples still alive probe the next
                # dimension; each probe is key + (on match) value.
                accesses = modeled_fact * alive * (1.0 + survival)
                streams.append(
                    random_stream(
                        worker, local, accesses, rel.key_bytes,
                        working_set_bytes=table_bytes, label="dim probe",
                    )
                )
                alive *= survival
            work = self.calibration.join_work_per_tuple["gpu" if is_gpu else "cpu"]
            profile = AccessProfile(
                streams=streams,
                compute_tuples=modeled_fact * work * len(dimensions),
                label=f"probe[{worker}]",
                processor=worker,
            )
            demands[worker] = self.cost_model.occupancy_per_unit(
                profile, modeled_fact
            )
        rates = solve_concurrent_rates(demands)
        combined = sum(rates.values())
        return modeled_fact / combined if combined > 0 else 0.0

    # ------------------------------------------------------------------
    def run(
        self,
        fact: Dict[str, np.ndarray],
        dimensions: Sequence[Dimension],
        measure: Optional[np.ndarray] = None,
        workers: Sequence[str] = ("cpu0", "gpu0"),
        modeled_fact: Optional[int] = None,
        fact_location: str = "cpu0-mem",
    ) -> StarJoinResult:
        """Execute the star join.

        Args:
            fact: fact-table foreign-key columns, keyed by name; every
                dimension's ``fact_key`` must be present.
            dimensions: the dimension tables.
            measure: optional fact measure column to aggregate over the
                surviving tuples (defaults to counting matched dimension
                payloads).
            modeled_fact: paper-scale fact cardinality (defaults to the
                executed row count).
        """
        if not dimensions:
            raise ValueError("star join needs at least one dimension")
        rows = {len(col) for col in fact.values()}
        if len(rows) != 1:
            raise ValueError("ragged fact columns")
        executed_fact = rows.pop()
        modeled_fact = modeled_fact or executed_fact
        for dimension in dimensions:
            if dimension.fact_key not in fact:
                raise ValueError(
                    f"fact table lacks key column {dimension.fact_key!r}"
                )
        self._validate_capacity(dimensions, workers)

        # Functional execution: conjunctive probe with short-circuiting.
        alive = np.ones(executed_fact, dtype=bool)
        payload_sum = np.zeros(executed_fact, dtype=np.int64)
        survival_per_dim: List[float] = []
        for dimension in dimensions:
            rel = dimension.relation
            table = create_hash_table(
                self.hash_scheme, rel.executed_tuples, rel.key.dtype,
                rel.payload.dtype,
            )
            table.insert_batch(rel.key, rel.payload)
            keys = fact[dimension.fact_key]
            found = np.zeros(executed_fact, dtype=bool)
            values = np.zeros(executed_fact, dtype=rel.payload.dtype)
            if alive.any():
                sub_found, sub_values = table.lookup_batch(keys[alive])
                found[alive] = sub_found
                values_alive = np.zeros(int(alive.sum()), dtype=rel.payload.dtype)
                values_alive[sub_found] = sub_values[sub_found]
                values[alive] = values_alive
            before = int(alive.sum())
            alive &= found
            survival_per_dim.append(
                (int(alive.sum()) / before) if before else 0.0
            )
            payload_sum[alive] += values[alive].astype(np.int64)
        survivors = int(alive.sum())
        if measure is not None:
            aggregate = int(measure[alive].astype(np.int64).sum())
        else:
            aggregate = int(payload_sum[alive].sum())

        build_seconds, broadcast_seconds, builder_of = self._build_phase(
            dimensions, workers
        )
        probe_seconds = self._probe_phase(
            fact,
            fact_location,
            modeled_fact,
            dimensions,
            workers,
            survival_per_dim,
        )
        modeled_tuples = modeled_fact + sum(
            d.relation.modeled_tuples for d in dimensions
        )
        return StarJoinResult(
            survivors=survivors,
            aggregate=aggregate,
            build_seconds=build_seconds,
            broadcast_seconds=broadcast_seconds,
            probe_seconds=probe_seconds,
            modeled_tuples=modeled_tuples,
            builder_of=builder_of,
            workers=tuple(workers),
        )
