"""Multi-way (star schema) joins — the Section 6.2 extension.

"Our strategy could be extended to multi-way joins (e.g., for a star
schema) by building hash tables on a different processor in parallel,
and then copying all hash tables to all processors."

A :class:`StarJoin` joins one fact relation against several dimension
relations on independent foreign keys.  Execution:

* **build** — each dimension's hash table is built by a processor
  (assigned round-robin over the workers; tables build in parallel),
  then every finished table is broadcast to each worker's local memory
  (GPU+Het generalized).
* **probe** — the fact relation streams through the workers via morsel
  dispatch; every fact tuple probes all dimension tables, and only
  tuples matching *every* dimension survive (conjunctive star query).

The functional layer computes the true survivor count and aggregate;
the performance layer prices k probes per tuple plus the broadcasts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.costmodel.access import AccessProfile, atomic_stream, random_stream, seq_stream
from repro.costmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.costmodel.model import CostModel, PhaseCost
from repro.core.hashtable import create_hash_table
from repro.data.relation import Relation
from repro.hardware.processor import Gpu
from repro.hardware.topology import Machine
from repro.memory.allocator import OutOfMemoryError
from repro.obs import Observability
from repro.plan import (
    PhaseSpec,
    Plan,
    PlanExecutor,
    WorkerLoad,
    concurrent_phase,
    fixed_phase,
)
from repro.utils.units import MIB


@dataclass(frozen=True)
class Dimension:
    """One dimension table plus the fact column that references it."""

    relation: Relation
    fact_key: str  # name of the fact key column referencing this table

    def __post_init__(self) -> None:
        if not self.fact_key:
            raise ValueError("dimension needs the fact key column name")


@dataclass
class StarJoinResult:
    """Functional result plus simulated performance."""

    survivors: int
    aggregate: int
    build_seconds: float
    broadcast_seconds: float
    probe_seconds: float
    modeled_tuples: int
    builder_of: Dict[str, str]
    workers: Tuple[str, ...]

    @property
    def runtime(self) -> float:
        return self.build_seconds + self.broadcast_seconds + self.probe_seconds

    @property
    def throughput_tuples(self) -> float:
        if self.runtime == 0:
            return float("inf")
        return self.modeled_tuples / self.runtime

    @property
    def throughput_gtuples(self) -> float:
        return self.throughput_tuples / 1e9


class StarJoin:
    """Join a fact relation against several dimensions (Section 6.2)."""

    def __init__(
        self,
        machine: Machine,
        calibration: Calibration = DEFAULT_CALIBRATION,
        hash_scheme: str = "perfect",
        gpu_reserve: int = 512 * MIB,
        obs: Optional[Observability] = None,
    ) -> None:
        self.machine = machine
        self.calibration = calibration
        self.obs = obs if obs is not None else Observability.create()
        self.cost_model = CostModel(machine, calibration, obs=self.obs)
        self.hash_scheme = hash_scheme
        self.gpu_reserve = gpu_reserve

    # ------------------------------------------------------------------
    def _validate_capacity(
        self, dimensions: Sequence[Dimension], workers: Sequence[str]
    ) -> None:
        """All dimension tables (replicated) must fit every GPU worker."""
        total = sum(
            d.relation.modeled_tuples * d.relation.tuple_bytes
            for d in dimensions
        )
        for worker in workers:
            proc = self.machine.processor(worker)
            if isinstance(proc, Gpu):
                available = proc.local_memory.capacity - self.gpu_reserve
                if total > available:
                    raise OutOfMemoryError(
                        f"replicating {total} bytes of dimension tables "
                        f"exceeds {worker}'s memory; reduce dimensions or "
                        "use the Het strategy"
                    )

    def _is_gpu(self, worker: str) -> bool:
        return isinstance(self.machine.processor(worker), Gpu)

    # ------------------------------------------------------------------
    # Plan compilation
    # ------------------------------------------------------------------
    def build_phase_spec(
        self, dimensions: Sequence[Dimension], workers: Sequence[str]
    ) -> Tuple[PhaseSpec, Dict[str, str]]:
        """Parallel builds (round-robin over the workers).

        Each dimension's build is one load in a barrier-mode concurrent
        phase (the phase ends when the slowest builder finishes).
        Returns (spec, fact_key -> builder).
        """
        builder_of: Dict[str, str] = {}
        loads: Dict[str, WorkerLoad] = {}
        for i, dimension in enumerate(dimensions):
            builder = workers[i % len(workers)]
            builder_of[dimension.fact_key] = builder
            rel = dimension.relation
            table_bytes = rel.modeled_tuples * rel.tuple_bytes
            is_gpu = self._is_gpu(builder)
            accesses = rel.modeled_tuples * (1.0 if is_gpu else 2.0)
            local = self.machine.processor(builder).local_memory.name
            profile = AccessProfile(
                streams=[
                    seq_stream(builder, rel.location, rel.modeled_bytes, "read dim"),
                    atomic_stream(
                        builder, local, accesses, rel.tuple_bytes,
                        working_set_bytes=table_bytes, label="ht insert",
                    ),
                ],
                compute_tuples=rel.modeled_tuples
                * self.calibration.join_work_per_tuple["gpu" if is_gpu else "cpu"],
                label=f"build[{dimension.fact_key}]",
                processor=builder,
            )
            key = f"{builder}#{dimension.fact_key}"
            loads[key] = WorkerLoad(profile, float(rel.modeled_tuples))
        spec = concurrent_phase(
            "build",
            loads,
            claims=tuple(workers),
            span_worker=",".join(workers),
        )
        return spec, builder_of

    def broadcast_phase_spec(
        self,
        dimensions: Sequence[Dimension],
        workers: Sequence[str],
        builder_of: Dict[str, str],
    ) -> PhaseSpec:
        """Broadcast every finished table to every *other* worker over
        the builder's link (a fixed, sequential copy cost)."""
        broadcast = 0.0
        occupancy: Dict[str, float] = {}
        for dimension in dimensions:
            builder = builder_of[dimension.fact_key]
            rel = dimension.relation
            table_bytes = rel.modeled_tuples * rel.tuple_bytes
            others = len(workers) - 1
            if others == 0:
                continue
            if self._is_gpu(builder):
                link = self.machine.gpu_link(builder)
                link_bw = link.spec.seq_bw
                resource = f"link:{link.name}"
            else:
                memory = self.machine.processor(builder).local_memory
                link_bw = memory.spec.seq_bw
                resource = f"mem:{memory.name}"
            seconds = others * table_bytes / (
                link_bw * self.calibration.ht_copy_bandwidth_factor
            )
            broadcast += seconds
            occupancy[resource] = occupancy.get(resource, 0.0) + seconds
        cost = PhaseCost(
            seconds=broadcast,
            bottleneck=(
                max(occupancy, key=lambda res: occupancy[res])
                if occupancy
                else "(none)"
            ),
            occupancy=occupancy,
            label="broadcast",
        )
        return fixed_phase(
            "broadcast",
            cost,
            deps=("build",),
            claims=tuple(workers),
            span_worker=",".join(workers),
        )

    def probe_phase_spec(
        self,
        fact_columns: Dict[str, np.ndarray],
        fact_location: str,
        modeled_fact: int,
        dimensions: Sequence[Dimension],
        workers: Sequence[str],
        survival_per_dim: List[float],
    ) -> PhaseSpec:
        """Compile the all-workers conjunctive probe (pool mode)."""
        loads: Dict[str, WorkerLoad] = {}
        for worker in workers:
            is_gpu = self._is_gpu(worker)
            local = self.machine.processor(worker).local_memory.name
            streams = [
                seq_stream(
                    worker,
                    fact_location,
                    modeled_fact * sum(c.dtype.itemsize for c in fact_columns.values()),
                    "read fact",
                )
            ]
            alive = 1.0
            for dimension, survival in zip(dimensions, survival_per_dim):
                rel = dimension.relation
                table_bytes = rel.modeled_tuples * rel.tuple_bytes
                # Short-circuit: only tuples still alive probe the next
                # dimension; each probe is key + (on match) value.
                accesses = modeled_fact * alive * (1.0 + survival)
                streams.append(
                    random_stream(
                        worker, local, accesses, rel.key_bytes,
                        working_set_bytes=table_bytes, label="dim probe",
                    )
                )
                alive *= survival
            work = self.calibration.join_work_per_tuple["gpu" if is_gpu else "cpu"]
            profile = AccessProfile(
                streams=streams,
                compute_tuples=modeled_fact * work * len(dimensions),
                label=f"probe[{worker}]",
                processor=worker,
            )
            loads[worker] = WorkerLoad(profile, float(modeled_fact))
        return concurrent_phase(
            "probe",
            loads,
            shared_units=float(modeled_fact),
            deps=("broadcast",),
            claims=tuple(workers),
            span_worker=",".join(workers),
            span_units=float(modeled_fact),
        )

    # ------------------------------------------------------------------
    def run(
        self,
        fact: Dict[str, np.ndarray],
        dimensions: Sequence[Dimension],
        measure: Optional[np.ndarray] = None,
        workers: Sequence[str] = ("cpu0", "gpu0"),
        modeled_fact: Optional[int] = None,
        fact_location: str = "cpu0-mem",
    ) -> StarJoinResult:
        """Execute the star join.

        Args:
            fact: fact-table foreign-key columns, keyed by name; every
                dimension's ``fact_key`` must be present.
            dimensions: the dimension tables.
            measure: optional fact measure column to aggregate over the
                surviving tuples (defaults to counting matched dimension
                payloads).
            modeled_fact: paper-scale fact cardinality (defaults to the
                executed row count).
        """
        if not dimensions:
            raise ValueError("star join needs at least one dimension")
        rows = {len(col) for col in fact.values()}
        if len(rows) != 1:
            raise ValueError("ragged fact columns")
        executed_fact = rows.pop()
        modeled_fact = modeled_fact or executed_fact
        for dimension in dimensions:
            if dimension.fact_key not in fact:
                raise ValueError(
                    f"fact table lacks key column {dimension.fact_key!r}"
                )
        self._validate_capacity(dimensions, workers)

        # Functional execution: conjunctive probe with short-circuiting.
        alive = np.ones(executed_fact, dtype=bool)
        payload_sum = np.zeros(executed_fact, dtype=np.int64)
        survival_per_dim: List[float] = []
        for dimension in dimensions:
            rel = dimension.relation
            table = create_hash_table(
                self.hash_scheme, rel.executed_tuples, rel.key.dtype,
                rel.payload.dtype,
            )
            table.insert_batch(rel.key, rel.payload)
            keys = fact[dimension.fact_key]
            found = np.zeros(executed_fact, dtype=bool)
            values = np.zeros(executed_fact, dtype=rel.payload.dtype)
            if alive.any():
                sub_found, sub_values = table.lookup_batch(keys[alive])
                found[alive] = sub_found
                values_alive = np.zeros(int(alive.sum()), dtype=rel.payload.dtype)
                values_alive[sub_found] = sub_values[sub_found]
                values[alive] = values_alive
            before = int(alive.sum())
            alive &= found
            survival_per_dim.append(
                (int(alive.sum()) / before) if before else 0.0
            )
            payload_sum[alive] += values[alive].astype(np.int64)
        survivors = int(alive.sum())
        if measure is not None:
            aggregate = int(measure[alive].astype(np.int64).sum())
        else:
            aggregate = int(payload_sum[alive].sum())

        build_spec, builder_of = self.build_phase_spec(dimensions, workers)
        broadcast_spec = self.broadcast_phase_spec(
            dimensions, workers, builder_of
        )
        probe_spec = self.probe_phase_spec(
            fact,
            fact_location,
            modeled_fact,
            dimensions,
            workers,
            survival_per_dim,
        )
        plan = Plan([build_spec, broadcast_spec, probe_spec], label="star")
        executed = PlanExecutor(self.cost_model).execute(plan)
        modeled_tuples = modeled_fact + sum(
            d.relation.modeled_tuples for d in dimensions
        )
        return StarJoinResult(
            survivors=survivors,
            aggregate=aggregate,
            build_seconds=executed.seconds("build"),
            broadcast_seconds=executed.seconds("broadcast"),
            probe_seconds=executed.seconds("probe"),
            modeled_tuples=modeled_tuples,
            builder_of=builder_of,
            workers=tuple(workers),
        )
