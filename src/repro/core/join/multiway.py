"""Multi-way (star schema) joins — the Section 6.2 extension.

"Our strategy could be extended to multi-way joins (e.g., for a star
schema) by building hash tables on a different processor in parallel,
and then copying all hash tables to all processors."

A :class:`StarJoin` joins one fact relation against several dimension
relations on independent foreign keys.  Execution:

* **build** — each dimension's hash table is built by a processor
  (assigned round-robin over the workers; tables build in parallel),
  then every finished table is broadcast to each worker's local memory
  (GPU+Het generalized).
* **probe** — the fact relation streams through the workers via morsel
  dispatch; every fact tuple probes all dimension tables, and only
  tuples matching *every* dimension survive (conjunctive star query).

The functional layer computes the true survivor count and aggregate;
the performance layer prices k probes per tuple plus the broadcasts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.costmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.costmodel.model import CostModel
from repro.core.hashtable import create_hash_table
from repro.data.relation import Relation
from repro.hardware.processor import Gpu
from repro.hardware.topology import Machine
from repro.logical.algebra import Query, scan
from repro.logical.lower import (
    PhysicalConfig,
    compile_query,
    star_broadcast_phase,
    star_build_phase,
    star_probe_phase,
)
from repro.logical.stats import StarStats
from repro.memory.allocator import OutOfMemoryError
from repro.obs import Observability
from repro.plan import PhaseSpec, PlanExecutor
from repro.utils.units import MIB


@dataclass(frozen=True)
class Dimension:
    """One dimension table plus the fact column that references it."""

    relation: Relation
    fact_key: str  # name of the fact key column referencing this table

    def __post_init__(self) -> None:
        if not self.fact_key:
            raise ValueError("dimension needs the fact key column name")


@dataclass
class StarJoinResult:
    """Functional result plus simulated performance."""

    survivors: int
    aggregate: int
    build_seconds: float
    broadcast_seconds: float
    probe_seconds: float
    modeled_tuples: int
    builder_of: Dict[str, str]
    workers: Tuple[str, ...]

    @property
    def runtime(self) -> float:
        return self.build_seconds + self.broadcast_seconds + self.probe_seconds

    @property
    def throughput_tuples(self) -> float:
        if self.runtime == 0:
            return float("inf")
        return self.modeled_tuples / self.runtime

    @property
    def throughput_gtuples(self) -> float:
        return self.throughput_tuples / 1e9


class StarJoin:
    """Join a fact relation against several dimensions (Section 6.2)."""

    def __init__(
        self,
        machine: Machine,
        calibration: Calibration = DEFAULT_CALIBRATION,
        hash_scheme: str = "perfect",
        gpu_reserve: int = 512 * MIB,
        obs: Optional[Observability] = None,
    ) -> None:
        self.machine = machine
        self.calibration = calibration
        self.obs = obs if obs is not None else Observability.create()
        self.cost_model = CostModel(machine, calibration, obs=self.obs)
        self.hash_scheme = hash_scheme
        self.gpu_reserve = gpu_reserve

    # ------------------------------------------------------------------
    def _validate_capacity(
        self, dimensions: Sequence[Dimension], workers: Sequence[str]
    ) -> None:
        """All dimension tables (replicated) must fit every GPU worker."""
        total = sum(
            d.relation.modeled_tuples * d.relation.tuple_bytes
            for d in dimensions
        )
        for worker in workers:
            proc = self.machine.processor(worker)
            if isinstance(proc, Gpu):
                available = proc.local_memory.capacity - self.gpu_reserve
                if total > available:
                    raise OutOfMemoryError(
                        f"replicating {total} bytes of dimension tables "
                        f"exceeds {worker}'s memory; reduce dimensions or "
                        "use the Het strategy"
                    )

    def _is_gpu(self, worker: str) -> bool:
        return isinstance(self.machine.processor(worker), Gpu)

    # ------------------------------------------------------------------
    # Plan compilation (delegating to the lowering compiler)
    # ------------------------------------------------------------------
    @staticmethod
    def _dim_pairs(
        dimensions: Sequence[Dimension],
    ) -> List[Tuple[Relation, str]]:
        return [(d.relation, d.fact_key) for d in dimensions]

    def build_phase_spec(
        self, dimensions: Sequence[Dimension], workers: Sequence[str]
    ) -> Tuple[PhaseSpec, Dict[str, str]]:
        """Parallel builds (round-robin over the workers).

        Each dimension's build is one load in a barrier-mode concurrent
        phase (the phase ends when the slowest builder finishes).
        Returns (spec, fact_key -> builder).
        """
        return star_build_phase(
            self.cost_model, self._dim_pairs(dimensions), workers
        )

    def broadcast_phase_spec(
        self,
        dimensions: Sequence[Dimension],
        workers: Sequence[str],
        builder_of: Dict[str, str],
    ) -> PhaseSpec:
        """Broadcast every finished table to every *other* worker over
        the builder's link (a fixed, sequential copy cost)."""
        return star_broadcast_phase(
            self.cost_model, self._dim_pairs(dimensions), workers, builder_of
        )

    def probe_phase_spec(
        self,
        fact_columns: Dict[str, np.ndarray],
        fact_location: str,
        modeled_fact: int,
        dimensions: Sequence[Dimension],
        workers: Sequence[str],
        survival_per_dim: List[float],
    ) -> PhaseSpec:
        """Compile the all-workers conjunctive probe (pool mode)."""
        fact_column_bytes = float(
            sum(c.dtype.itemsize for c in fact_columns.values())
        )
        return star_probe_phase(
            self.cost_model,
            fact_column_bytes,
            fact_location,
            modeled_fact,
            self._dim_pairs(dimensions),
            workers,
            survival_per_dim,
        )

    def logical_query(
        self,
        fact: Dict[str, np.ndarray],
        dimensions: Sequence[Dimension],
        modeled_fact: Optional[int] = None,
        fact_location: str = "cpu0-mem",
    ) -> Query:
        """The star join as a logical plan: the fact scan probes one
        hash join per dimension (innermost first), then aggregates the
        first dimension's matched payloads over the survivors."""
        query = scan(
            fact,
            name="fact",
            modeled_rows=modeled_fact,
            location=fact_location,
        )
        for dimension in dimensions:
            query = query.join(
                scan(dimension.relation, name=dimension.fact_key),
                build_key="key",
                probe_key=dimension.fact_key,
                selectivity=None,
                output_prefix=f"{dimension.fact_key}_",
            )
        payload = f"{dimensions[0].fact_key}_payload"
        return query.aggregate(star=(payload, "sum"))

    # ------------------------------------------------------------------
    def run(
        self,
        fact: Dict[str, np.ndarray],
        dimensions: Sequence[Dimension],
        measure: Optional[np.ndarray] = None,
        workers: Sequence[str] = ("cpu0", "gpu0"),
        modeled_fact: Optional[int] = None,
        fact_location: str = "cpu0-mem",
    ) -> StarJoinResult:
        """Execute the star join.

        Args:
            fact: fact-table foreign-key columns, keyed by name; every
                dimension's ``fact_key`` must be present.
            dimensions: the dimension tables.
            measure: optional fact measure column to aggregate over the
                surviving tuples (defaults to counting matched dimension
                payloads).
            modeled_fact: paper-scale fact cardinality (defaults to the
                executed row count).
        """
        if not dimensions:
            raise ValueError("star join needs at least one dimension")
        rows = {len(col) for col in fact.values()}
        if len(rows) != 1:
            raise ValueError("ragged fact columns")
        executed_fact = rows.pop()
        modeled_fact = modeled_fact or executed_fact
        for dimension in dimensions:
            if dimension.fact_key not in fact:
                raise ValueError(
                    f"fact table lacks key column {dimension.fact_key!r}"
                )
        self._validate_capacity(dimensions, workers)

        # Functional execution: conjunctive probe with short-circuiting.
        alive = np.ones(executed_fact, dtype=bool)
        payload_sum = np.zeros(executed_fact, dtype=np.int64)
        survival_per_dim: List[float] = []
        for dimension in dimensions:
            rel = dimension.relation
            table = create_hash_table(
                self.hash_scheme, rel.executed_tuples, rel.key.dtype,
                rel.payload.dtype,
            )
            table.insert_batch(rel.key, rel.payload)
            keys = fact[dimension.fact_key]
            found = np.zeros(executed_fact, dtype=bool)
            values = np.zeros(executed_fact, dtype=rel.payload.dtype)
            if alive.any():
                sub_found, sub_values = table.lookup_batch(keys[alive])
                found[alive] = sub_found
                values_alive = np.zeros(int(alive.sum()), dtype=rel.payload.dtype)
                values_alive[sub_found] = sub_values[sub_found]
                values[alive] = values_alive
            before = int(alive.sum())
            alive &= found
            survival_per_dim.append(
                (int(alive.sum()) / before) if before else 0.0
            )
            payload_sum[alive] += values[alive].astype(np.int64)
        survivors = int(alive.sum())
        if measure is not None:
            aggregate = int(measure[alive].astype(np.int64).sum())
        else:
            aggregate = int(payload_sum[alive].sum())

        builder_of = {
            d.fact_key: workers[i % len(workers)]
            for i, d in enumerate(dimensions)
        }
        config = PhysicalConfig(
            strategy="gpu+het",
            workers=tuple(workers),
            hash_scheme=self.hash_scheme,
            label="star",
        )
        plan = compile_query(
            self.logical_query(fact, dimensions, modeled_fact, fact_location),
            config,
            self.cost_model,
            StarStats(tuple(survival_per_dim)),
        )
        executed = PlanExecutor(self.cost_model).execute(plan)
        modeled_tuples = modeled_fact + sum(
            d.relation.modeled_tuples for d in dimensions
        )
        return StarJoinResult(
            survivors=survivors,
            aggregate=aggregate,
            build_seconds=executed.seconds("build"),
            broadcast_seconds=executed.seconds("broadcast"),
            probe_seconds=executed.seconds("probe"),
            modeled_tuples=modeled_tuples,
            builder_of=builder_of,
            workers=tuple(workers),
        )
