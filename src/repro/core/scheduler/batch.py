"""GPU morsel-batch tuning (Section 6.1).

"Instead of dispatching one morsel at-a-time, we dispatch batches of
morsels to the GPU.  Batching morsels amortizes the latency of launching
a GPU kernel over more data.  We empirically tune the batch size to our
hardware."

The trade-off: large batches amortize dispatch latency but increase
end-of-input skew (the last batch may leave other processors idle).
:func:`tune_batch_morsels` picks the smallest batch whose dispatch
overhead stays below a target fraction of the batch's processing time.
"""

from __future__ import annotations


def batch_overhead_fraction(
    batch_morsels: int,
    morsel_tuples: int,
    worker_rate: float,
    dispatch_latency: float,
) -> float:
    """Dispatch latency as a fraction of one batch's total time."""
    if batch_morsels <= 0 or morsel_tuples <= 0:
        raise ValueError("batch and morsel sizes must be positive")
    if worker_rate <= 0:
        raise ValueError(f"worker rate must be positive: {worker_rate}")
    process_time = batch_morsels * morsel_tuples / worker_rate
    return dispatch_latency / (dispatch_latency + process_time)


def tune_batch_morsels(
    morsel_tuples: int,
    worker_rate: float,
    dispatch_latency: float,
    target_overhead: float = 0.02,
    max_batch: int = 1024,
) -> int:
    """Smallest batch keeping dispatch overhead under ``target_overhead``.

    Doubles the batch until the overhead target is met (the shape of an
    empirical tuning sweep); capped to bound end-of-input skew.
    """
    if not 0 < target_overhead < 1:
        raise ValueError(f"target overhead must be in (0, 1): {target_overhead}")
    batch = 1
    while batch < max_batch:
        overhead = batch_overhead_fraction(
            batch, morsel_tuples, worker_rate, dispatch_latency
        )
        if overhead <= target_overhead:
            return batch
        batch *= 2
    return max_batch
