"""The central morsel dispatcher (Section 6.1).

"Cores balance load by requesting fixed-sized chunks of data (i.e.,
morsels) from a central dispatcher, that is implemented as a read
cursor."  The dispatcher hands out ranges of the probe (or build)
relation; GPUs request *batches* of morsels to amortize kernel-launch
latency over more data.

The dispatcher is thread-safe: ``repro.exec`` drives it from real
concurrent workers, so the cursor advance, the dispatch log, and the
metric emission happen under one lock — N workers hammering
:meth:`next_batch` receive disjoint ranges that exactly cover
``[0, total_tuples)``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class WorkRange:
    """A half-open tuple range [start, end)."""

    start: int
    end: int

    @property
    def tuples(self) -> int:
        return self.end - self.start


class MorselDispatcher:
    """A read cursor over ``total_tuples`` handing out fixed morsels."""

    def __init__(
        self,
        total_tuples: int,
        morsel_tuples: int,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if total_tuples < 0:
            raise ValueError(f"total tuples must be non-negative: {total_tuples}")
        if morsel_tuples <= 0:
            raise ValueError(f"morsel size must be positive: {morsel_tuples}")
        self.total_tuples = total_tuples
        self.morsel_tuples = morsel_tuples
        self.metrics = metrics
        self._cursor = 0
        self._lock = threading.Lock()
        self.dispatched: List[Tuple[str, WorkRange]] = []

    @property
    def remaining(self) -> int:
        with self._lock:
            return self.total_tuples - self._cursor

    @property
    def exhausted(self) -> bool:
        with self._lock:
            return self._cursor >= self.total_tuples

    def next_batch(self, morsels: int = 1, worker: str = "") -> Optional[WorkRange]:
        """Hand out up to ``morsels`` consecutive morsels (one range).

        Returns None once the input is exhausted.  The final range may be
        shorter than requested — the source of end-of-input skew the
        batching trade-off has to balance.  Safe to call from concurrent
        workers: ranges never overlap and never leave gaps.
        """
        if morsels < 1:
            raise ValueError(f"must request at least one morsel: {morsels}")
        if not isinstance(worker, str):
            # A non-string worker would silently corrupt the dispatch
            # log and metric labels (e.g. worker=0 vs worker="0").
            raise ValueError(
                f"worker must be a string label, got {type(worker).__name__}: "
                f"{worker!r}"
            )
        with self._lock:
            if self._cursor >= self.total_tuples:
                return None
            start = self._cursor
            end = min(self.total_tuples, start + morsels * self.morsel_tuples)
            self._cursor = end
            work = WorkRange(start=start, end=end)
            self.dispatched.append((worker, work))
        if self.metrics is not None:
            granted = -(-work.tuples // self.morsel_tuples)
            self.metrics.counter(
                "morsels_dispatched_total", worker=worker
            ).inc(granted)
            self.metrics.histogram(
                "dispatch_batch_tuples", worker=worker
            ).observe(work.tuples)
        return work

    def dispatched_tuples(self, worker: str) -> int:
        """Total tuples handed to one worker so far."""
        with self._lock:
            return sum(w.tuples for name, w in self.dispatched if name == worker)
