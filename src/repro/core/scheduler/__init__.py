"""Morsel-driven scheduling (Section 6.1)."""

from repro.core.scheduler.morsel import MorselDispatcher
from repro.core.scheduler.batch import tune_batch_morsels

__all__ = ["MorselDispatcher", "tune_batch_morsels"]
