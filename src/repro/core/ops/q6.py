"""TPC-H query 6 on the simulated machine (Figure 15).

Two kernel variants (Section 7.2.4):

* **predicated** — branch-free SIMD evaluation; every column is loaded
  in full, so throughput is bounded by the data path (interconnect for
  the GPU, memory bandwidth for the CPU);
* **branching** — short-circuit predicate cascade; later columns are
  loaded only for cache lines with surviving rows.  With the query's
  ~1.9% combined selectivity and dbgen's shipdate clustering this skips
  most of the input, which is why branching wins on the GPU where the
  interconnect is the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.costmodel.access import AccessProfile
from repro.costmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.costmodel.model import CostModel, PhaseCost
from repro.core.ops.selection import selection_line_fractions
from repro.exec import (
    DEFAULT_EXEC_MORSEL_TUPLES,
    DEFAULT_WORKERS,
    check_backend,
    execute_masks,
    make_executor,
)
from repro.hardware.processor import Gpu
from repro.hardware.topology import Machine
from repro.obs import Observability
from repro.plan import PhaseSpec, Plan, PlanExecutor, ingest, priced_phase
from repro.workloads.tpch import (
    Q6_DISCOUNT_HI,
    Q6_DISCOUNT_LO,
    Q6_QUANTITY_LT,
    Q6_SHIPDATE_HI,
    Q6_SHIPDATE_LO,
    Q6Workload,
)

VARIANTS = ("branching", "predicated")


@dataclass
class Q6Result:
    """Functional revenue plus simulated performance."""

    revenue: float
    qualifying_rows: int
    selectivity: float
    cost: PhaseCost
    modeled_rows: int
    variant: str
    processor: str
    column_line_fractions: List[float]

    @property
    def runtime(self) -> float:
        return self.cost.seconds

    @property
    def throughput_tuples(self) -> float:
        if self.runtime == 0:
            return float("inf")
        return self.modeled_rows / self.runtime

    @property
    def throughput_gtuples(self) -> float:
        return self.throughput_tuples / 1e9


class TpchQ6:
    """Q6 operator with branching and predicated variants.

    ``backend`` selects how the predicate cascade executes on the host:
    ``serial`` | ``threads`` | ``processes``.  The masks are merged by
    morsel order (or written to disjoint shared-memory slices by forked
    workers), so the aggregate and every priced manifest are identical
    across backends and worker counts.
    """

    def __init__(
        self,
        machine: Machine,
        variant: str = "predicated",
        transfer_method: str = "coherence",
        calibration: Calibration = DEFAULT_CALIBRATION,
        obs: Optional[Observability] = None,
        backend: str = "serial",
        workers: int = DEFAULT_WORKERS,
        exec_morsel_tuples: int = DEFAULT_EXEC_MORSEL_TUPLES,
    ) -> None:
        if variant not in VARIANTS:
            raise ValueError(
                f"unknown variant {variant!r}; valid: {', '.join(VARIANTS)}"
            )
        self.machine = machine
        self.variant = variant
        self.transfer_method = transfer_method
        self.calibration = calibration
        self.obs = obs if obs is not None else Observability.create()
        self.cost_model = CostModel(machine, calibration, obs=self.obs)
        self.backend = check_backend(backend)
        self.workers = workers
        self.exec_morsel_tuples = exec_morsel_tuples
        self.last_executor = None

    # ------------------------------------------------------------------
    @staticmethod
    def _predicate_evaluators(workload: Q6Workload):
        """Range-sliced predicate evaluators (element-wise, so a
        morsel-split evaluation concatenates to the whole-array masks
        bit for bit)."""
        return [
            lambda lo, hi: (workload.shipdate[lo:hi] >= Q6_SHIPDATE_LO)
            & (workload.shipdate[lo:hi] < Q6_SHIPDATE_HI),
            lambda lo, hi: (
                workload.discount[lo:hi] >= np.float32(Q6_DISCOUNT_LO - 1e-6)
            )
            & (workload.discount[lo:hi] <= np.float32(Q6_DISCOUNT_HI + 1e-6)),
            lambda lo, hi: workload.quantity[lo:hi] < Q6_QUANTITY_LT,
        ]

    @staticmethod
    def _predicate_masks(workload: Q6Workload) -> List[np.ndarray]:
        evaluators = TpchQ6._predicate_evaluators(workload)
        n = len(workload.shipdate)
        return [evaluator(0, n) for evaluator in evaluators]

    def _execute(self, workload: Q6Workload):
        executor = make_executor(
            self.backend, self.workers, self.exec_morsel_tuples, name="q6"
        )
        self.last_executor = executor
        masks = execute_masks(
            len(workload.shipdate),
            self._predicate_evaluators(workload),
            executor,
        )
        qualifies = masks[0] & masks[1] & masks[2]
        revenue = float(
            (
                workload.extendedprice[qualifies].astype(np.float64)
                * workload.discount[qualifies].astype(np.float64)
            ).sum()
        )
        return revenue, qualifies, masks

    # ------------------------------------------------------------------
    def _column_fractions(self, masks: List[np.ndarray]) -> List[float]:
        """Per-column line-load fractions for this variant.

        Column order: shipdate, discount, quantity, extendedprice.
        Predication loads everything; branching cascades.
        """
        if self.variant == "predicated":
            return [1.0, 1.0, 1.0, 1.0]
        fractions = selection_line_fractions(masks, value_bytes=4)
        # fractions = [shipdate, discount-after-shipdate, quantity-after-
        # shipdate&discount, extendedprice-after-all]. Divergence and
        # prefetch still pull part of every skippable column.
        residual = self.calibration.branching_residual_load
        return [fractions[0]] + [
            residual + (1.0 - residual) * f for f in fractions[1:]
        ]

    def phase_spec(
        self, workload: Q6Workload, processor: str, fractions: List[float]
    ) -> PhaseSpec:
        """Compile the scan into a single priced phase."""
        proc = self.machine.processor(processor)
        is_gpu = isinstance(proc, Gpu)
        col_bytes = [c.dtype.itemsize for c in workload.columns().values()]
        total_bytes = workload.modeled_rows * sum(
            width * frac for width, frac in zip(col_bytes, fractions)
        )
        spec = ingest(
            self.cost_model,
            self.transfer_method,
            processor,
            workload.location,
            total_bytes,
            "scan lineitem",
            kind=workload.kind,
        )
        work = self.calibration.scan_work_per_tuple["gpu" if is_gpu else "cpu"]
        if self.variant == "branching" and not is_gpu:
            # Branchy scalar code cannot use SIMD predication; the CPU
            # pays more per-row work but the same skipping benefit.
            work *= 2.0
        overhead = proc.kernel_launch_latency if is_gpu else 0.0
        profile = AccessProfile(
            streams=spec.streams,
            compute_tuples=workload.modeled_rows * work,
            fixed_overhead=overhead,
            label=f"q6-{self.variant}",
            processor=processor,
        )
        return priced_phase(
            "scan",
            profile,
            chunked=spec.chunked,
            claims=(processor,),
            span_worker=processor,
            span_units=float(workload.modeled_rows),
            span_attrs={"variant": self.variant},
        )

    def compile_plan(
        self, workload: Q6Workload, processor: str, fractions: List[float]
    ) -> Plan:
        """One-phase plan: the fused scan/filter/aggregate kernel."""
        return Plan(
            [self.phase_spec(workload, processor, fractions)],
            label=f"q6[{self.variant}]",
        )

    # ------------------------------------------------------------------
    def run(self, workload: Q6Workload, processor: str = "gpu0") -> Q6Result:
        """Execute Q6 functionally and price it."""
        revenue, qualifies, masks = self._execute(workload)
        fractions = self._column_fractions(masks)
        plan = self.compile_plan(workload, processor, fractions)
        executed_plan = PlanExecutor(self.cost_model).execute(plan)
        cost = executed_plan.cost("scan")
        executed = max(1, workload.executed_rows)
        return Q6Result(
            revenue=revenue,
            qualifying_rows=int(qualifies.sum()),
            selectivity=float(qualifies.sum() / executed),
            cost=cost,
            modeled_rows=workload.modeled_rows,
            variant=self.variant,
            processor=processor,
            column_line_fractions=fractions,
        )
