"""TPC-H query 6 on the simulated machine (Figure 15).

Two kernel variants (Section 7.2.4):

* **predicated** — branch-free SIMD evaluation; every column is loaded
  in full, so throughput is bounded by the data path (interconnect for
  the GPU, memory bandwidth for the CPU);
* **branching** — short-circuit predicate cascade; later columns are
  loaded only for cache lines with surviving rows.  With the query's
  ~1.9% combined selectivity and dbgen's shipdate clustering this skips
  most of the input, which is why branching wins on the GPU where the
  interconnect is the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.costmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.costmodel.model import CostModel, PhaseCost
from repro.core.ops.selection import selection_line_fractions
from repro.exec import (
    DEFAULT_EXEC_MORSEL_TUPLES,
    DEFAULT_WORKERS,
    check_backend,
    execute_masks,
    make_executor,
)
from repro.hardware.topology import Machine
from repro.logical.algebra import Query, between, ge, lt, mul, scan
from repro.logical.lower import PhysicalConfig, compile_query, scan_phase
from repro.logical.stats import ScanStats
from repro.obs import Observability
from repro.plan import PhaseSpec, Plan, PlanExecutor
from repro.workloads.tpch import (
    Q6_DISCOUNT_HI,
    Q6_DISCOUNT_LO,
    Q6_QUANTITY_LT,
    Q6_SHIPDATE_HI,
    Q6_SHIPDATE_LO,
    Q6Workload,
)

VARIANTS = ("branching", "predicated")


@dataclass
class Q6Result:
    """Functional revenue plus simulated performance."""

    revenue: float
    qualifying_rows: int
    selectivity: float
    cost: PhaseCost
    modeled_rows: int
    variant: str
    processor: str
    column_line_fractions: List[float]

    @property
    def runtime(self) -> float:
        return self.cost.seconds

    @property
    def throughput_tuples(self) -> float:
        if self.runtime == 0:
            return float("inf")
        return self.modeled_rows / self.runtime

    @property
    def throughput_gtuples(self) -> float:
        return self.throughput_tuples / 1e9


class TpchQ6:
    """Q6 operator with branching and predicated variants.

    ``backend`` selects how the predicate cascade executes on the host:
    ``serial`` | ``threads`` | ``processes``.  The masks are merged by
    morsel order (or written to disjoint shared-memory slices by forked
    workers), so the aggregate and every priced manifest are identical
    across backends and worker counts.
    """

    def __init__(
        self,
        machine: Machine,
        variant: str = "predicated",
        transfer_method: str = "coherence",
        calibration: Calibration = DEFAULT_CALIBRATION,
        obs: Optional[Observability] = None,
        backend: str = "serial",
        workers: int = DEFAULT_WORKERS,
        exec_morsel_tuples: int = DEFAULT_EXEC_MORSEL_TUPLES,
    ) -> None:
        if variant not in VARIANTS:
            raise ValueError(
                f"unknown variant {variant!r}; valid: {', '.join(VARIANTS)}"
            )
        self.machine = machine
        self.variant = variant
        self.transfer_method = transfer_method
        self.calibration = calibration
        self.obs = obs if obs is not None else Observability.create()
        self.cost_model = CostModel(machine, calibration, obs=self.obs)
        self.backend = check_backend(backend)
        self.workers = workers
        self.exec_morsel_tuples = exec_morsel_tuples
        self.last_executor = None

    # ------------------------------------------------------------------
    @staticmethod
    def _predicate_evaluators(workload: Q6Workload):
        """Range-sliced predicate evaluators (element-wise, so a
        morsel-split evaluation concatenates to the whole-array masks
        bit for bit)."""
        return [
            lambda lo, hi: (workload.shipdate[lo:hi] >= Q6_SHIPDATE_LO)
            & (workload.shipdate[lo:hi] < Q6_SHIPDATE_HI),
            lambda lo, hi: (
                workload.discount[lo:hi] >= np.float32(Q6_DISCOUNT_LO - 1e-6)
            )
            & (workload.discount[lo:hi] <= np.float32(Q6_DISCOUNT_HI + 1e-6)),
            lambda lo, hi: workload.quantity[lo:hi] < Q6_QUANTITY_LT,
        ]

    @staticmethod
    def _predicate_masks(workload: Q6Workload) -> List[np.ndarray]:
        evaluators = TpchQ6._predicate_evaluators(workload)
        n = len(workload.shipdate)
        return [evaluator(0, n) for evaluator in evaluators]

    def _execute(self, workload: Q6Workload):
        executor = make_executor(
            self.backend, self.workers, self.exec_morsel_tuples, name="q6"
        )
        self.last_executor = executor
        masks = execute_masks(
            len(workload.shipdate),
            self._predicate_evaluators(workload),
            executor,
        )
        qualifies = masks[0] & masks[1] & masks[2]
        revenue = float(
            (
                workload.extendedprice[qualifies].astype(np.float64)
                * workload.discount[qualifies].astype(np.float64)
            ).sum()
        )
        return revenue, qualifies, masks

    # ------------------------------------------------------------------
    def _column_fractions(self, masks: List[np.ndarray]) -> List[float]:
        """Per-column line-load fractions for this variant.

        Column order: shipdate, discount, quantity, extendedprice.
        Predication loads everything; branching cascades.
        """
        if self.variant == "predicated":
            return [1.0, 1.0, 1.0, 1.0]
        fractions = selection_line_fractions(masks, value_bytes=4)
        # fractions = [shipdate, discount-after-shipdate, quantity-after-
        # shipdate&discount, extendedprice-after-all]. Divergence and
        # prefetch still pull part of every skippable column.
        residual = self.calibration.branching_residual_load
        return [fractions[0]] + [
            residual + (1.0 - residual) * f for f in fractions[1:]
        ]

    def phase_spec(
        self, workload: Q6Workload, processor: str, fractions: List[float]
    ) -> PhaseSpec:
        """Compile the scan into a single priced phase."""
        col_bytes = [c.dtype.itemsize for c in workload.columns().values()]
        return scan_phase(
            self.cost_model,
            self.transfer_method,
            self.variant,
            processor,
            workload.modeled_rows,
            col_bytes,
            fractions,
            workload.location,
            workload.kind,
            read_label="scan lineitem",
            profile_label=f"q6-{self.variant}",
        )

    def logical_query(self, workload: Q6Workload) -> Query:
        """Q6 as a logical plan (Figure 15's scan/filter/aggregate).

        The selectivity hints are dbgen's: the one-year shipdate window
        keeps ~15% of lineitem (and dbgen clusters by shipdate), the
        discount band ~27%, the quantity cut ~48%.
        """
        return (
            scan(workload, name="lineitem")
            .filter(
                ge(
                    "l_shipdate",
                    Q6_SHIPDATE_LO,
                    selectivity=0.15,
                    clustered=True,
                ),
                lt("l_shipdate", Q6_SHIPDATE_HI),
                between(
                    "l_discount",
                    np.float32(Q6_DISCOUNT_LO - 1e-6),
                    np.float32(Q6_DISCOUNT_HI + 1e-6),
                    selectivity=0.27,
                ),
                lt("l_quantity", Q6_QUANTITY_LT, selectivity=0.48),
            )
            .project(revenue=mul("l_extendedprice", "l_discount"))
            .aggregate(revenue=("revenue", "sum"))
        )

    def compile_plan(
        self, workload: Q6Workload, processor: str, fractions: List[float]
    ) -> Plan:
        """One-phase plan: the fused scan/filter/aggregate kernel,
        lowered from the logical query."""
        config = PhysicalConfig(
            strategy="single",
            processor=processor,
            transfer_method=self.transfer_method,
            variant=self.variant,
            backend=self.backend,
            exec_workers=self.workers,
            label="q6",
        )
        return compile_query(
            self.logical_query(workload),
            config,
            self.cost_model,
            ScanStats(tuple(fractions)),
        )

    # ------------------------------------------------------------------
    def run(self, workload: Q6Workload, processor: str = "gpu0") -> Q6Result:
        """Execute Q6 functionally and price it."""
        revenue, qualifies, masks = self._execute(workload)
        fractions = self._column_fractions(masks)
        plan = self.compile_plan(workload, processor, fractions)
        executed_plan = PlanExecutor(self.cost_model).execute(plan)
        cost = executed_plan.cost("scan")
        executed = max(1, workload.executed_rows)
        return Q6Result(
            revenue=revenue,
            qualifying_rows=int(qualifies.sum()),
            selectivity=float(qualifies.sum() / executed),
            cost=cost,
            modeled_rows=workload.modeled_rows,
            variant=self.variant,
            processor=processor,
            column_line_fractions=fractions,
        )
