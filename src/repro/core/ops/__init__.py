"""Relational operators besides the join: selection and aggregation."""

from repro.core.ops.q6 import Q6Result, TpchQ6
from repro.core.ops.selection import selection_line_fractions

__all__ = ["Q6Result", "TpchQ6", "selection_line_fractions"]
