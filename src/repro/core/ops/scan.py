"""Generic selection-scan operator (the machinery behind Q6).

A :class:`SelectionScan` evaluates a conjunctive predicate cascade over
arbitrary columns and aggregates an expression over the survivors, in
branching or predicated variants.  Q6 is one instance; the examples and
ablations can build others (different predicate orders, widths, and
clusterings) to explore when branching pays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.costmodel.access import AccessProfile
from repro.costmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.costmodel.model import CostModel, PhaseCost
from repro.core.ops.selection import selection_line_fractions
from repro.exec import (
    DEFAULT_EXEC_MORSEL_TUPLES,
    DEFAULT_WORKERS,
    check_backend,
    execute_masks,
    make_executor,
)
from repro.hardware.memory import MemoryKind
from repro.hardware.processor import Gpu
from repro.hardware.topology import Machine
from repro.obs import Observability
from repro.plan import Plan, PlanExecutor, ingest, priced_phase


@dataclass(frozen=True)
class Predicate:
    """One predicate of the cascade: a column and a row-mask function."""

    column: str
    evaluate: Callable[[np.ndarray], np.ndarray]
    label: str = ""


@dataclass
class ScanResult:
    """Functional aggregate plus simulated performance."""

    aggregate: float
    qualifying_rows: int
    selectivity: float
    cost: PhaseCost
    modeled_rows: int
    column_line_fractions: List[float]
    variant: str
    processor: str

    @property
    def runtime(self) -> float:
        return self.cost.seconds

    @property
    def throughput_tuples(self) -> float:
        if self.runtime == 0:
            return float("inf")
        return self.modeled_rows / self.runtime

    @property
    def throughput_gtuples(self) -> float:
        return self.throughput_tuples / 1e9


class SelectionScan:
    """Conjunctive predicate cascade + aggregation over columns.

    Args:
        predicates: evaluated in order; the branching variant loads a
            later predicate's column only where earlier predicates left
            surviving rows in the cache line.
        aggregate_columns: extra columns read only for fully-surviving
            rows (the aggregate inputs).
        aggregate: function from the surviving rows' columns to a float.
        backend: ``serial`` | ``threads`` | ``processes`` — host
            execution of the cascade; results and priced manifests are
            identical across backends and worker counts.
    """

    def __init__(
        self,
        machine: Machine,
        predicates: Sequence[Predicate],
        aggregate_columns: Sequence[str],
        aggregate: Callable[[Dict[str, np.ndarray]], float],
        variant: str = "predicated",
        transfer_method: str = "coherence",
        calibration: Calibration = DEFAULT_CALIBRATION,
        obs: Optional[Observability] = None,
        backend: str = "serial",
        workers: int = DEFAULT_WORKERS,
        exec_morsel_tuples: int = DEFAULT_EXEC_MORSEL_TUPLES,
    ) -> None:
        if not predicates:
            raise ValueError("need at least one predicate")
        if variant not in ("branching", "predicated"):
            raise ValueError(f"unknown variant {variant!r}")
        self.machine = machine
        self.predicates = list(predicates)
        self.aggregate_columns = list(aggregate_columns)
        self.aggregate = aggregate
        self.variant = variant
        self.transfer_method = transfer_method
        self.calibration = calibration
        self.obs = obs if obs is not None else Observability.create()
        self.cost_model = CostModel(machine, calibration, obs=self.obs)
        self.backend = check_backend(backend)
        self.workers = workers
        self.exec_morsel_tuples = exec_morsel_tuples
        self.last_executor = None

    # ------------------------------------------------------------------
    def _execute(self, columns: Dict[str, np.ndarray]):
        n_rows = len(columns[self.predicates[0].column])
        executor = make_executor(
            self.backend, self.workers, self.exec_morsel_tuples, name="scan"
        )
        self.last_executor = executor
        evaluators = [
            (lambda lo, hi, p=p: p.evaluate(columns[p.column][lo:hi]))
            for p in self.predicates
        ]
        masks = execute_masks(n_rows, evaluators, executor)
        survivors = masks[0].copy()
        for mask in masks[1:]:
            survivors &= mask
        surviving = {
            name: columns[name][survivors] for name in self.aggregate_columns
        }
        value = float(self.aggregate(surviving)) if survivors.any() else 0.0
        return value, survivors, masks

    def _fractions(self, masks: List[np.ndarray], value_bytes: int) -> List[float]:
        n_columns = len(self.predicates) + len(self.aggregate_columns)
        if self.variant == "predicated":
            return [1.0] * n_columns
        fractions = selection_line_fractions(masks, value_bytes=value_bytes)
        residual = self.calibration.branching_residual_load
        damped = [fractions[0]] + [
            residual + (1.0 - residual) * f for f in fractions[1:]
        ]
        # One fraction per predicate column, then the tail fraction for
        # every aggregate column.
        return damped[: len(self.predicates)] + [damped[-1]] * len(
            self.aggregate_columns
        )

    # ------------------------------------------------------------------
    def run(
        self,
        columns: Dict[str, np.ndarray],
        processor: str = "gpu0",
        location: str = "cpu0-mem",
        modeled_rows: Optional[int] = None,
        kind: Optional[MemoryKind] = None,
    ) -> ScanResult:
        """Execute the scan functionally and price it.

        ``kind`` is the source columns' memory kind; when given, the
        transfer method's Table-1 kind requirement is enforced.
        """
        needed = [p.column for p in self.predicates] + self.aggregate_columns
        missing = [name for name in needed if name not in columns]
        if missing:
            raise KeyError(f"missing columns: {', '.join(missing)}")
        rows = {len(columns[name]) for name in needed}
        if len(rows) != 1:
            raise ValueError("ragged input columns")
        executed_rows = rows.pop()
        modeled_rows = modeled_rows or executed_rows

        value, survivors, masks = self._execute(columns)
        widths = [columns[name].dtype.itemsize for name in needed]
        fractions = self._fractions(masks, value_bytes=min(widths))
        total_bytes = modeled_rows * sum(
            w * f for w, f in zip(widths, fractions)
        )

        proc = self.machine.processor(processor)
        is_gpu = isinstance(proc, Gpu)
        spec = ingest(
            self.cost_model,
            self.transfer_method,
            processor,
            location,
            total_bytes,
            "scan",
            kind=kind,
        )
        work = self.calibration.scan_work_per_tuple["gpu" if is_gpu else "cpu"]
        if self.variant == "branching" and not is_gpu:
            work *= 2.0
        profile = AccessProfile(
            streams=spec.streams,
            compute_tuples=modeled_rows * work,
            fixed_overhead=proc.kernel_launch_latency if is_gpu else 0.0,
            label=f"scan-{self.variant}",
            processor=processor,
        )
        plan = Plan(
            [
                priced_phase(
                    "scan",
                    profile,
                    chunked=spec.chunked,
                    claims=(processor,),
                    span_worker=processor,
                    span_units=float(modeled_rows),
                    span_attrs={"variant": self.variant},
                )
            ],
            label=f"scan[{self.variant}]",
        )
        cost = PlanExecutor(self.cost_model).execute(plan).cost("scan")
        return ScanResult(
            aggregate=value,
            qualifying_rows=int(survivors.sum()),
            selectivity=float(survivors.mean()) if executed_rows else 0.0,
            cost=cost,
            modeled_rows=modeled_rows,
            column_line_fractions=fractions,
            variant=self.variant,
            processor=processor,
        )
