"""Cache-line-granular column skipping for cascaded selections.

A branching (short-circuit) scan evaluates predicates in sequence and
only loads a later column's cache line when some row in that line is
still alive.  With clustered data (TPC-H shipdates), long runs of rows
fail the first predicate together and entire lines of the remaining
columns are skipped — the effect behind Figure 15's counterintuitive
"branching beats predication on the GPU" result.

:func:`selection_line_fractions` measures, for a conjunctive predicate
cascade, the fraction of each column's cache lines a branching scan
must load.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

LINE_BYTES = 128


def line_any(mask: np.ndarray, values_per_line: int) -> np.ndarray:
    """Per-line OR of a row mask (which lines have a surviving row)."""
    if values_per_line <= 0:
        raise ValueError(f"values per line must be positive: {values_per_line}")
    n = len(mask)
    full = n // values_per_line
    lines: List[np.ndarray] = []
    if full:
        head = mask[: full * values_per_line].reshape(full, values_per_line)
        lines.append(head.any(axis=1))
    tail = mask[full * values_per_line :]
    if len(tail):
        lines.append(np.array([tail.any()]))
    if not lines:
        return np.zeros(0, dtype=bool)
    return np.concatenate(lines)


def selection_line_fractions(
    masks: Sequence[np.ndarray],
    value_bytes: int = 4,
    line_bytes: int = LINE_BYTES,
) -> List[float]:
    """Line-load fraction of each column in a branching cascade.

    ``masks[i]`` is the row mask of predicate ``i`` alone.  Column 0 is
    always fully read; column ``i`` is read at line granularity where
    any row of the line survived predicates ``0..i-1``.

    Returns one fraction per column (len(masks) columns are predicate
    columns; append the returned tail fraction for any aggregate-only
    columns read after the full cascade).
    """
    if not masks:
        raise ValueError("need at least one predicate mask")
    per_line = max(1, line_bytes // value_bytes)
    fractions: List[float] = [1.0]
    alive = masks[0]
    for mask in masks[1:]:
        lines = line_any(alive, per_line)
        fractions.append(float(lines.mean()) if len(lines) else 0.0)
        alive = alive & mask
    # Fraction for columns read only by fully-surviving rows (aggregates).
    lines = line_any(alive, per_line)
    fractions.append(float(lines.mean()) if len(lines) else 0.0)
    return fractions
