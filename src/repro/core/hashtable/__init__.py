"""Hash tables for the no-partitioning join.

All tables share the SoA layout of the paper's join (separate key and
value arrays — the layout behind the selectivity effects of Figure 20),
count their accesses for the cost model, and can be *placed*: entirely
in one memory region, or split GPU-first across regions as a hybrid
hash table (Section 5.3).
"""

from repro.core.hashtable.base import HashTableBase, TableStats
from repro.core.hashtable.chaining import ChainingHashTable
from repro.core.hashtable.hash_functions import mix64, multiply_shift
from repro.core.hashtable.open_addressing import OpenAddressingHashTable
from repro.core.hashtable.perfect import PerfectHashTable
from repro.core.hashtable.placement import HashTablePlacement, place_hash_table
from repro.core.hashtable.sharded import ShardedHashTable

__all__ = [
    "HashTableBase",
    "TableStats",
    "ChainingHashTable",
    "mix64",
    "multiply_shift",
    "OpenAddressingHashTable",
    "PerfectHashTable",
    "ShardedHashTable",
    "HashTablePlacement",
    "place_hash_table",
]


def create_hash_table(
    scheme: str, capacity_hint: int, key_dtype, value_dtype, shards: int = 1
):
    """Factory: one of ``perfect``, ``open_addressing``, ``chaining``.

    ``shards > 1`` wraps the scheme in a :class:`ShardedHashTable` with
    that many key-space shards (contention-free parallel builds; see
    :mod:`repro.core.hashtable.sharded`).
    """
    if shards < 1:
        raise ValueError(f"shards must be at least 1: {shards}")
    if shards > 1:
        return ShardedHashTable(
            scheme, capacity_hint, key_dtype, value_dtype, n_shards=shards
        )
    if scheme == "perfect":
        return PerfectHashTable(capacity_hint, key_dtype, value_dtype)
    if scheme == "open_addressing":
        return OpenAddressingHashTable(capacity_hint, key_dtype, value_dtype)
    if scheme == "chaining":
        return ChainingHashTable(capacity_hint, key_dtype, value_dtype)
    raise ValueError(
        f"unknown hash scheme {scheme!r}; "
        "valid: perfect, open_addressing, chaining"
    )
