"""Hash tables for the no-partitioning join.

All tables share the SoA layout of the paper's join (separate key and
value arrays — the layout behind the selectivity effects of Figure 20),
count their accesses for the cost model, and can be *placed*: entirely
in one memory region, or split GPU-first across regions as a hybrid
hash table (Section 5.3).
"""

from repro.core.hashtable.base import HashTableBase, TableStats
from repro.core.hashtable.chaining import ChainingHashTable
from repro.core.hashtable.hash_functions import mix64, multiply_shift
from repro.core.hashtable.open_addressing import OpenAddressingHashTable
from repro.core.hashtable.perfect import PerfectHashTable
from repro.core.hashtable.placement import HashTablePlacement, place_hash_table

__all__ = [
    "HashTableBase",
    "TableStats",
    "ChainingHashTable",
    "mix64",
    "multiply_shift",
    "OpenAddressingHashTable",
    "PerfectHashTable",
    "HashTablePlacement",
    "place_hash_table",
]


def create_hash_table(scheme: str, capacity_hint: int, key_dtype, value_dtype):
    """Factory: one of ``perfect``, ``open_addressing``, ``chaining``."""
    if scheme == "perfect":
        return PerfectHashTable(capacity_hint, key_dtype, value_dtype)
    if scheme == "open_addressing":
        return OpenAddressingHashTable(capacity_hint, key_dtype, value_dtype)
    if scheme == "chaining":
        return ChainingHashTable(capacity_hint, key_dtype, value_dtype)
    raise ValueError(
        f"unknown hash scheme {scheme!r}; "
        "valid: perfect, open_addressing, chaining"
    )
