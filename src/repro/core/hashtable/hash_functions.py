"""Vectorized hash functions.

The paper's evaluation uses *perfect hashing* (unique dense primary
keys); the open-addressing and chaining tables additionally need a real
hash.  We provide the Murmur3/splitmix finalizer (``mix64``) and the
classic multiply-shift scheme, both vectorized over numpy arrays.
"""

from __future__ import annotations

import numpy as np

_GOLDEN64 = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def mix64(keys: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer: a strong 64-bit avalanche mix.

    Accepts any integer array; returns uint64 hashes of the same shape.
    """
    h = keys.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        h += _GOLDEN64
        h ^= h >> np.uint64(30)
        h *= _MIX1
        h ^= h >> np.uint64(27)
        h *= _MIX2
        h ^= h >> np.uint64(31)
    return h


def multiply_shift(keys: np.ndarray, bits: int) -> np.ndarray:
    """Multiply-shift hashing into ``bits``-wide bucket indices.

    ``h(k) = (a * k) >> (64 - bits)`` with a fixed odd multiplier; a
    2-universal family classic that is cheap on both CPUs and GPUs.
    """
    if not 1 <= bits <= 63:
        raise ValueError(f"bits must be in [1, 63], got {bits}")
    a = np.uint64(0x9E3779B97F4A7C15) | np.uint64(1)
    with np.errstate(over="ignore"):
        product = keys.astype(np.uint64) * a
    return (product >> np.uint64(64 - bits)).astype(np.int64)


def bucket_of(keys: np.ndarray, capacity: int, scheme: str = "mix") -> np.ndarray:
    """Map keys to buckets in [0, capacity).

    ``capacity`` must be a power of two for mask-based reduction, which
    is what real GPU hash joins use to avoid the modulo.
    """
    if capacity <= 0 or capacity & (capacity - 1):
        raise ValueError(f"capacity must be a positive power of two: {capacity}")
    if scheme == "mix":
        hashed = mix64(keys)
    elif scheme == "identity":
        hashed = keys.astype(np.uint64)
    else:
        raise ValueError(f"unknown bucket scheme {scheme!r}")
    return (hashed & np.uint64(capacity - 1)).astype(np.int64)


def next_power_of_two(n: int) -> int:
    """Smallest power of two >= n (and >= 1)."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()
