"""Open-addressing hash table with linear probing (vectorized).

This is the general-purpose table for non-dense keys.  Batch inserts
emulate the GPU's CAS loop: in each round, every pending key attempts
its current slot; losers (occupied by a different key, or lost the
within-batch race) advance to the next slot.  numpy resolves the
within-round race deterministically ("last writer wins" per slot), and
the fix-up pass re-queues overwritten keys exactly as a failed CAS
would, so the result equals a sequential insertion.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.hashtable.base import HashTableBase
from repro.core.hashtable.hash_functions import bucket_of, next_power_of_two


class OpenAddressingHashTable(HashTableBase):
    """Linear-probing table; capacity is rounded up to a power of two."""

    #: default fill target: capacity = 2x the expected build size.
    DEFAULT_LOAD = 0.5

    def __init__(
        self,
        expected_size: int,
        key_dtype=np.int64,
        value_dtype=np.int64,
        load_factor: float = DEFAULT_LOAD,
    ):
        if not 0 < load_factor <= 0.9:
            raise ValueError(f"load factor must be in (0, 0.9], got {load_factor}")
        capacity = next_power_of_two(max(2, int(expected_size / load_factor)))
        super().__init__(capacity, key_dtype, value_dtype)
        self._mask = np.int64(self.capacity - 1)

    def _home_slots(self, keys: np.ndarray) -> np.ndarray:
        return bucket_of(keys, self.capacity)

    def _contains_any(self, keys: np.ndarray) -> np.ndarray:
        """Stats-free membership probe (validation only, never priced).

        Linear-probes exactly like :meth:`lookup_batch` but touches no
        counters: validation work is not part of the modeled join, so it
        must not shift ``TableStats`` (and everything priced from them).
        """
        n = len(keys)
        present = np.zeros(n, dtype=bool)
        pending = np.arange(n)
        probe_keys = keys.astype(self.keys.dtype)
        slots = self._home_slots(probe_keys)
        rounds = 0
        while len(pending) and rounds < self.capacity:
            rounds += 1
            slot_keys = self.keys[slots]
            hit = slot_keys == probe_keys[pending]
            miss = slot_keys == self.EMPTY
            present[pending[hit]] = True
            keep = ~(hit | miss)
            pending = pending[keep]
            slots = (slots[keep] + 1) & self._mask
        return present

    def insert_batch(self, keys: np.ndarray, values: np.ndarray) -> None:
        self._check_batch(keys, values)
        self._check_not_view()
        if len(keys) == 0:
            return
        if self.size + len(keys) > self.capacity:
            raise ValueError(
                f"batch of {len(keys)} does not fit: {self.size}/{self.capacity}"
            )
        # Within-batch duplicates would both pass the post-scatter `won`
        # re-read (both compare equal to the stored key), silently
        # dropping one value while counting two winners — reject them
        # up front with the same error the existing-key path raises.
        unique, counts = np.unique(keys, return_counts=True)
        if len(unique) != len(keys):
            raise ValueError(
                "duplicate key insert (join build expects unique keys): "
                f"{int(unique[counts > 1][0])}"
            )
        # Validate against *existing* keys before any scatter: a raise
        # mid-round used to leave earlier rounds' winners written and
        # ``size`` advanced — a corrupted table after a reported failure.
        # All raises now happen before the first mutation, so a failed
        # insert leaves the table bit-identical to its pre-call state.
        present = self._contains_any(keys)
        if present.any():
            raise ValueError(
                "duplicate key insert (join build expects unique keys): "
                f"{int(keys[present][0])}"
            )
        pending_keys = keys.astype(self.keys.dtype, copy=True)
        pending_values = values.astype(self.values.dtype, copy=True)
        slots = self._home_slots(pending_keys)
        rounds = 0
        while len(pending_keys):
            rounds += 1
            if rounds > self.capacity + 1:
                raise RuntimeError("insert did not converge; table corrupted?")
            self.stats.insert_probes += len(pending_keys)
            empty = self.keys[slots] == self.EMPTY
            # Claim empty slots; numpy scatter keeps the *last* writer per
            # slot, so re-read to find the actual winners (emulated CAS).
            claim = np.flatnonzero(empty)
            if len(claim):
                claim_slots = slots[claim]
                self.keys[claim_slots] = pending_keys[claim]
                self.values[claim_slots] = pending_values[claim]
                won = self.keys[slots[claim]] == pending_keys[claim]
                winners = claim[won]
                self.size += len(winners)
                self.stats.inserts += len(winners)
                lost = np.ones(len(pending_keys), dtype=bool)
                lost[winners] = False
            else:
                lost = np.ones(len(pending_keys), dtype=bool)
            pending_keys = pending_keys[lost]
            pending_values = pending_values[lost]
            slots = (slots[lost] + 1) & self._mask

    def lookup_batch(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        self._check_batch(keys)
        n = len(keys)
        self.stats.lookups += n
        found = np.zeros(n, dtype=bool)
        values = np.zeros(n, dtype=self.values.dtype)
        if n == 0:
            return found, values
        pending = np.arange(n)
        probe_keys = keys.astype(self.keys.dtype)
        slots = self._home_slots(probe_keys)
        rounds = 0
        # After `capacity` rounds every key has inspected every slot, so
        # still-pending keys are absent.  This bound (not an EMPTY
        # sentinel) terminates probes for absent keys in a 100%-full
        # table, which insert_batch permits.
        while len(pending) and rounds < self.capacity:
            rounds += 1
            self.stats.lookup_probes += len(pending)
            slot_keys = self.keys[slots]
            hit = slot_keys == probe_keys[pending]
            miss = slot_keys == self.EMPTY
            if hit.any():
                hit_rows = pending[hit]
                found[hit_rows] = True
                values[hit_rows] = self.values[slots[hit]]
                self.stats.value_reads += int(hit.sum())
            keep = ~(hit | miss)
            pending = pending[keep]
            slots = (slots[keep] + 1) & self._mask
        return found, values
