"""Physical placement of a hash table on the simulated machine.

A placement maps the table's (modeled) bytes onto memory regions:

* single-region: the whole table in GPU or CPU memory;
* hybrid: GPU-first with CPU spill (Figure 8 / Section 5.3), carrying
  the GPU fraction ``A_GPU`` used by the paper's throughput model
  ``J = A_GPU * G_tput + (1 - A_GPU) * C_tput``.

Placements are computed against *modeled* sizes — the paper-scale table
must not fit in the 16 GiB GPU for the out-of-core experiments even
though the executed table is tiny.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.faults.runtime import active_plan
from repro.hardware.memory import MemoryKind
from repro.hardware.topology import Machine
from repro.memory.allocator import Allocator, OutOfMemoryError
from repro.memory.hybrid import HybridAllocation, allocate_hybrid
from repro.utils.units import MIB


@dataclass
class HashTablePlacement:
    """Where a hash table's bytes live, as region -> byte fractions."""

    total_bytes: int
    fractions: Dict[str, float]
    hybrid: Optional[HybridAllocation] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.total_bytes < 0:
            raise ValueError("placement size must be non-negative")
        if self.total_bytes > 0 and not self.fractions:
            raise ValueError(
                f"placement of {self.total_bytes} bytes has no fractions; "
                "an empty placement would silently drop all table traffic"
            )
        bad = {
            name: frac
            for name, frac in self.fractions.items()
            if not math.isfinite(frac) or frac < 0
        }
        if bad:
            raise ValueError(
                f"placement fractions must be finite and non-negative, got {bad}"
            )
        total = sum(self.fractions.values())
        if self.fractions and abs(total - 1.0) > 1e-9:
            raise ValueError(f"placement fractions sum to {total}, expected 1.0")

    @property
    def regions(self) -> List[str]:
        return [name for name, frac in self.fractions.items() if frac > 0]

    @property
    def is_hybrid(self) -> bool:
        return len(self.regions) > 1

    def fraction(self, region_name: str) -> float:
        """Byte fraction of the table in one region (0 if absent)."""
        return self.fractions.get(region_name, 0.0)

    def gpu_fraction(self, machine: Machine) -> float:
        """Fraction of bytes in any GPU memory (A_GPU of Section 5.3)."""
        gpu_regions = {gpu.local_memory.name for gpu in machine.gpus()}
        return sum(f for name, f in self.fractions.items() if name in gpu_regions)

    def split_accesses(self, accesses: float) -> Dict[str, float]:
        """Uniform-key access split across regions (Section 5.3's model)."""
        return {
            name: accesses * frac
            for name, frac in self.fractions.items()
            if frac > 0
        }


def place_hash_table(
    machine: Machine,
    table_bytes: int,
    strategy: str,
    gpu_name: str = "gpu0",
    cpu_memory: Optional[str] = None,
    allocator: Optional[Allocator] = None,
    gpu_reserve: int = 512 * MIB,
    spill_kind: MemoryKind = MemoryKind.PAGEABLE,
) -> HashTablePlacement:
    """Compute a placement for ``table_bytes`` (modeled scale).

    Strategies:
        ``gpu``     — entirely in the GPU's memory; raises if it cannot fit
                      (this is the paper's pre-NVLink scalability cliff).
        ``cpu``     — entirely in CPU memory (build-side scalable join).
        ``hybrid``  — GPU-first with CPU spill (the hybrid hash table).
        a region name — entirely in that region (locality experiments).
    """
    if table_bytes < 0:
        raise ValueError("table size must be non-negative")
    gpu = machine.processor(gpu_name)
    gpu_region = gpu.local_memory

    if strategy == "gpu":
        plan = active_plan()
        if plan is not None:
            # Fault-injection site: the capacity check *is* the placement
            # decision, so an OomAt rule targeting label "ht gpu placement"
            # simulates a full GPU even when the table would fit.
            plan.check_alloc(
                region=gpu_region.name,
                nbytes=table_bytes,
                label="ht gpu placement",
            )
        available = gpu_region.capacity - gpu_region.allocated - gpu_reserve
        if table_bytes > available:
            raise OutOfMemoryError(
                f"hash table of {table_bytes} bytes exceeds GPU memory "
                f"({available} bytes available); use 'cpu' or 'hybrid'"
            )
        return HashTablePlacement(
            total_bytes=table_bytes,
            fractions={gpu_region.name: 1.0},
            label="gpu",
        )

    if strategy == "cpu":
        region = (
            machine.memory(cpu_memory)
            if cpu_memory
            else machine.nearest_cpu_memory(gpu_name)
        )
        return HashTablePlacement(
            total_bytes=table_bytes,
            fractions={region.name: 1.0},
            label="cpu",
        )

    if strategy == "hybrid":
        own_allocator = allocator is None
        allocator = allocator or Allocator(machine)
        allocation = allocate_hybrid(
            allocator,
            gpu_name,
            table_bytes,
            spill_kind=spill_kind,
            gpu_reserve=gpu_reserve,
            label="hybrid-ht",
        )
        fractions = {
            name: nbytes / table_bytes if table_bytes else 0.0
            for name, nbytes in allocation.bytes_per_region().items()
        }
        placement = HashTablePlacement(
            total_bytes=table_bytes,
            fractions=fractions or {gpu_region.name: 1.0},
            hybrid=allocation,
            label="hybrid",
        )
        if own_allocator:
            # The caller only wanted the fractions; release the capacity.
            allocation.free(allocator)
        return placement

    # Fall through: explicit region name (Figure 14's locality sweeps).
    region = machine.memory(strategy)
    return HashTablePlacement(
        total_bytes=table_bytes,
        fractions={region.name: 1.0},
        label=strategy,
    )
