"""Hash table base: SoA storage, access counters, common validation.

The join cost model consumes :class:`TableStats` — the exact numbers of
insert, probe-key, and probe-value accesses the functional execution
performed.  Because these counts are linear in tuple counts, they can
be rescaled to the modeled (paper-scale) cardinality.

The layout is struct-of-arrays: one key array and one value array.
Probes always touch the key array; the value array is touched only on a
match.  This is the layout behind Figure 20's observation that at low
selectivity most value bytes are never loaded.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass
class TableStats:
    """Access counters maintained by the functional layer."""

    inserts: int = 0
    insert_probes: int = 0  # slot inspections during inserts (collisions)
    lookups: int = 0
    lookup_probes: int = 0  # slot inspections during lookups
    value_reads: int = 0  # value-array accesses (matches only)

    def reset(self) -> None:
        self.inserts = 0
        self.insert_probes = 0
        self.lookups = 0
        self.lookup_probes = 0
        self.value_reads = 0

    def merge(self, other: "TableStats") -> None:
        """Fold another stats block into this one.

        Every counter is an order-independent sum over tuples, so
        merging per-worker blocks in any order equals the counts a
        serial execution would have recorded.
        """
        self.inserts += other.inserts
        self.insert_probes += other.insert_probes
        self.lookups += other.lookups
        self.lookup_probes += other.lookup_probes
        self.value_reads += other.value_reads

    def as_tuple(self) -> Tuple[int, int, int, int, int]:
        """All counters, for cross-backend equality assertions."""
        return (
            self.inserts,
            self.insert_probes,
            self.lookups,
            self.lookup_probes,
            self.value_reads,
        )

    @property
    def probe_factor(self) -> float:
        """Average slot inspections per lookup (1.0 for perfect hashing)."""
        if self.lookups == 0:
            return 1.0
        return self.lookup_probes / self.lookups

    @property
    def insert_factor(self) -> float:
        """Average slot inspections per insert (1.0 for perfect hashing)."""
        if self.inserts == 0:
            return 1.0
        return self.insert_probes / self.inserts


class HashTableBase:
    """Common state of the concrete hash tables."""

    #: sentinel for empty slots; workload keys are non-negative.
    EMPTY = -1

    #: set on :meth:`stats_view` copies.  Views share storage but reset
    #: ``size`` to zero, so schemes whose insert position depends on
    #: ``size`` (chaining's row cursor) or on a global occupancy count
    #: (open addressing's fit check) must refuse structure-mutating
    #: inserts through a view; only slot-disjoint schemes (perfect) can
    #: legally build through views.
    _is_view = False

    def __init__(self, capacity: int, key_dtype, value_dtype) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.keys = np.full(self.capacity, self.EMPTY, dtype=key_dtype)
        self.values = np.zeros(self.capacity, dtype=value_dtype)
        self.stats = TableStats()
        self.size = 0

    # ------------------------------------------------------------------
    @property
    def entry_bytes(self) -> int:
        return self.keys.dtype.itemsize + self.values.dtype.itemsize

    @property
    def table_bytes(self) -> int:
        return self.capacity * self.entry_bytes

    @property
    def load_factor(self) -> float:
        return self.size / self.capacity

    def modeled_bytes(self, modeled_build_tuples: int) -> int:
        """Table size at paper scale, preserving this table's headroom.

        A perfect table sized exactly |R| models to ``|R| * entry``;
        an open-addressing table with 50% fill models to ~2x that.
        """
        if self.size == 0:
            return self.capacity * self.entry_bytes
        if modeled_build_tuples == self.size:
            # Modeling the actual build side is exactly this table —
            # bypass the float ratio, whose truncation can lose an entry.
            return self.table_bytes
        ratio = self.capacity / self.size
        return int(modeled_build_tuples * ratio) * self.entry_bytes

    # ------------------------------------------------------------------
    # Concurrent-worker support
    # ------------------------------------------------------------------
    def stats_view(self) -> "HashTableBase":
        """A shallow view sharing this table's storage with private counters.

        Concurrent workers each probe (or, for slot-disjoint schemes,
        build) through their own view so the ``stats``/``size``
        read-modify-writes never race; :meth:`absorb_view` folds the
        per-worker deltas back.  The view's ``size`` starts at zero and
        accumulates only the view's own inserts.
        """
        view = copy.copy(self)
        view.stats = TableStats()
        view.size = 0
        view._is_view = True
        return view

    def _check_not_view(self) -> None:
        """Refuse structure-mutating inserts through a stats view."""
        if self._is_view:
            raise ValueError(
                f"{type(self).__name__}: insert through a stats_view() is "
                "not allowed — the view's size=0 reset would corrupt the "
                "insert cursor/occupancy accounting; insert through the "
                "owning table (or a per-shard table) instead"
            )

    def absorb_view(self, view: "HashTableBase") -> None:
        """Fold a view's private counters back into this table."""
        self.stats.merge(view.stats)
        self.size += view.size

    # ------------------------------------------------------------------
    def insert_batch(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Insert a batch of unique (key, value) pairs."""
        raise NotImplementedError

    def lookup_batch(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Returns (found_mask, values); values are valid where found."""
        raise NotImplementedError

    def _check_batch(self, keys: np.ndarray, values: np.ndarray = None) -> None:
        if keys.ndim != 1:
            raise ValueError("key batch must be one-dimensional")
        if values is not None and len(values) != len(keys):
            raise ValueError(
                f"batch mismatch: {len(keys)} keys vs {len(values)} values"
            )
        if len(keys) and keys.min() < 0:
            raise ValueError("keys must be non-negative (EMPTY sentinel is -1)")
