"""Perfect hash table: ``slot = key``, no conflicts by construction.

The paper's evaluation setting (Section 7.1): "we set up our
no-partitioning hash join with perfect hashing, i.e., we assume no hash
conflicts occur due to the uniqueness of primary keys".  The workload
generators emit R keys as a permutation of a dense domain, so the
identity mapping is a genuine minimal perfect hash.  Inserting a key
outside [0, capacity) is a contract violation and raises.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.hashtable.base import HashTableBase


class PerfectHashTable(HashTableBase):
    """Dense-domain perfect hashing (the paper's NOPA configuration)."""

    def __init__(self, capacity: int, key_dtype=np.int64, value_dtype=np.int64):
        super().__init__(capacity, key_dtype, value_dtype)

    def insert_batch(self, keys: np.ndarray, values: np.ndarray) -> None:
        self._check_batch(keys, values)
        if len(keys) == 0:
            return
        if int(keys.max()) >= self.capacity:
            raise ValueError(
                f"key {int(keys.max())} outside the perfect-hash domain "
                f"[0, {self.capacity})"
            )
        # Within-batch duplicates both map to the same slot, both see it
        # EMPTY, and the scatter keeps the last writer — while size and
        # stats.inserts would count every copy.  Reject them before any
        # mutation (mirroring the open-addressing contract).
        unique, counts = np.unique(keys, return_counts=True)
        if len(unique) != len(keys):
            raise ValueError(
                "perfect hashing requires unique keys; duplicate insert for "
                f"key {int(unique[counts > 1][0])}"
            )
        slots = keys.astype(np.int64)
        occupied = self.keys[slots] != self.EMPTY
        if occupied.any():
            raise ValueError(
                "perfect hashing requires unique keys; duplicate insert for "
                f"key {int(keys[occupied][0])}"
            )
        self.keys[slots] = keys
        self.values[slots] = values
        self.size += len(keys)
        self.stats.inserts += len(keys)
        self.stats.insert_probes += len(keys)

    def lookup_batch(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        self._check_batch(keys)
        self.stats.lookups += len(keys)
        self.stats.lookup_probes += len(keys)
        in_domain = keys < self.capacity
        slots = np.where(in_domain, keys, 0).astype(np.int64)
        found = in_domain & (self.keys[slots] == keys)
        values = np.zeros(len(keys), dtype=self.values.dtype)
        values[found] = self.values[slots[found]]
        self.stats.value_reads += int(found.sum())
        return found, values
