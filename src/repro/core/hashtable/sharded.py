"""Key-space–sharded hash table: contention-free parallel builds.

The paper's scale-up story (Figs. 16–17) assumes builds and probes that
parallelize without contention.  :class:`ShardedHashTable` delivers that
in the style of NUMA-aware shared-nothing tables: the key space is
partitioned across N shards, each a complete instance of an existing
scheme (perfect / open addressing / chaining), so

* **builds** are contention-free — each worker owns whole shards and no
  two workers ever touch the same storage;
* **probes** fan out by hash — each key is routed to exactly one shard,
  so per-key work is identical to the unsharded table of that scheme;
* **stats** stay exact — each shard keeps its own
  :class:`~repro.core.hashtable.base.TableStats`, and the wrapper's
  ``stats`` property merges them into precisely the counts a serial
  unsharded execution of the same per-shard batches records.

Routing must be *independent* of in-shard bucket selection or the
shards' buckets would see a skewed key population.  In-shard buckets use
the **low** bits of ``mix64`` (via ``bucket_of``), so the shard router
uses the **top** bits of the same mix.  The perfect scheme has no hash
at all — its contract is a dense key domain — so it shards by key
range (``key // shard_width``) and each shard stores shard-local keys.

Determinism: shard routing is a pure function of the key, so the
decomposition of a batch into per-shard sub-batches does not depend on
worker count or interleaving; building shards in any order (serial loop,
thread pool, forked processes) yields bit-identical storage and
identical merged stats.
"""

from __future__ import annotations

import copy
from typing import List, Tuple

import numpy as np

from repro.core.hashtable.base import HashTableBase, TableStats
from repro.core.hashtable.hash_functions import mix64

#: extra per-shard capacity for hash-routed schemes: mix64 routing is
#: near-uniform but not exact, so each shard gets 1.5x the fair share
#: (floor 32) to absorb statistical skew without overflowing.
_SHARD_SLACK_FLOOR = 32


def _shard_capacity(fair_share: int) -> int:
    return fair_share + max(_SHARD_SLACK_FLOOR, fair_share // 2)


class ShardedHashTable(HashTableBase):
    """N independent shards of one scheme behind the table interface.

    Args:
        scheme: inner scheme — ``perfect`` | ``open_addressing`` |
            ``chaining``.
        capacity_hint: expected total build size (same meaning as the
            unsharded factories).
        key_dtype / value_dtype: storage dtypes.
        n_shards: shard count; must be a power of two (the router takes
            ``log2(n_shards)`` top bits of the key mix).
    """

    def __init__(
        self,
        scheme: str,
        capacity_hint: int,
        key_dtype=np.int64,
        value_dtype=np.int64,
        n_shards: int = 4,
    ) -> None:
        if n_shards < 1 or n_shards & (n_shards - 1):
            raise ValueError(
                f"n_shards must be a positive power of two: {n_shards}"
            )
        if capacity_hint <= 0:
            raise ValueError(f"capacity hint must be positive: {capacity_hint}")
        from repro.core.hashtable.chaining import ChainingHashTable
        from repro.core.hashtable.open_addressing import OpenAddressingHashTable
        from repro.core.hashtable.perfect import PerfectHashTable

        self.scheme = scheme
        self.n_shards = n_shards
        self._shard_bits = (n_shards - 1).bit_length()
        fair_share = -(-capacity_hint // n_shards)  # ceil
        if scheme == "perfect":
            # Range partitioning keeps the dense-domain contract: shard
            # s owns keys [s*width, (s+1)*width) and stores them
            # shard-locally, so every shard is itself a minimal perfect
            # table over a dense domain.
            self.shard_width = fair_share
            self.shards: List[HashTableBase] = [
                PerfectHashTable(self.shard_width, key_dtype, value_dtype)
                for _ in range(n_shards)
            ]
        elif scheme == "open_addressing":
            self.shard_width = 0
            self.shards = [
                OpenAddressingHashTable(
                    _shard_capacity(fair_share), key_dtype, value_dtype
                )
                for _ in range(n_shards)
            ]
        elif scheme == "chaining":
            self.shard_width = 0
            self.shards = [
                ChainingHashTable(
                    _shard_capacity(fair_share), key_dtype, value_dtype
                )
                for _ in range(n_shards)
            ]
        else:
            raise ValueError(
                f"unknown hash scheme {scheme!r}; "
                "valid: perfect, open_addressing, chaining"
            )

    # ------------------------------------------------------------------
    # Aggregate table interface (ducks like one big HashTableBase)
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:  # type: ignore[override]
        return sum(shard.capacity for shard in self.shards)

    @property
    def size(self) -> int:  # type: ignore[override]
        return sum(shard.size for shard in self.shards)

    @property
    def stats(self) -> TableStats:  # type: ignore[override]
        """Merged per-shard counters — exactly the serial counts.

        Every counter is an order-independent per-tuple sum, so merging
        shard blocks in shard order equals what one unsharded table of
        the same per-key work would have recorded.  The returned block
        is a snapshot; mutate the shards' stats, not this object.
        """
        merged = TableStats()
        for shard in self.shards:
            merged.merge(shard.stats)
        return merged

    @property
    def keys(self) -> np.ndarray:  # type: ignore[override]
        """Shard-0 key array — the dtype carrier for pricing code."""
        return self.shards[0].keys

    @property
    def values(self) -> np.ndarray:  # type: ignore[override]
        return self.shards[0].values

    @property
    def entry_bytes(self) -> int:
        return self.shards[0].entry_bytes

    @property
    def table_bytes(self) -> int:
        return sum(shard.table_bytes for shard in self.shards)

    @property
    def load_factor(self) -> float:
        return self.size / self.capacity

    def modeled_bytes(self, modeled_build_tuples: int) -> int:
        """Paper-scale size: apportion the modeled build across shards.

        Each shard prices its share with its own scheme-specific
        ``modeled_bytes`` (so chaining shards include next pointers and
        heads).  Shares are proportional to executed shard sizes with
        the remainder spread over the first shards; at
        ``modeled_build_tuples == size`` every share equals the shard's
        executed size exactly.
        """
        total = self.size
        if total == 0:
            share = modeled_build_tuples // self.n_shards
            return sum(shard.modeled_bytes(share) for shard in self.shards)
        shares = [
            (modeled_build_tuples * shard.size) // total for shard in self.shards
        ]
        remainder = modeled_build_tuples - sum(shares)
        for i in range(remainder):
            shares[i % self.n_shards] += 1
        return sum(
            shard.modeled_bytes(share)
            for shard, share in zip(self.shards, shares)
        )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_of(self, keys: np.ndarray) -> np.ndarray:
        """Map each key to its owning shard (pure function of the key)."""
        if self.n_shards == 1:
            return np.zeros(len(keys), dtype=np.int64)
        if self.scheme == "perfect":
            sids = keys.astype(np.int64) // self.shard_width
            # Out-of-domain keys clip to the last shard, whose own
            # domain check turns them into lookup misses (or insert
            # errors), matching the unsharded perfect table.
            return np.minimum(sids, self.n_shards - 1)
        shift = np.uint64(64 - self._shard_bits)
        return (mix64(keys) >> shift).astype(np.int64)

    def partition_batch(self, keys: np.ndarray) -> List[np.ndarray]:
        """Index arrays routing ``keys`` to each shard (stable order)."""
        sids = self.shard_of(keys)
        order = np.argsort(sids, kind="stable")
        counts = np.bincount(sids, minlength=self.n_shards)
        return np.split(order, np.cumsum(counts)[:-1])

    def _local_keys(self, sid: int, keys: np.ndarray) -> np.ndarray:
        if self.scheme == "perfect":
            return keys - sid * self.shard_width
        return keys

    def insert_shard(
        self, sid: int, keys: np.ndarray, values: np.ndarray
    ) -> None:
        """Insert pre-routed keys into one shard (caller owns routing).

        This is the contention-free parallel build entry point: each
        worker calls it only for shards it owns, so no storage, stats,
        or cursor is ever shared between workers.
        """
        self.shards[sid].insert_batch(self._local_keys(sid, keys), values)

    # ------------------------------------------------------------------
    # Batch interface
    # ------------------------------------------------------------------
    def insert_batch(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Route and insert; identical to any parallel shard build.

        Shards are filled in shard order with stably-ordered sub-
        batches, the same decomposition the parallel builders use, so
        serial and parallel builds are bit-identical.  Duplicate keys
        route to the same shard, where the scheme's own duplicate
        rejection fires.
        """
        self._check_batch(keys, values)
        self._check_not_view()
        if len(keys) == 0:
            return
        for sid, index in enumerate(self.partition_batch(keys)):
            if len(index):
                self.insert_shard(sid, keys[index], values[index])

    def lookup_batch(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Fan the probe out by hash; scatter results back to key order."""
        self._check_batch(keys)
        found = np.zeros(len(keys), dtype=bool)
        values = np.zeros(len(keys), dtype=self.values.dtype)
        if len(keys) == 0:
            return found, values
        for sid, index in enumerate(self.partition_batch(keys)):
            if not len(index):
                continue
            local = self._local_keys(sid, keys[index])
            shard_found, shard_values = self.shards[sid].lookup_batch(local)
            found[index] = shard_found
            values[index] = shard_values
        return found, values

    # ------------------------------------------------------------------
    # Concurrent-worker support
    # ------------------------------------------------------------------
    def stats_view(self) -> "ShardedHashTable":
        """A view with per-shard stats views (probe-side counters)."""
        view = copy.copy(self)
        view.shards = [shard.stats_view() for shard in self.shards]
        view._is_view = True
        return view

    def absorb_view(self, view: "ShardedHashTable") -> None:
        """Fold a view's per-shard counters back shard-by-shard."""
        for shard, shard_view in zip(self.shards, view.shards):
            shard.absorb_view(shard_view)
