"""Chaining hash table with array-backed buckets.

Chains are represented with a ``next`` index array (the classic
"bucket-chained" layout used by main-memory joins): ``heads[b]`` points
at the newest entry of bucket ``b``, each entry stores key, value, and
the index of the next entry.  Inserting prepends — exactly the atomic
exchange a parallel chaining build performs on the head pointer.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.hashtable.base import HashTableBase
from repro.core.hashtable.hash_functions import bucket_of, next_power_of_two


class ChainingHashTable(HashTableBase):
    """Bucket-chained table; one entry slot per expected build tuple.

    Duplicate keys are rejected by default — the same contract perfect
    hashing and open addressing enforce, so cross-scheme probe results
    never diverge on the same input (a chain *can* hold several entries
    per key, but :meth:`lookup_batch` stops at the first hit, silently
    shadowing the older ones).  Multi-match workloads that genuinely
    want shadow-free duplicate storage opt in with
    ``allow_duplicates=True``.
    """

    NIL = -1

    def __init__(
        self,
        expected_size: int,
        key_dtype=np.int64,
        value_dtype=np.int64,
        buckets_per_entry: float = 1.0,
        allow_duplicates: bool = False,
    ):
        if buckets_per_entry <= 0:
            raise ValueError("buckets_per_entry must be positive")
        capacity = max(1, int(expected_size))
        super().__init__(capacity, key_dtype, value_dtype)
        n_buckets = next_power_of_two(max(2, int(capacity * buckets_per_entry)))
        self.heads = np.full(n_buckets, self.NIL, dtype=np.int64)
        self.next = np.full(capacity, self.NIL, dtype=np.int64)
        self.n_buckets = n_buckets
        self.allow_duplicates = allow_duplicates

    @property
    def table_bytes(self) -> int:
        head_bytes = self.heads.nbytes
        entry_bytes = self.keys.nbytes + self.values.nbytes + self.next.nbytes
        return head_bytes + entry_bytes

    def modeled_bytes(self, modeled_build_tuples: int) -> int:
        """Paper-scale size including ``next`` pointers and bucket heads.

        The base implementation prices ``entry_bytes = key + value``
        only, undercounting a chained table by the 8-byte ``next`` entry
        and the head array — enough to under-reserve memory in the
        Fig. 8/11 placement decisions.  Scale the entry region (keys,
        values, next) and the head array by the same capacity ratio so
        ``modeled_bytes(size) == table_bytes`` for a full table.
        """
        if self.size == 0 or modeled_build_tuples == self.size:
            return self.table_bytes
        ratio = self.capacity / self.size
        modeled_capacity = int(modeled_build_tuples * ratio)
        per_entry = self.entry_bytes + self.next.dtype.itemsize
        modeled_heads = int(
            round(self.n_buckets * (modeled_capacity / self.capacity))
        )
        return modeled_capacity * per_entry + modeled_heads * self.heads.dtype.itemsize

    def _contains_any(self, keys: np.ndarray) -> np.ndarray:
        """Stats-free membership probe (validation only, never priced)."""
        n = len(keys)
        present = np.zeros(n, dtype=bool)
        if n == 0:
            return present
        cursor = self.heads[bucket_of(keys, self.n_buckets)]
        pending = np.flatnonzero(cursor != self.NIL)
        cursor = cursor[pending]
        while len(pending):
            hit = self.keys[cursor] == keys[pending]
            present[pending[hit]] = True
            cursor = self.next[cursor]
            keep = ~hit & (cursor != self.NIL)
            pending = pending[keep]
            cursor = cursor[keep]
        return present

    def insert_batch(self, keys: np.ndarray, values: np.ndarray) -> None:
        self._check_batch(keys, values)
        # A view's size=0 reset would restart the row cursor at zero and
        # overwrite live entries — structure mutation must go through
        # the owning table.
        self._check_not_view()
        n = len(keys)
        if n == 0:
            return
        if self.size + n > self.capacity:
            raise ValueError(
                f"batch of {n} does not fit: {self.size}/{self.capacity}"
            )
        if not self.allow_duplicates:
            unique, counts = np.unique(keys, return_counts=True)
            if len(unique) != len(keys):
                raise ValueError(
                    "duplicate key insert (join build expects unique keys): "
                    f"{int(unique[counts > 1][0])}"
                )
            present = self._contains_any(keys)
            if present.any():
                raise ValueError(
                    "duplicate key insert (join build expects unique keys): "
                    f"{int(keys[present][0])}"
                )
        rows = np.arange(self.size, self.size + n)
        buckets = bucket_of(keys, self.n_buckets)
        self.keys[rows] = keys
        self.values[rows] = values
        # Sequentialize head swaps per bucket, batch-wise: group entries
        # by bucket (stable, so batch order is preserved within a group);
        # the first entry of each group links to the bucket's old head,
        # later entries link to their in-batch predecessor, and the last
        # entry of each group becomes the new head.
        order = np.argsort(buckets, kind="stable")
        sorted_buckets = buckets[order]
        sorted_rows = rows[order]
        starts = np.empty(n, dtype=bool)
        starts[0] = True
        np.not_equal(sorted_buckets[1:], sorted_buckets[:-1], out=starts[1:])
        chain = np.empty(n, dtype=np.int64)
        chain[starts] = self.heads[sorted_buckets[starts]]
        chain[~starts] = sorted_rows[np.flatnonzero(~starts) - 1]
        self.next[sorted_rows] = chain
        lasts = np.empty(n, dtype=bool)
        lasts[-1] = True
        np.not_equal(sorted_buckets[1:], sorted_buckets[:-1], out=lasts[:-1])
        self.heads[sorted_buckets[lasts]] = sorted_rows[lasts]
        self.size += n
        self.stats.inserts += n
        self.stats.insert_probes += n

    def lookup_batch(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        self._check_batch(keys)
        n = len(keys)
        self.stats.lookups += n
        found = np.zeros(n, dtype=bool)
        values = np.zeros(n, dtype=self.values.dtype)
        if n == 0:
            return found, values
        # Every lookup inspects its bucket head — chained tables pay one
        # extra dependent read compared to open addressing.
        self.stats.lookup_probes += n
        cursor = self.heads[bucket_of(keys, self.n_buckets)]
        pending = np.flatnonzero(cursor != self.NIL)
        cursor = cursor[pending]
        while len(pending):
            self.stats.lookup_probes += len(pending)
            hit = self.keys[cursor] == keys[pending]
            if hit.any():
                rows = pending[hit]
                found[rows] = True
                values[rows] = self.values[cursor[hit]]
                self.stats.value_reads += int(hit.sum())
            cursor = self.next[cursor]
            keep = ~hit & (cursor != self.NIL)
            pending = pending[keep]
            cursor = cursor[keep]
        return found, values
