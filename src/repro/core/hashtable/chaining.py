"""Chaining hash table with array-backed buckets.

Chains are represented with a ``next`` index array (the classic
"bucket-chained" layout used by main-memory joins): ``heads[b]`` points
at the newest entry of bucket ``b``, each entry stores key, value, and
the index of the next entry.  Inserting prepends — exactly the atomic
exchange a parallel chaining build performs on the head pointer.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.hashtable.base import HashTableBase
from repro.core.hashtable.hash_functions import bucket_of, next_power_of_two


class ChainingHashTable(HashTableBase):
    """Bucket-chained table; one entry slot per expected build tuple."""

    NIL = -1

    def __init__(
        self,
        expected_size: int,
        key_dtype=np.int64,
        value_dtype=np.int64,
        buckets_per_entry: float = 1.0,
    ):
        if buckets_per_entry <= 0:
            raise ValueError("buckets_per_entry must be positive")
        capacity = max(1, int(expected_size))
        super().__init__(capacity, key_dtype, value_dtype)
        n_buckets = next_power_of_two(max(2, int(capacity * buckets_per_entry)))
        self.heads = np.full(n_buckets, self.NIL, dtype=np.int64)
        self.next = np.full(capacity, self.NIL, dtype=np.int64)
        self.n_buckets = n_buckets

    @property
    def table_bytes(self) -> int:
        head_bytes = self.heads.nbytes
        entry_bytes = self.keys.nbytes + self.values.nbytes + self.next.nbytes
        return head_bytes + entry_bytes

    def insert_batch(self, keys: np.ndarray, values: np.ndarray) -> None:
        self._check_batch(keys, values)
        n = len(keys)
        if n == 0:
            return
        if self.size + n > self.capacity:
            raise ValueError(
                f"batch of {n} does not fit: {self.size}/{self.capacity}"
            )
        rows = np.arange(self.size, self.size + n)
        buckets = bucket_of(keys, self.n_buckets)
        self.keys[rows] = keys
        self.values[rows] = values
        # Sequentialize head swaps per bucket, batch-wise: group entries
        # by bucket (stable, so batch order is preserved within a group);
        # the first entry of each group links to the bucket's old head,
        # later entries link to their in-batch predecessor, and the last
        # entry of each group becomes the new head.
        order = np.argsort(buckets, kind="stable")
        sorted_buckets = buckets[order]
        sorted_rows = rows[order]
        starts = np.empty(n, dtype=bool)
        starts[0] = True
        np.not_equal(sorted_buckets[1:], sorted_buckets[:-1], out=starts[1:])
        chain = np.empty(n, dtype=np.int64)
        chain[starts] = self.heads[sorted_buckets[starts]]
        chain[~starts] = sorted_rows[np.flatnonzero(~starts) - 1]
        self.next[sorted_rows] = chain
        lasts = np.empty(n, dtype=bool)
        lasts[-1] = True
        np.not_equal(sorted_buckets[1:], sorted_buckets[:-1], out=lasts[:-1])
        self.heads[sorted_buckets[lasts]] = sorted_rows[lasts]
        self.size += n
        self.stats.inserts += n
        self.stats.insert_probes += n

    def lookup_batch(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        self._check_batch(keys)
        n = len(keys)
        self.stats.lookups += n
        found = np.zeros(n, dtype=bool)
        values = np.zeros(n, dtype=self.values.dtype)
        if n == 0:
            return found, values
        # Every lookup inspects its bucket head — chained tables pay one
        # extra dependent read compared to open addressing.
        self.stats.lookup_probes += n
        cursor = self.heads[bucket_of(keys, self.n_buckets)]
        pending = np.flatnonzero(cursor != self.NIL)
        cursor = cursor[pending]
        while len(pending):
            self.stats.lookup_probes += len(pending)
            hit = self.keys[cursor] == keys[pending]
            if hit.any():
                rows = pending[hit]
                found[rows] = True
                values[rows] = self.values[cursor[hit]]
                self.stats.value_reads += int(hit.sum())
            cursor = self.next[cursor]
            keep = ~hit & (cursor != self.NIL)
            pending = pending[keep]
            cursor = cursor[keep]
        return found, values
