"""Join workload builders (Table 2 and the evaluation's variants).

========  ==============  ==========  ==========  ===========
Workload  key/payload     |R|         |S|         note
========  ==============  ==========  ==========  ===========
A         8 / 8 bytes     2^27        2^31        from [10]
B         8 / 8 bytes     2^18        2^31        R fits caches
C         4 / 4 bytes     1024 * 10^6 1024 * 10^6 from [54]
========  ==============  ==========  ==========  ===========

R's keys are a permutation of a dense domain (primary keys), which is
what justifies the paper's perfect-hashing setup.  Each S tuple matches
exactly one R tuple (uniform foreign keys) unless skew or selectivity
variants say otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.data.relation import Relation
from repro.hardware.cache import HotSetProfile
from repro.workloads.zipf import zipf_ranks

#: Table 2 cardinalities.
CARDINALITY_A_R = 2**27
CARDINALITY_A_S = 2**31
CARDINALITY_B_R = 2**18
CARDINALITY_B_S = 2**31
CARDINALITY_C = 1024 * 10**6

#: Default execution scale: small enough for sub-second generation,
#: large enough for stable traffic counts.
DEFAULT_SCALE = 2.0**-11


@dataclass
class JoinWorkload:
    """A build relation R, a probe relation S, and their metadata."""

    name: str
    r: Relation
    s: Relation
    zipf_exponent: float = 0.0
    selectivity: float = 1.0
    description: str = ""

    @property
    def total_modeled_tuples(self) -> int:
        return self.r.modeled_tuples + self.s.modeled_tuples

    @property
    def total_modeled_bytes(self) -> int:
        return self.r.modeled_bytes + self.s.modeled_bytes

    def hot_set_profile(self) -> Optional[HotSetProfile]:
        """Skew profile of probe accesses at *modeled* scale (Figure 19)."""
        if self.zipf_exponent <= 0:
            return None
        return HotSetProfile.zipf(self.r.modeled_tuples, self.zipf_exponent)

    def placed_for(
        self, transfer_method: str, location: Optional[str] = None
    ) -> "JoinWorkload":
        """Copy with both relations allocated as the method requires.

        Table 1 ties each transfer method to a memory kind (Zero-Copy
        needs pinned pages, UM methods need unified allocations); the
        cost model enforces that, so benchmarks sweeping methods must
        reallocate their inputs accordingly — exactly what the paper's
        harness does between measurement series.
        """
        from repro.transfer.methods import get_method

        kind = get_method(transfer_method).required_kind
        return replace(
            self,
            r=self.r.placed(location or self.r.location, kind=kind),
            s=self.s.placed(location or self.s.location, kind=kind),
        )


def _executed(modeled: int, scale: float) -> int:
    if not 0 < scale <= 1:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    return max(64, min(modeled, int(round(modeled * scale))))


def _key_dtype(key_bytes: int) -> np.dtype:
    if key_bytes == 4:
        return np.dtype(np.int32)
    if key_bytes == 8:
        return np.dtype(np.int64)
    raise ValueError(f"unsupported key width: {key_bytes} bytes")


def _build_relations(
    name: str,
    modeled_r: int,
    modeled_s: int,
    scale: float,
    key_bytes: int,
    payload_bytes: int,
    zipf_exponent: float,
    selectivity: float,
    seed: int,
) -> JoinWorkload:
    if not 0.0 <= selectivity <= 1.0:
        raise ValueError(f"selectivity must be in [0, 1], got {selectivity}")
    rng = np.random.default_rng(seed)
    executed_r = _executed(modeled_r, scale)
    executed_s = _executed(modeled_s, scale)
    kdtype = _key_dtype(key_bytes)
    pdtype = _key_dtype(payload_bytes)  # payloads are integers of same widths

    # R: dense primary keys, permuted. Payload = key * 3 + 1, so tests can
    # verify join results without a reference table.
    r_keys = rng.permutation(executed_r).astype(kdtype)
    r_payload = (r_keys.astype(np.int64) * 3 + 1).astype(pdtype)

    # S: foreign keys into R's dense domain.
    if zipf_exponent > 0:
        # Ranks map to R keys so rank 0 is the hottest key.
        ranks = zipf_ranks(executed_r, zipf_exponent, executed_s, rng)
        s_keys = ranks.astype(kdtype)
    else:
        s_keys = rng.integers(0, executed_r, size=executed_s).astype(kdtype)
    if selectivity < 1.0:
        # Misses draw from a disjoint domain, keeping |R| (and hence the
        # hash table size) constant while the match rate varies (Fig. 20).
        miss = rng.random(executed_s) >= selectivity
        miss_keys = rng.integers(
            executed_r, 2 * executed_r, size=int(miss.sum())
        ).astype(kdtype)
        s_keys = s_keys.copy()
        s_keys[miss] = miss_keys
    s_payload = (s_keys.astype(np.int64) * 7 + 5).astype(pdtype)

    r = Relation(name="R", key=r_keys, payload=r_payload, modeled_tuples=modeled_r)
    s = Relation(name="S", key=s_keys, payload=s_payload, modeled_tuples=modeled_s)
    return JoinWorkload(
        name=name,
        r=r,
        s=s,
        zipf_exponent=zipf_exponent,
        selectivity=selectivity,
    )


def workload_a(
    scale: float = DEFAULT_SCALE,
    seed: int = 42,
    size_scale: float = 1.0,
) -> JoinWorkload:
    """Workload A: 2 GiB ⋈ 32 GiB with 16-byte tuples (from Blanas et al.).

    ``size_scale`` shrinks the *modeled* cardinalities too (Figure 13
    scales the workloads down to fit into GPU memory).
    """
    modeled_r = int(CARDINALITY_A_R * size_scale)
    modeled_s = int(CARDINALITY_A_S * size_scale)
    wl = _build_relations(
        "A", modeled_r, modeled_s, scale, 8, 8, 0.0, 1.0, seed
    )
    wl.description = "2 GiB ⋈ 32 GiB, 8/8-byte tuples"
    return wl


def workload_b(
    scale: float = DEFAULT_SCALE,
    seed: int = 43,
    size_scale: float = 1.0,
) -> JoinWorkload:
    """Workload B: 4 MiB ⋈ 32 GiB — R fits the CPU L3 and GPU L2 caches.

    ``size_scale`` shrinks only the probe side: R must stay cache-sized
    (it *is* the point of workload B).
    """
    modeled_s = int(CARDINALITY_B_S * size_scale)
    wl = _build_relations(
        "B", CARDINALITY_B_R, modeled_s, scale, 8, 8, 0.0, 1.0, seed
    )
    wl.description = "4 MiB ⋈ 32 GiB, 8/8-byte tuples (small dimension table)"
    return wl


def workload_c(
    scale: float = DEFAULT_SCALE,
    seed: int = 44,
    size_scale: float = 1.0,
    tuple_bytes: int = 8,
) -> JoinWorkload:
    """Workload C: |R| = |S| = 1024e6 (from Kim et al.).

    Table 2 uses 4/4-byte tuples; the scaling experiments (Figures 16-18)
    use a 16-byte-tuple variant, selected with ``tuple_bytes=16``.
    """
    if tuple_bytes not in (8, 16):
        raise ValueError(f"workload C supports 8 or 16 byte tuples: {tuple_bytes}")
    width = 4 if tuple_bytes == 8 else 8
    modeled = int(CARDINALITY_C * size_scale)
    wl = _build_relations(
        "C", modeled, modeled, scale, width, width, 0.0, 1.0, seed
    )
    wl.description = f"|R| = |S|, {width}/{width}-byte tuples"
    return wl


def workload_skewed(
    zipf_exponent: float,
    scale: float = DEFAULT_SCALE,
    seed: int = 45,
) -> JoinWorkload:
    """Workload A with a Zipf-distributed probe relation (Figure 19)."""
    wl = _build_relations(
        "A-skew",
        CARDINALITY_A_R,
        CARDINALITY_A_S,
        scale,
        8,
        8,
        zipf_exponent,
        1.0,
        seed,
    )
    wl.description = f"workload A, S ~ Zipf({zipf_exponent})"
    return wl


def workload_selectivity(
    selectivity: float,
    scale: float = DEFAULT_SCALE,
    seed: int = 46,
) -> JoinWorkload:
    """Workload A with reduced join selectivity (Figure 20)."""
    wl = _build_relations(
        "A-sel",
        CARDINALITY_A_R,
        CARDINALITY_A_S,
        scale,
        8,
        8,
        0.0,
        selectivity,
        seed,
    )
    wl.description = f"workload A, selectivity {selectivity:.0%}"
    return wl


def workload_ratio(
    ratio: int,
    scale: float = DEFAULT_SCALE,
    seed: int = 47,
    modeled_r: int = 128 * 10**6,
) -> JoinWorkload:
    """Workload C variant with |R| : |S| = 1 : ratio (Figure 18).

    R is fixed at 2 GiB of 16-byte tuples; S grows to 30.5 GiB at 1:16.
    """
    if ratio < 1:
        raise ValueError(f"ratio must be >= 1, got {ratio}")
    wl = _build_relations(
        f"C-1:{ratio}",
        modeled_r,
        modeled_r * ratio,
        scale,
        8,
        8,
        0.0,
        1.0,
        seed,
    )
    wl.description = f"1:{ratio} build-to-probe ratio, 16-byte tuples"
    return wl
