"""TPC-H lineitem generator for query 6 (Figure 15).

Q6 is the paper's selection–aggregation workload::

    SELECT sum(l_extendedprice * l_discount)
    FROM lineitem
    WHERE l_shipdate >= date '1994-01-01'
      AND l_shipdate < date '1995-01-01'
      AND l_discount BETWEEN 0.05 AND 0.07
      AND l_quantity < 24;

The generator follows dbgen's essentials: ~6M rows per scale factor,
quantity uniform in [1, 50], discount in {0.00 .. 0.10}, and shipdates
spread over 1992–1998.  Like dbgen output (which is ordered by order
date), shipdates are *clustered*: generated sorted with bounded jitter.
That clustering is what lets the branching variant skip whole cache
lines of the other columns (Section 7.2.4), because the shipdate
predicate fails for long runs of consecutive rows.

Four 4-byte columns give 16 bytes/row: SF100 = 8.9 GiB, SF1000 =
89.4 GiB, matching the paper's working-set sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.hardware.memory import MemoryKind

ROWS_PER_SF = 6_000_000
BYTES_PER_ROW = 16  # 4 columns x 4 bytes

#: Days since 1992-01-01; shipdates span about seven years.
SHIPDATE_DAYS = 7 * 365
Q6_SHIPDATE_LO = 2 * 365  # 1994-01-01
Q6_SHIPDATE_HI = 3 * 365  # 1995-01-01
Q6_DISCOUNT_LO = 0.05
Q6_DISCOUNT_HI = 0.07
Q6_QUANTITY_LT = 24

Q6_PREDICATE = (
    "l_shipdate in [1994-01-01, 1995-01-01) and "
    "l_discount in [0.05, 0.07] and l_quantity < 24"
)


@dataclass
class Q6Workload:
    """Generated lineitem columns plus modeled cardinality."""

    shipdate: np.ndarray  # int32 days since 1992-01-01
    discount: np.ndarray  # float32, {0.00, 0.01, ..., 0.10}
    quantity: np.ndarray  # int32 in [1, 50]
    extendedprice: np.ndarray  # float32
    scale_factor: float
    modeled_rows: int
    location: str = "cpu0-mem"
    kind: MemoryKind = MemoryKind.PAGEABLE

    @property
    def executed_rows(self) -> int:
        return len(self.shipdate)

    @property
    def modeled_bytes(self) -> int:
        return self.modeled_rows * BYTES_PER_ROW

    @property
    def model_factor(self) -> float:
        if self.executed_rows == 0:
            return 1.0
        return self.modeled_rows / self.executed_rows

    def columns(self) -> Dict[str, np.ndarray]:
        """The four lineitem columns, keyed by TPC-H name."""
        return {
            "l_shipdate": self.shipdate,
            "l_discount": self.discount,
            "l_quantity": self.quantity,
            "l_extendedprice": self.extendedprice,
        }


def lineitem_q6(
    scale_factor: float,
    scale: float = 2.0**-9,
    seed: int = 7,
    shipdate_jitter_days: int = 60,
) -> Q6Workload:
    """Generate a Q6 lineitem table.

    Args:
        scale_factor: TPC-H scale factor; modeled rows = 6M x SF.
        scale: executed fraction of the modeled rows.
        shipdate_jitter_days: window of the shipdate clustering; 0 means
            perfectly sorted shipdates, larger values weaken clustering
            (and with it the branching variant's skip opportunity).
    """
    if scale_factor <= 0:
        raise ValueError(f"scale factor must be positive: {scale_factor}")
    if not 0 < scale <= 1:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    modeled_rows = int(ROWS_PER_SF * scale_factor)
    executed_rows = max(4096, min(modeled_rows, int(round(modeled_rows * scale))))
    rng = np.random.default_rng(seed)

    base = np.sort(rng.integers(0, SHIPDATE_DAYS, size=executed_rows))
    if shipdate_jitter_days > 0:
        jitter = rng.integers(
            -shipdate_jitter_days, shipdate_jitter_days + 1, size=executed_rows
        )
        shipdate = np.clip(base + jitter, 0, SHIPDATE_DAYS - 1).astype(np.int32)
    else:
        shipdate = base.astype(np.int32)

    discount = (rng.integers(0, 11, size=executed_rows) / 100.0).astype(np.float32)
    quantity = rng.integers(1, 51, size=executed_rows).astype(np.int32)
    extendedprice = (rng.random(executed_rows, dtype=np.float32) * 90000.0) + 900.0

    return Q6Workload(
        shipdate=shipdate,
        discount=discount,
        quantity=quantity,
        extendedprice=extendedprice.astype(np.float32),
        scale_factor=scale_factor,
        modeled_rows=modeled_rows,
    )
