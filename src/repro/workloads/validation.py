"""Workload integrity validation.

The evaluation's conclusions depend on the generators honouring their
contracts (dense unique primary keys, exact foreign-key matching,
controlled selectivity and skew).  :func:`validate_workload` checks
those contracts and returns a :class:`ValidationReport`; generators'
tests and the benchmark harness use it, and downstream users can run it
over their own data before joining.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.workloads.builders import JoinWorkload


@dataclass
class ValidationReport:
    """Outcome of workload validation."""

    workload: str
    checks: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)
    match_rate: float = 0.0
    top_1000_mass: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def record(self, name: str, passed: bool, detail: str = "") -> None:
        self.checks.append(name)
        if not passed:
            message = f"{name}: FAILED"
            if detail:
                message += f" ({detail})"
            self.failures.append(message)

    def __str__(self) -> str:
        status = "ok" if self.ok else f"{len(self.failures)} failures"
        return f"ValidationReport({self.workload}: {len(self.checks)} checks, {status})"


def validate_workload(
    workload: JoinWorkload,
    selectivity_tolerance: float = 0.03,
) -> ValidationReport:
    """Check a join workload's generator contracts."""
    report = ValidationReport(workload=workload.name)
    r, s = workload.r, workload.s

    # Primary keys: unique.
    unique_keys = len(np.unique(r.key)) == r.executed_tuples
    report.record("r-keys-unique", unique_keys)

    # Primary keys: dense domain [0, |R|) — the perfect-hash contract.
    dense = bool(
        r.executed_tuples == 0
        or (int(r.key.min()) == 0 and int(r.key.max()) == r.executed_tuples - 1)
    )
    report.record("r-keys-dense", dense and unique_keys)

    # Cardinalities: modeled >= executed, positive.
    report.record(
        "cardinalities",
        r.modeled_tuples >= r.executed_tuples > 0
        and s.modeled_tuples >= s.executed_tuples > 0,
    )

    # Selectivity: measured match rate near the declared one.
    matches = np.isin(s.key, r.key)
    report.match_rate = float(matches.mean()) if s.executed_tuples else 0.0
    report.record(
        "selectivity",
        abs(report.match_rate - workload.selectivity) <= selectivity_tolerance,
        detail=(
            f"declared {workload.selectivity:.3f}, "
            f"measured {report.match_rate:.3f}"
        ),
    )

    # Skew: the top-1000 key mass must be consistent with the exponent.
    if s.executed_tuples:
        _, counts = np.unique(s.key[matches], return_counts=True)
        if len(counts):
            top = np.sort(counts)[::-1][:1000].sum()
            report.top_1000_mass = float(top / matches.sum()) if matches.any() else 0.0
    if workload.zipf_exponent >= 1.5:
        report.record(
            "skew-concentration",
            report.top_1000_mass > 0.5,
            detail=f"top-1000 mass {report.top_1000_mass:.3f}",
        )
    elif workload.zipf_exponent == 0.0 and workload.selectivity == 1.0:
        expected = min(1.0, 1000 / max(1, r.executed_tuples))
        report.record(
            "skew-uniformity",
            report.top_1000_mass <= max(3 * expected, 0.05),
            detail=f"top-1000 mass {report.top_1000_mass:.3f}",
        )

    # Dtypes: key and payload widths match (Table 2's layouts).
    report.record(
        "dtype-widths",
        r.key_bytes in (4, 8) and r.key_bytes == s.key_bytes,
    )
    return report


def assert_valid(workload: JoinWorkload) -> None:
    """Raise AssertionError with the failure list if validation fails."""
    report = validate_workload(workload)
    if not report.ok:
        raise AssertionError(
            f"workload {workload.name} failed validation: "
            + "; ".join(report.failures)
        )
