"""Workload generators: Table 2's A/B/C joins, skew, selectivity,
build:probe ratios, and TPC-H Q6 data.

All generators accept a ``scale`` in (0, 1]: the executed cardinality is
``modeled * scale`` (the functional layer runs on it), while the modeled
cardinality stays at paper scale for the cost model.
"""

from repro.workloads.builders import (
    JoinWorkload,
    workload_a,
    workload_b,
    workload_c,
    workload_ratio,
    workload_selectivity,
    workload_skewed,
)
from repro.workloads.custom import (
    SchemeRecommendation,
    inspect_build_keys,
    make_join_workload,
)
from repro.workloads.tpch import Q6_PREDICATE, Q6Workload, lineitem_q6
from repro.workloads.validation import assert_valid, validate_workload
from repro.workloads.zipf import empirical_hot_mass, zipf_ranks

__all__ = [
    "JoinWorkload",
    "workload_a",
    "workload_b",
    "workload_c",
    "workload_ratio",
    "workload_selectivity",
    "workload_skewed",
    "Q6_PREDICATE",
    "Q6Workload",
    "lineitem_q6",
    "SchemeRecommendation",
    "inspect_build_keys",
    "make_join_workload",
    "assert_valid",
    "validate_workload",
    "empirical_hot_mass",
    "zipf_ranks",
]
