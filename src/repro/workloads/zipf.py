"""Zipf-distributed rank sampling and empirical hot-set profiles.

Figure 19 skews the probe relation with Zipf exponents between 0 and
1.75; "with an exponent of 1.5, there is a 97.5% chance of hitting one
of the top-1000 tuples".  :func:`zipf_ranks` samples ranks by inverse
transform over the exact pmf (fast and reproducible for the executed
cardinalities used here); :func:`empirical_hot_mass` turns generated
keys into a :class:`HotSetProfile` for the cache model.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.hardware.cache import HotSetProfile

#: Seed of the fallback generator when no ``rng`` is injected.  A fixed
#: seed keeps default sampling reproducible run-to-run; callers that
#: want independent draws pass their own Generator.
DEFAULT_SEED = 0


def zipf_ranks(
    n_items: int,
    exponent: float,
    size: int,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Sample ``size`` ranks in [0, n_items) with pmf ~ 1/(rank+1)^exponent.

    ``exponent == 0`` is the uniform distribution.  Rank 0 is the hottest
    item.  Sampling is exact inverse-CDF over the finite domain.
    """
    if n_items <= 0:
        raise ValueError(f"need a positive number of items, got {n_items}")
    if exponent < 0:
        raise ValueError(f"Zipf exponent must be non-negative, got {exponent}")
    if size < 0:
        raise ValueError(f"sample size must be non-negative, got {size}")
    rng = rng or np.random.default_rng(DEFAULT_SEED)
    if exponent == 0:
        return rng.integers(0, n_items, size=size, dtype=np.int64)
    weights = 1.0 / np.power(np.arange(1, n_items + 1, dtype=np.float64), exponent)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    uniforms = rng.random(size)
    return np.searchsorted(cdf, uniforms, side="right").astype(np.int64)


def top_k_mass(exponent: float, n_items: int, k: int) -> float:
    """Analytic fraction of accesses hitting the ``k`` hottest items."""
    profile = HotSetProfile.zipf(n_items, exponent)
    return profile.mass_of_top(k)


def empirical_hot_mass(keys: np.ndarray) -> HotSetProfile:
    """HotSetProfile measured from an observed key stream.

    Counts key frequencies, sorts them descending, and exposes the
    cumulative access mass of the top-k distinct keys (with linear
    interpolation between integer ks for cache-capacity queries):
    ``mass(2.5)`` sits halfway between ``mass(2)`` and ``mass(3)``.
    """
    if keys.size == 0:
        raise ValueError("cannot profile an empty key stream")
    _, counts = np.unique(keys, return_counts=True)
    counts = np.sort(counts)[::-1].astype(np.float64)
    cumulative = np.cumsum(counts)
    total = cumulative[-1]
    distinct = len(counts)

    def mass(k: float) -> float:
        if k <= 0:
            return 0.0
        if k >= distinct:
            return 1.0
        lower = int(k)
        mass_lower = float(cumulative[lower - 1] / total) if lower else 0.0
        fraction = k - lower
        if fraction == 0.0:
            return mass_lower
        mass_upper = float(cumulative[lower] / total)
        return mass_lower + fraction * (mass_upper - mass_lower)

    return HotSetProfile(distinct_targets=distinct, mass_of_top=mass)
