"""Build join workloads from user-provided key arrays.

The Table 2 generators emit dense primary keys (the perfect-hashing
contract).  Real data rarely looks like that; this module wraps
arbitrary key/payload arrays into a :class:`JoinWorkload`, checks which
hash schemes are applicable, and recommends one:

* dense unique keys            -> ``perfect`` (the paper's setting)
* unique but sparse keys       -> ``open_addressing``
* anything else                -> rejected (the build side of an
  equi-join on a primary key must be unique)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.data.relation import Relation
from repro.workloads.builders import JoinWorkload


@dataclass(frozen=True)
class SchemeRecommendation:
    """Applicable hash schemes for a build-side key set."""

    recommended: str
    dense: bool
    unique: bool
    reason: str


def inspect_build_keys(keys: np.ndarray) -> SchemeRecommendation:
    """Classify a build-side key column and recommend a hash scheme."""
    if keys.ndim != 1:
        raise ValueError("keys must be one-dimensional")
    if len(keys) == 0:
        return SchemeRecommendation(
            recommended="open_addressing",
            dense=False,
            unique=True,
            reason="empty build side; any scheme works",
        )
    if keys.min() < 0:
        raise ValueError("keys must be non-negative")
    unique = len(np.unique(keys)) == len(keys)
    if not unique:
        return SchemeRecommendation(
            recommended="chaining",
            dense=False,
            unique=False,
            reason=(
                "duplicate build keys: only chaining (opted in via "
                "allow_duplicates=True) holds multiple entries per key "
                "(NOPA's build side is normally unique)"
            ),
        )
    dense = int(keys.max()) == len(keys) - 1
    if dense:
        return SchemeRecommendation(
            recommended="perfect",
            dense=True,
            unique=True,
            reason="dense unique keys: slot = key, zero conflicts",
        )
    return SchemeRecommendation(
        recommended="open_addressing",
        dense=False,
        unique=True,
        reason="unique but sparse keys: perfect hashing would waste "
        "capacity or reject out-of-domain keys",
    )


def make_join_workload(
    r_keys: np.ndarray,
    s_keys: np.ndarray,
    r_payload: Optional[np.ndarray] = None,
    s_payload: Optional[np.ndarray] = None,
    name: str = "custom",
    modeled_r: Optional[int] = None,
    modeled_s: Optional[int] = None,
) -> Tuple[JoinWorkload, SchemeRecommendation]:
    """Wrap user arrays into a workload plus a hash-scheme recommendation.

    Payloads default to copies of the keys.  ``modeled_r/s`` set the
    paper-scale cardinalities the cost model prices (defaulting to the
    executed sizes: "what you give is what is priced").
    """
    r_keys = np.asarray(r_keys)
    s_keys = np.asarray(s_keys)
    recommendation = inspect_build_keys(r_keys)
    if not recommendation.unique:
        raise ValueError(
            "build-side keys must be unique for the no-partitioning join; "
            "deduplicate or pre-aggregate the build side"
        )
    r_payload = (
        np.asarray(r_payload) if r_payload is not None else r_keys.copy()
    )
    s_payload = (
        np.asarray(s_payload) if s_payload is not None else s_keys.copy()
    )
    r = Relation(
        name=f"{name}.R", key=r_keys, payload=r_payload,
        modeled_tuples=modeled_r,
    )
    s = Relation(
        name=f"{name}.S", key=s_keys, payload=s_payload,
        modeled_tuples=modeled_s,
    )
    selectivity = (
        float(np.isin(s_keys, r_keys).mean()) if len(s_keys) else 0.0
    )
    workload = JoinWorkload(
        name=name, r=r, s=s, selectivity=selectivity,
        description="user-provided workload",
    )
    return workload, recommendation
