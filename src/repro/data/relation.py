"""Column-oriented relations with dual cardinality.

Relations hold real numpy columns (the functional layer executes on
them) plus a *modeled* cardinality: the paper-scale tuple count that the
cost model prices.  All operators in this library generate traffic that
is linear in the tuple count, so traffic measured at execution scale is
scaled by ``modeled_tuples / executed_tuples`` before pricing — this is
validated by tests (see ``tests/costmodel/test_scaling_linearity.py``).

The storage model is columnar (<key, payload> columns), as in the paper
(Section 7.1: "We store the relations in a column-oriented storage
model") — which is what makes the payload-column line-skipping effects
of Figures 15 and 20 possible.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Optional

import numpy as np

from repro.hardware.memory import MemoryKind


@dataclass
class Relation:
    """A two-column (key, payload) relation.

    Attributes:
        name: relation name ("R", "S", "lineitem", ...).
        key: the join-key column.
        payload: the value column (same length as ``key``).
        modeled_tuples: paper-scale cardinality priced by the cost model;
            defaults to the executed cardinality.
        location: memory region holding the relation's columns.
        kind: memory kind (pageable/pinned/unified), which constrains
            the usable transfer methods (Table 1).
    """

    name: str
    key: np.ndarray
    payload: np.ndarray
    modeled_tuples: Optional[int] = None
    location: str = "cpu0-mem"
    kind: MemoryKind = MemoryKind.PAGEABLE

    def __post_init__(self) -> None:
        if self.key.ndim != 1 or self.payload.ndim != 1:
            raise ValueError("relation columns must be one-dimensional")
        if len(self.key) != len(self.payload):
            raise ValueError(
                f"column length mismatch in {self.name}: "
                f"{len(self.key)} keys vs {len(self.payload)} payloads"
            )
        if self.modeled_tuples is None:
            self.modeled_tuples = len(self.key)
        if self.modeled_tuples < len(self.key):
            raise ValueError(
                f"modeled cardinality {self.modeled_tuples} below executed "
                f"cardinality {len(self.key)}"
            )

    # ------------------------------------------------------------------
    # Cardinalities and sizes
    # ------------------------------------------------------------------
    @property
    def executed_tuples(self) -> int:
        return len(self.key)

    @property
    def tuple_bytes(self) -> int:
        return self.key.dtype.itemsize + self.payload.dtype.itemsize

    @property
    def key_bytes(self) -> int:
        return self.key.dtype.itemsize

    @property
    def payload_bytes(self) -> int:
        return self.payload.dtype.itemsize

    @property
    def modeled_bytes(self) -> int:
        return self.modeled_tuples * self.tuple_bytes

    @property
    def scale(self) -> float:
        """Executed fraction of the modeled cardinality (<= 1)."""
        if self.modeled_tuples == 0:
            return 1.0
        return self.executed_tuples / self.modeled_tuples

    @property
    def model_factor(self) -> float:
        """Multiplier from executed traffic to modeled traffic."""
        if self.executed_tuples == 0:
            return 1.0
        return self.modeled_tuples / self.executed_tuples

    # ------------------------------------------------------------------
    # Placement and slicing
    # ------------------------------------------------------------------
    def placed(self, location: str, kind: Optional[MemoryKind] = None) -> "Relation":
        """A view of this relation placed in another memory region."""
        return replace(self, location=location, kind=kind or self.kind)

    def slice(self, part: slice) -> "Relation":
        """A zero-copy view of a tuple range (used by morsel dispatch)."""
        return Relation(
            name=self.name,
            key=self.key[part],
            payload=self.payload[part],
            modeled_tuples=max(1, len(self.key[part])),
            location=self.location,
            kind=self.kind,
        )

    def morsels(self, morsel_tuples: int) -> Iterator["Morsel"]:
        """Fixed-size morsels over the executed tuples (Section 6.1)."""
        if morsel_tuples <= 0:
            raise ValueError(f"morsel size must be positive: {morsel_tuples}")
        for start in range(0, self.executed_tuples, morsel_tuples):
            end = min(start + morsel_tuples, self.executed_tuples)
            yield Morsel(relation=self, start=start, end=end)

    def __str__(self) -> str:
        return (
            f"Relation({self.name}: {self.executed_tuples} executed / "
            f"{self.modeled_tuples} modeled tuples, {self.tuple_bytes} B/tuple, "
            f"in {self.location})"
        )


@dataclass(frozen=True)
class Morsel:
    """A fixed-size chunk of a relation handed out by the dispatcher."""

    relation: Relation
    start: int
    end: int

    def __post_init__(self) -> None:
        if not 0 <= self.start <= self.end <= self.relation.executed_tuples:
            raise ValueError(
                f"morsel [{self.start}, {self.end}) out of bounds for "
                f"{self.relation.executed_tuples} tuples"
            )

    @property
    def tuples(self) -> int:
        return self.end - self.start

    @property
    def keys(self) -> np.ndarray:
        return self.relation.key[self.start : self.end]

    @property
    def payloads(self) -> np.ndarray:
        return self.relation.payload[self.start : self.end]
