"""Column-oriented relations and morsels (the functional data layer)."""

from repro.data.relation import Morsel, Relation

__all__ = ["Morsel", "Relation"]
