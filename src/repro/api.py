"""High-level public API of the library.

Everything here is re-exported lazily from ``repro`` itself::

    import repro

    machine = repro.ibm_ac922()
    wl = repro.workload_a(scale=1 / 2048)
    join = repro.NoPartitioningJoin(machine, hash_table_placement="gpu",
                                    transfer_method="coherence")
    result = join.run(wl.r, wl.s, processor="gpu0")
    print(f"{result.throughput_gtuples:.2f} G Tuples/s")
"""

from repro.core.join.coop import CoopJoin, CoopResult
from repro.core.join.multigpu import MultiGpuJoin, MultiGpuResult
from repro.core.join.multiway import Dimension, StarJoin, StarJoinResult
from repro.obs import MetricsRegistry, Observability, Span, Timeline, Tracer
from repro.obs.explain import bottleneck_chain, explain, explain_join
from repro.obs.manifest import MANIFEST_SCHEMA_VERSION, RunManifest, build_manifest
from repro.core.join.nopa import JoinResult, NoPartitioningJoin
from repro.core.join.radix import RadixJoin, RadixJoinResult
from repro.plan import (
    Chunked,
    MorselWorker,
    PhaseKind,
    PhaseOutcome,
    PhaseSpec,
    Plan,
    PlanError,
    PlanExecutor,
    PlanResult,
    Surcharge,
    WorkerLoad,
    concurrent_phase,
    fixed_phase,
    ingest,
    morsel_phase,
    pipeline_makespan,
    priced_phase,
)
from repro.engine import (
    Filter,
    HashAggregate,
    HashJoinOp,
    Limit,
    Project,
    TableScan,
    collect,
)
from repro.core.ops.q6 import Q6Result, TpchQ6
from repro.core.placement import PlacementDecision, decide_placement
from repro.core.hashtable import (
    ChainingHashTable,
    OpenAddressingHashTable,
    PerfectHashTable,
    create_hash_table,
)
from repro.core.hashtable.placement import HashTablePlacement, place_hash_table
from repro.core.scheduler.morsel import MorselDispatcher
from repro.core.scheduler.batch import tune_batch_morsels
from repro.exec import (
    EXEC_BACKENDS,
    AbortedError,
    MorselExecutor,
    MorselFailedError,
    execute_build,
    execute_probe,
    make_executor,
)
from repro.faults import (
    RESILIENCE_SCHEMA_VERSION,
    CrashWorker,
    DegradeLink,
    FaultPlan,
    InjectedFault,
    InjectedOutOfMemoryError,
    OomAt,
    ResilienceLog,
    RetryPolicy,
    TransientError,
    TransientKernelFault,
    WorkerCrashFault,
    active_plan,
)
from repro.data.relation import Morsel, Relation
from repro.hardware.topology import Machine, ibm_ac922, intel_xeon_v100
from repro.memory.allocator import Allocation, Allocator, OutOfMemoryError
from repro.memory.hybrid import (
    HybridAllocation,
    allocate_hybrid,
    allocate_interleaved,
)
from repro.storage.catalog import Catalog, StoredTable, TableExistsError
from repro.transfer.methods import (
    TRANSFER_METHODS,
    TransferMethod,
    UnsupportedTransferError,
    get_method,
)
from repro.workloads.builders import (
    JoinWorkload,
    workload_a,
    workload_b,
    workload_c,
    workload_ratio,
    workload_selectivity,
    workload_skewed,
)
from repro.workloads.tpch import Q6Workload, lineitem_q6

__all__ = [
    "CoopJoin",
    "CoopResult",
    "MultiGpuJoin",
    "MultiGpuResult",
    "Dimension",
    "StarJoin",
    "StarJoinResult",
    "explain",
    "explain_join",
    "bottleneck_chain",
    "Observability",
    "Tracer",
    "Span",
    "Timeline",
    "MetricsRegistry",
    "RunManifest",
    "build_manifest",
    "MANIFEST_SCHEMA_VERSION",
    "JoinResult",
    "NoPartitioningJoin",
    "EXEC_BACKENDS",
    "MorselExecutor",
    "AbortedError",
    "MorselFailedError",
    "execute_build",
    "execute_probe",
    "make_executor",
    "FaultPlan",
    "CrashWorker",
    "TransientError",
    "OomAt",
    "DegradeLink",
    "InjectedFault",
    "WorkerCrashFault",
    "TransientKernelFault",
    "InjectedOutOfMemoryError",
    "RetryPolicy",
    "ResilienceLog",
    "RESILIENCE_SCHEMA_VERSION",
    "active_plan",
    "RadixJoin",
    "RadixJoinResult",
    "Plan",
    "PhaseSpec",
    "PhaseKind",
    "PhaseOutcome",
    "PlanError",
    "PlanExecutor",
    "PlanResult",
    "Chunked",
    "Surcharge",
    "WorkerLoad",
    "MorselWorker",
    "priced_phase",
    "concurrent_phase",
    "morsel_phase",
    "fixed_phase",
    "ingest",
    "pipeline_makespan",
    "Filter",
    "HashAggregate",
    "HashJoinOp",
    "Limit",
    "Project",
    "TableScan",
    "collect",
    "Q6Result",
    "TpchQ6",
    "PlacementDecision",
    "decide_placement",
    "ChainingHashTable",
    "OpenAddressingHashTable",
    "PerfectHashTable",
    "create_hash_table",
    "HashTablePlacement",
    "place_hash_table",
    "MorselDispatcher",
    "tune_batch_morsels",
    "Morsel",
    "Relation",
    "Machine",
    "ibm_ac922",
    "intel_xeon_v100",
    "Allocation",
    "Allocator",
    "OutOfMemoryError",
    "HybridAllocation",
    "allocate_hybrid",
    "allocate_interleaved",
    "Catalog",
    "StoredTable",
    "TableExistsError",
    "TRANSFER_METHODS",
    "TransferMethod",
    "UnsupportedTransferError",
    "get_method",
    "JoinWorkload",
    "workload_a",
    "workload_b",
    "workload_c",
    "workload_ratio",
    "workload_selectivity",
    "workload_skewed",
    "Q6Workload",
    "lineitem_q6",
]
