"""Fault injection & resilience (``repro.faults``).

The paper's thesis is graceful degradation: the hybrid hash table spills
to CPU memory instead of aborting (Section 5.3, Figure 8) and Het morsel
scheduling tolerates an arbitrarily slow co-processor (Section 6.1).
This package makes the reproduction behave the same way under *induced*
failure:

* **Injection** — a seeded, declarative :class:`FaultPlan` installs
  hooks (worker crashes, transient kernel faults, OOM at an allocation
  ordinal, degraded link bandwidth) into the executor, the allocator,
  the placement logic, and the transfer methods; production paths pay
  ~zero overhead when no plan is active.
* **Recovery** — :class:`RetryPolicy` bounds retry-with-backoff;
  the morsel executor re-dispatches crashed workers' ranges and falls
  back to a bit-identical serial replay as a last resort; the join
  operators can degrade an out-of-memory placement to the hybrid
  (GPU-first, CPU-spill) layout.
* **Observability** — every injected fault and recovery action lands in
  a :class:`ResilienceLog`, serialized into the schema-versioned
  ``resilience`` section of the run manifest.

The re-exports resolve lazily: the hook sites (allocator, placement,
transfer methods) import :mod:`repro.faults.runtime`, and an eager
``__init__`` here would drag :mod:`repro.faults.plan` — which imports
the allocator right back for ``OutOfMemoryError`` — into their import,
a cycle.  Deferring to first attribute access keeps ``import
repro.faults.runtime`` free of the rest of the package.

See ``docs/robustness.md`` for the fault taxonomy and recovery matrix.
"""

_LAZY = {
    "CrashWorker": "repro.faults.plan",
    "DegradeLink": "repro.faults.plan",
    "FailQuery": "repro.faults.plan",
    "FaultPlan": "repro.faults.plan",
    "FaultRecord": "repro.faults.plan",
    "InjectedFault": "repro.faults.plan",
    "InjectedOutOfMemoryError": "repro.faults.plan",
    "OomAt": "repro.faults.plan",
    "QueryFault": "repro.faults.plan",
    "TransientError": "repro.faults.plan",
    "TransientKernelFault": "repro.faults.plan",
    "WorkerCrashFault": "repro.faults.plan",
    "DEFAULT_RETRY_POLICY": "repro.faults.recovery",
    "RetryPolicy": "repro.faults.recovery",
    "CHAOS_SEEDS": "repro.faults.scenarios",
    "SERVING_CHAOS_SEEDS": "repro.faults.scenarios",
    "chaos_plan": "repro.faults.scenarios",
    "serving_chaos_plan": "repro.faults.scenarios",
    "RESILIENCE_ACTIONS": "repro.faults.resilience",
    "RESILIENCE_SCHEMA_VERSION": "repro.faults.resilience",
    "ResilienceEvent": "repro.faults.resilience",
    "ResilienceLog": "repro.faults.resilience",
    "active_plan": "repro.faults.runtime",
}

__all__ = list(_LAZY)


def __getattr__(name):
    """Resolve the package re-exports on first access (see module doc)."""
    import importlib

    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.faults' has no attribute {name!r}"
        ) from None
    return getattr(importlib.import_module(module_name), name)
