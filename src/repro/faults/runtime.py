"""Active fault-plan registry — the zero-overhead injection switch.

The fault hooks in :mod:`repro.exec.pool`, :mod:`repro.memory.allocator`,
:mod:`repro.core.hashtable.placement`, and :mod:`repro.transfer.methods`
all start with ``plan = active_plan(); if plan is None: ...`` — one
module-global read on the production path.  The global is only ever set
by :meth:`repro.faults.plan.FaultPlan.install`, so a process that never
installs a plan pays nothing beyond that read.

This module is import-cycle free on purpose: the hook sites live in
packages the rest of :mod:`repro.faults` depends on, so they import
*this* module only, never :mod:`repro.faults.plan`.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan

_lock = threading.Lock()
_active: Optional["FaultPlan"] = None


def active_plan() -> Optional["FaultPlan"]:
    """The currently installed :class:`FaultPlan`, or None (the default)."""
    return _active


def install_plan(plan: "FaultPlan") -> None:
    """Make ``plan`` the process-wide active plan; nesting is rejected."""
    global _active
    with _lock:
        if _active is not None:
            raise RuntimeError(
                "a FaultPlan is already installed; nested or concurrent "
                "plans are not supported — uninstall the active plan first"
            )
        _active = plan


def uninstall_plan(plan: "FaultPlan") -> None:
    """Remove ``plan``; raises if some other plan is installed."""
    global _active
    with _lock:
        if _active is not plan:
            raise RuntimeError(
                "cannot uninstall a FaultPlan that is not the active one"
            )
        _active = None
