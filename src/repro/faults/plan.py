"""Deterministic, seeded fault injection: rules, sites, and the plan.

A :class:`FaultPlan` is a declarative description of the faults one
chaos run should experience: *which* failures (worker crashes, transient
kernel errors, out-of-memory at an allocation ordinal, degraded
interconnect bandwidth), *where* (matched by worker name, allocation
label/region, transfer method), and *when* (a deterministic ordinal or a
seeded probability draw).

Determinism: probability draws are keyed by the *site identity* — e.g.
``(seed, rule, worker, morsel start, attempt)`` hashed with BLAKE2b —
not by a shared RNG stream, so whether a given morsel faults does not
depend on thread interleaving or on how many other sites drew before
it.  Ordinal counters are kept under one lock.

The plan is installed as a context manager::

    plan = FaultPlan(seed=7, rules=[TransientError(probability=0.2)])
    with plan.install():
        join.run(wl.r, wl.s)
    assert plan.injected  # every injection is recorded

Hook sites pay ~zero overhead when no plan is installed — see
:mod:`repro.faults.runtime`.
"""

from __future__ import annotations

import hashlib
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.faults.runtime import install_plan, uninstall_plan
from repro.memory.allocator import OutOfMemoryError


# ---------------------------------------------------------------------------
# Injected-fault exception types
# ---------------------------------------------------------------------------


class InjectedFault(Exception):
    """Base of every exception raised by an installed :class:`FaultPlan`.

    Recovery code keys on these types: anything *not* derived from
    InjectedFault is a genuine bug and propagates unchanged.
    """


class WorkerCrashFault(InjectedFault):
    """An injected worker death: the worker stops pulling morsels."""


class TransientKernelFault(InjectedFault):
    """An injected transient kernel failure: safe to retry in place."""


class InjectedOutOfMemoryError(InjectedFault, OutOfMemoryError):
    """An injected allocation failure (still an ``OutOfMemoryError``)."""


class QueryFault(InjectedFault):
    """An injected serving-level query failure (retryable by resubmit).

    Raised from the serving scheduler's phase-boundary fault hook; the
    :class:`~repro.serve.service.QueryService` turns it into a
    ``RetryPolicy``-governed resubmission or a terminal ``failed``
    outcome once the attempt budget is spent.
    """


# ---------------------------------------------------------------------------
# Declarative rules
# ---------------------------------------------------------------------------


def _check_probability(name: str, value: Optional[float]) -> None:
    if value is not None and not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1]: {value}")


def _check_times(times: Optional[int]) -> None:
    if times is not None and times < 1:
        raise ValueError(f"times must be at least 1 (or None for unlimited): {times}")


@dataclass(frozen=True)
class CrashWorker:
    """Kill a matching worker when it receives a morsel.

    The crash fires *before* the morsel's task runs — a crash-safe
    injection point: the range has no partial side effects and can be
    re-dispatched to a surviving worker.

    Args:
        worker: exact worker name to target, or None for any worker.
        ordinal: fire on the k-th (0-based) morsel receipt of a matching
            worker (ignored when ``probability`` is given).
        probability: instead of an ordinal, crash each matching receipt
            with this seeded probability.
        times: total number of crashes this rule may inject.
    """

    worker: Optional[str] = None
    ordinal: int = 0
    probability: Optional[float] = None
    times: int = 1

    def __post_init__(self) -> None:
        if self.ordinal < 0:
            raise ValueError(f"ordinal must be non-negative: {self.ordinal}")
        _check_probability("probability", self.probability)
        _check_times(self.times)


@dataclass(frozen=True)
class TransientError:
    """Raise a retryable :class:`TransientKernelFault` at morsel receipt.

    Args:
        probability: seeded per-(worker, range, attempt) firing chance
            (ignored when ``ordinal`` is given).
        ordinal: fire on the k-th (0-based) matching morsel receipt.
        attempts: attempt numbers the rule may fire on.  The default
            ``(0,)`` makes the fault *recoverable by construction* — the
            first retry always succeeds.  ``None`` fires on every
            attempt (an unrecoverable rule once the budget is spent).
        times: total fires allowed (None = unlimited).
        worker: exact worker name to target, or None for any.
    """

    probability: float = 1.0
    ordinal: Optional[int] = None
    attempts: Optional[Tuple[int, ...]] = (0,)
    times: Optional[int] = 1
    worker: Optional[str] = None

    def __post_init__(self) -> None:
        _check_probability("probability", self.probability)
        if self.ordinal is not None and self.ordinal < 0:
            raise ValueError(f"ordinal must be non-negative: {self.ordinal}")
        _check_times(self.times)


@dataclass(frozen=True)
class OomAt:
    """Inject :class:`InjectedOutOfMemoryError` at an allocation site.

    Allocation sites are visited by :meth:`Allocator.alloc` and by the
    GPU-placement capacity check of ``place_hash_table`` (label
    ``"ht gpu placement"``); the plan numbers matching visits and fires
    at ``ordinal``.

    Args:
        ordinal: 0-based index among *matching* allocation sites.
        label: substring the allocation label must contain (None = any).
        region: exact memory-region name to match (None = any).
        times: total fires allowed.
    """

    ordinal: int = 0
    label: Optional[str] = None
    region: Optional[str] = None
    times: int = 1

    def __post_init__(self) -> None:
        if self.ordinal < 0:
            raise ValueError(f"ordinal must be non-negative: {self.ordinal}")
        _check_times(self.times)


@dataclass(frozen=True)
class DegradeLink:
    """Scale a transfer method's effective ingest bandwidth by ``factor``.

    Models a degraded interconnect (a contended or downtrained link);
    the cost model prices the run at the reduced bandwidth.  Unlike the
    exception-typed rules this one fires on *every* matching bandwidth
    query (``times=None``) so the degradation persists across phases.
    """

    factor: float = 0.5
    method: Optional[str] = None
    src_memory: Optional[str] = None
    times: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.factor <= 1.0:
            raise ValueError(
                f"bandwidth factor must be in (0, 1]: {self.factor}"
            )
        _check_times(self.times)


@dataclass(frozen=True)
class FailQuery:
    """Fail a serving-level query at a phase boundary.

    Visited by the serving scheduler's fault hook when a query *enters*
    a phase (deterministic, zero machine time spent on the doomed
    phase).  The failure surfaces as :class:`QueryFault`; whether the
    query is resubmitted (with backoff) or terminally failed is the
    service's :class:`~repro.faults.recovery.RetryPolicy` decision.

    Args:
        workload: exact workload name to target (None = any).
        tenant: exact tenant name to target (None = any).
        probability: seeded per-(request, phase, attempt) firing chance.
        phase: only fire when entering this phase index (None = any).
        attempts: serving attempt numbers the rule may fire on.  The
            default ``(0,)`` makes the fault *recoverable by
            construction* — the first resubmission always succeeds.
            ``None`` fires on every attempt (drives a query through its
            whole retry budget into the circuit breaker).
        times: total fires allowed (None = unlimited).
    """

    workload: Optional[str] = None
    tenant: Optional[str] = None
    probability: float = 1.0
    phase: Optional[int] = None
    attempts: Optional[Tuple[int, ...]] = (0,)
    times: Optional[int] = 1

    def __post_init__(self) -> None:
        _check_probability("probability", self.probability)
        if self.phase is not None and self.phase < 0:
            raise ValueError(f"phase must be non-negative: {self.phase}")
        _check_times(self.times)


FaultRule = Any  # union of the rule dataclasses above (py39-friendly)

_RULE_TYPES = (CrashWorker, TransientError, OomAt, DegradeLink, FailQuery)


# ---------------------------------------------------------------------------
# Injection records
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault: which rule fired, where, and the kind."""

    seq: int
    kind: str  # "crash" | "transient" | "oom" | "degraded_link"
    rule: str
    site: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "rule": self.rule,
            "site": dict(self.site),
        }


# ---------------------------------------------------------------------------
# The plan
# ---------------------------------------------------------------------------


class FaultPlan:
    """A seeded, declarative set of faults to inject into one run.

    Thread-safe: hook sites are visited concurrently by pool workers.
    Every injected fault is appended to :attr:`injected`, which the
    manifest's ``resilience`` section uses to account for the chaos a
    run experienced.
    """

    def __init__(
        self, seed: int, rules: Sequence[FaultRule], name: str = ""
    ) -> None:
        for rule in rules:
            if not isinstance(rule, _RULE_TYPES):
                raise TypeError(
                    f"unknown fault rule {rule!r}; valid rule types: "
                    + ", ".join(t.__name__ for t in _RULE_TYPES)
                )
        self.seed = int(seed)
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.name = name
        self.injected: List[FaultRecord] = []
        self._lock = threading.Lock()
        self._fires: Dict[int, int] = {}  # rule index -> total fires
        self._morsel_visits: Dict[Tuple[int, str], int] = {}
        self._alloc_visits: Dict[int, int] = {}
        # Per-site fast paths: a site whose rule class is absent from the
        # plan returns without taking the lock, so e.g. a link-only plan
        # costs the morsel hot loop nothing.
        self._has_morsel_rules = any(
            isinstance(r, (CrashWorker, TransientError)) for r in self.rules
        )
        self._has_alloc_rules = any(isinstance(r, OomAt) for r in self.rules)
        self._has_link_rules = any(isinstance(r, DegradeLink) for r in self.rules)
        self._has_query_rules = any(isinstance(r, FailQuery) for r in self.rules)
        #: (rule index, resource) pairs already recorded by
        #: :meth:`resource_factor` — the serving scheduler queries
        #: capacity at every resolve, so persistent degradation is
        #: recorded once per (rule, resource) instead of per query.
        self._degraded_resources: set = set()

    # -- deterministic randomness ---------------------------------------
    def uniform(self, *key: Any) -> float:
        """A deterministic uniform in [0, 1) keyed by the site identity."""
        payload = repr((self.seed,) + key).encode()
        digest = hashlib.blake2b(payload, digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2.0**64

    # -- bookkeeping -----------------------------------------------------
    def _spent(self, index: int, times: Optional[int]) -> bool:
        return times is not None and self._fires.get(index, 0) >= times

    def _record(self, index: int, kind: str, site: Dict[str, Any]) -> FaultRecord:
        self._fires[index] = self._fires.get(index, 0) + 1
        record = FaultRecord(
            seq=len(self.injected),
            kind=kind,
            rule=repr(self.rules[index]),
            site=site,
        )
        self.injected.append(record)
        return record

    # -- hook sites ------------------------------------------------------
    def check_morsel(self, worker: str, start: int, end: int, attempt: int) -> None:
        """Morsel-receipt site; may raise a crash or transient fault.

        Called by the executor *before* the morsel's task runs, so an
        injected fault never leaves partial side effects behind.
        """
        if not self._has_morsel_rules:
            return
        with self._lock:
            for index, rule in enumerate(self.rules):
                if isinstance(rule, CrashWorker):
                    if self._spent(index, rule.times):
                        continue
                    if rule.worker is not None and rule.worker != worker:
                        continue
                    if rule.probability is not None:
                        fire = (
                            self.uniform(index, "crash", worker, start, attempt)
                            < rule.probability
                        )
                    else:
                        visits = self._morsel_visits.get((index, worker), 0)
                        self._morsel_visits[(index, worker)] = visits + 1
                        fire = visits == rule.ordinal
                    if fire:
                        site = {
                            "kind": "morsel",
                            "worker": worker,
                            "start": start,
                            "end": end,
                            "attempt": attempt,
                        }
                        self._record(index, "crash", site)
                        raise WorkerCrashFault(
                            f"injected crash of {worker} on morsel "
                            f"[{start}, {end}) attempt {attempt}"
                        )
                elif isinstance(rule, TransientError):
                    if self._spent(index, rule.times):
                        continue
                    if rule.worker is not None and rule.worker != worker:
                        continue
                    if rule.attempts is not None and attempt not in rule.attempts:
                        continue
                    if rule.ordinal is not None:
                        visits = self._morsel_visits.get((index, worker), 0)
                        self._morsel_visits[(index, worker)] = visits + 1
                        fire = visits == rule.ordinal
                    else:
                        fire = (
                            self.uniform(index, "transient", worker, start, attempt)
                            < rule.probability
                        )
                    if fire:
                        site = {
                            "kind": "morsel",
                            "worker": worker,
                            "start": start,
                            "end": end,
                            "attempt": attempt,
                        }
                        self._record(index, "transient", site)
                        raise TransientKernelFault(
                            f"injected transient kernel fault on {worker} "
                            f"morsel [{start}, {end}) attempt {attempt}"
                        )

    def check_alloc(self, region: str, nbytes: int, label: str = "") -> None:
        """Allocation site; may raise :class:`InjectedOutOfMemoryError`."""
        if not self._has_alloc_rules:
            return
        with self._lock:
            for index, rule in enumerate(self.rules):
                if not isinstance(rule, OomAt):
                    continue
                if self._spent(index, rule.times):
                    continue
                if rule.region is not None and rule.region != region:
                    continue
                if rule.label is not None and rule.label not in label:
                    continue
                visits = self._alloc_visits.get(index, 0)
                self._alloc_visits[index] = visits + 1
                if visits == rule.ordinal:
                    site = {
                        "kind": "alloc",
                        "region": region,
                        "nbytes": int(nbytes),
                        "label": label,
                    }
                    self._record(index, "oom", site)
                    raise InjectedOutOfMemoryError(
                        f"injected out-of-memory: {label or 'allocation'} of "
                        f"{nbytes} bytes in {region} (ordinal {visits})"
                    )

    def bandwidth_factor(
        self, method: str, processor: str, src_memory: str
    ) -> float:
        """Combined degradation factor for one transfer-bandwidth query."""
        if not self._has_link_rules:
            return 1.0
        factor = 1.0
        with self._lock:
            for index, rule in enumerate(self.rules):
                if not isinstance(rule, DegradeLink):
                    continue
                if self._spent(index, rule.times):
                    continue
                if rule.method is not None and rule.method != method:
                    continue
                if rule.src_memory is not None and rule.src_memory != src_memory:
                    continue
                site = {
                    "kind": "link",
                    "method": method,
                    "processor": processor,
                    "src_memory": src_memory,
                    "factor": rule.factor,
                }
                self._record(index, "degraded_link", site)
                factor *= rule.factor
        return factor

    def check_query(
        self,
        workload: str,
        tenant: str,
        request_id: int,
        phase_index: int,
        attempt: int,
    ) -> None:
        """Serving phase-boundary site; may raise :class:`QueryFault`.

        Called by the serving scheduler's fault hook each time a query
        enters a (non-empty) phase; the draw is keyed by the full site
        identity, so whether one query faults never depends on what the
        rest of the mix did.
        """
        if not self._has_query_rules:
            return
        with self._lock:
            for index, rule in enumerate(self.rules):
                if not isinstance(rule, FailQuery):
                    continue
                if self._spent(index, rule.times):
                    continue
                if rule.workload is not None and rule.workload != workload:
                    continue
                if rule.tenant is not None and rule.tenant != tenant:
                    continue
                if rule.phase is not None and rule.phase != phase_index:
                    continue
                if rule.attempts is not None and attempt not in rule.attempts:
                    continue
                fire = (
                    self.uniform(index, "query", request_id, phase_index, attempt)
                    < rule.probability
                )
                if fire:
                    site = {
                        "kind": "query",
                        "workload": workload,
                        "tenant": tenant,
                        "request_id": request_id,
                        "phase_index": phase_index,
                        "attempt": attempt,
                    }
                    self._record(index, "query", site)
                    raise QueryFault(
                        f"injected serving fault: request #{request_id} "
                        f"({workload}, tenant {tenant}) phase {phase_index} "
                        f"attempt {attempt}"
                    )

    def resource_factor(self, resource: str) -> float:
        """Capacity factor of one *simulated* resource under this plan.

        The serving scheduler queries this at every rate re-solve; a
        :class:`DegradeLink` rule with no transfer-method selector
        degrades the matching ``link:*`` resources of the contention
        model, so a mid-serving link degradation stretches every query
        crossing it through the same max-min re-solve that handles
        contention.  Rules with a ``method`` selector only apply to the
        cost-model pricing path (:meth:`bandwidth_factor`).
        """
        if not self._has_link_rules or not resource.startswith("link:"):
            return 1.0
        link_name = resource[len("link:") :]
        factor = 1.0
        with self._lock:
            for index, rule in enumerate(self.rules):
                if not isinstance(rule, DegradeLink):
                    continue
                if rule.method is not None:
                    continue
                if self._spent(index, rule.times):
                    continue
                if (
                    rule.src_memory is not None
                    and rule.src_memory not in link_name
                ):
                    continue
                if (index, resource) not in self._degraded_resources:
                    self._degraded_resources.add((index, resource))
                    self._record(
                        index,
                        "degraded_link",
                        {
                            "kind": "resource",
                            "resource": resource,
                            "factor": rule.factor,
                        },
                    )
                factor *= rule.factor
        return factor

    # -- installation ----------------------------------------------------
    @contextmanager
    def install(self) -> Iterator["FaultPlan"]:
        """Activate the plan for the dynamic extent of the ``with`` block."""
        install_plan(self)
        try:
            yield self
        finally:
            uninstall_plan(self)

    # -- reporting -------------------------------------------------------
    def describe(self) -> Dict[str, Any]:
        """JSON-ready plan descriptor for the manifest resilience section."""
        return {
            "seed": self.seed,
            "name": self.name,
            "rules": [repr(rule) for rule in self.rules],
        }

    def injected_counts(self) -> Dict[str, int]:
        """Number of injected faults per kind."""
        counts: Dict[str, int] = {}
        with self._lock:
            for record in self.injected:
                counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<FaultPlan{label} seed={self.seed} rules={len(self.rules)} "
            f"injected={len(self.injected)}>"
        )
