"""Canonical chaos scenarios: the fixed seed set CI sweeps.

One :func:`chaos_plan` per seed in :data:`CHAOS_SEEDS`; together the
three plans exercise every recovery path the resilience subsystem has —
bounded retry (transients), re-dispatch (worker crashes), and graceful
degradation of the hash-table placement to hybrid (injected OOM,
Section 5.3 / Figure 8).  The chaos integration tests and
``repro.bench.chaos_overhead`` both build their runs from this module,
so the suite and the committed bench baseline cannot drift apart.
"""

from __future__ import annotations

from repro.faults.plan import CrashWorker, FaultPlan, OomAt, TransientError

#: the fixed seed set CI's chaos job sweeps; collectively the three runs
#: must exercise >=1 retry, >=1 re-dispatch, and >=1 hybrid spill.
CHAOS_SEEDS = (101, 202, 303)

#: the allocation-site label of the GPU placement capacity check — the
#: OOM seed targets it to simulate a full GPU (see place_hash_table).
GPU_PLACEMENT_LABEL = "ht gpu placement"


def chaos_plan(seed: int, worker_prefix: str = "nopa") -> FaultPlan:
    """The canonical fault plan for one CI chaos seed.

    ``worker_prefix`` is the executor name whose workers the crash seed
    targets (``<prefix>-w0`` ... — the NOPA join names its executor
    ``nopa``).
    """
    if seed == 101:  # transient kernel faults -> bounded retry
        return FaultPlan(
            seed=seed,
            name="chaos-transients",
            rules=[TransientError(probability=0.5, times=None)],
        )
    if seed == 202:  # worker crashes -> re-dispatch to survivors
        return FaultPlan(
            seed=seed,
            name="chaos-crashes",
            rules=[
                CrashWorker(worker=f"{worker_prefix}-w0", ordinal=1),
                CrashWorker(worker=f"{worker_prefix}-w2", ordinal=0),
            ],
        )
    if seed == 303:  # placement OOM -> hybrid (GPU-first, CPU-spill)
        return FaultPlan(
            seed=seed,
            name="chaos-oom",
            rules=[OomAt(ordinal=0, label=GPU_PLACEMENT_LABEL)],
        )
    raise ValueError(f"no chaos plan for seed {seed}; CI seeds: {CHAOS_SEEDS}")
