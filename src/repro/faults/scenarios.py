"""Canonical chaos scenarios: the fixed seed set CI sweeps.

One :func:`chaos_plan` per seed in :data:`CHAOS_SEEDS`; together the
three plans exercise every recovery path the resilience subsystem has —
bounded retry (transients), re-dispatch (worker crashes), and graceful
degradation of the hash-table placement to hybrid (injected OOM,
Section 5.3 / Figure 8).  The chaos integration tests and
``repro.bench.chaos_overhead`` both build their runs from this module,
so the suite and the committed bench baseline cannot drift apart.
"""

from __future__ import annotations

from repro.faults.plan import (
    CrashWorker,
    DegradeLink,
    FailQuery,
    FaultPlan,
    OomAt,
    TransientError,
)

#: the fixed seed set CI's chaos job sweeps; collectively the three runs
#: must exercise >=1 retry, >=1 re-dispatch, and >=1 hybrid spill.
CHAOS_SEEDS = (101, 202, 303)

#: the fixed seed set CI's chaos-*serving* step sweeps; collectively the
#: three plans must exercise >=1 serving retry (transients), >=1
#: contention re-solve under degraded link capacity, and >=1 opened
#: circuit breaker (a workload that fails on every attempt).
SERVING_CHAOS_SEEDS = (404, 505, 606)

#: the allocation-site label of the GPU placement capacity check — the
#: OOM seed targets it to simulate a full GPU (see place_hash_table).
GPU_PLACEMENT_LABEL = "ht gpu placement"


def chaos_plan(seed: int, worker_prefix: str = "nopa") -> FaultPlan:
    """The canonical fault plan for one CI chaos seed.

    ``worker_prefix`` is the executor name whose workers the crash seed
    targets (``<prefix>-w0`` ... — the NOPA join names its executor
    ``nopa``).
    """
    if seed == 101:  # transient kernel faults -> bounded retry
        return FaultPlan(
            seed=seed,
            name="chaos-transients",
            rules=[TransientError(probability=0.5, times=None)],
        )
    if seed == 202:  # worker crashes -> re-dispatch to survivors
        return FaultPlan(
            seed=seed,
            name="chaos-crashes",
            rules=[
                CrashWorker(worker=f"{worker_prefix}-w0", ordinal=1),
                CrashWorker(worker=f"{worker_prefix}-w2", ordinal=0),
            ],
        )
    if seed == 303:  # placement OOM -> hybrid (GPU-first, CPU-spill)
        return FaultPlan(
            seed=seed,
            name="chaos-oom",
            rules=[OomAt(ordinal=0, label=GPU_PLACEMENT_LABEL)],
        )
    raise ValueError(f"no chaos plan for seed {seed}; CI seeds: {CHAOS_SEEDS}")


def serving_chaos_plan(seed: int) -> FaultPlan:
    """The canonical serving-layer fault plan for one CI chaos seed.

    * ``404`` — seeded transient query failures, first-attempt only, so
      every faulted query recovers on its first resubmission (exercises
      the ``RetryPolicy`` backoff path end to end).
    * ``505`` — a persistent link degradation applied *mid-serving*:
      the contention scheduler re-solves max-min rates with the reduced
      link capacity, stretching every query crossing it.
    * ``606`` — one workload (``join-b``) fails on *every* attempt:
      its queries burn their retry budget into terminal failures and
      the per-workload circuit breaker opens and fast-fails the rest.
    """
    if seed == 404:  # transient serving faults -> retry w/ backoff
        return FaultPlan(
            seed=seed,
            name="chaos-serving-transients",
            rules=[FailQuery(probability=0.3, attempts=(0,), times=None)],
        )
    if seed == 505:  # degraded interconnect mid-serving -> stretch
        return FaultPlan(
            seed=seed,
            name="chaos-serving-degrade",
            rules=[DegradeLink(factor=0.5, times=None)],
        )
    if seed == 606:  # one workload always fails -> breaker opens
        return FaultPlan(
            seed=seed,
            name="chaos-serving-breaker",
            rules=[
                FailQuery(
                    workload="join-b",
                    probability=1.0,
                    attempts=None,
                    times=None,
                )
            ],
        )
    raise ValueError(
        f"no serving chaos plan for seed {seed}; CI seeds: "
        f"{SERVING_CHAOS_SEEDS}"
    )
