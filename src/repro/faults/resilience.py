"""The resilience audit trail: recovery actions + manifest section.

Every recovery action the execution layer takes — a retry, a re-dispatch
of a crashed worker's range, a serial-replay fallback, a spill of the
hash-table placement — is appended to a :class:`ResilienceLog`.  The log
serializes (together with the active :class:`FaultPlan`'s injection
records) into the schema-versioned ``resilience`` section of the run
manifest, so chaos runs are diffable like any other run.

Determinism note: the *counters* and the injected-fault records of a
seeded plan are deterministic; the per-event worker attribution (which
surviving worker picked up a re-dispatched range) depends on thread
interleaving and is informational.  Events carry sequence numbers, never
wall-clock timestamps.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.faults.plan import FaultPlan

#: Version of the manifest ``resilience`` section layout.  Bump together
#: with a schema-changelog entry in ``docs/robustness.md``.  ``1.1``
#: added the serving-layer actions (``serving_retry``,
#: ``deadline_cancel``, ``shed``, ``breaker_fastfail``) to the
#: zero-filled counter vocabulary.
RESILIENCE_SCHEMA_VERSION = "1.1"

#: recovery actions a log may record.  The first four are taken by the
#: execution layer (PR 5); the last four by the serving layer's
#: resilience path (deadlines, retry-with-backoff, load shedding, and
#: the per-workload circuit breaker).
RESILIENCE_ACTIONS = (
    "retry",
    "redispatch",
    "serial_fallback",
    "spill",
    "serving_retry",
    "deadline_cancel",
    "shed",
    "breaker_fastfail",
)


@dataclass(frozen=True)
class ResilienceEvent:
    """One recovery action with its site details."""

    seq: int
    action: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"seq": self.seq, "action": self.action, "detail": dict(self.detail)}


class ResilienceLog:
    """Thread-safe, ordered record of recovery actions for one run."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.events: List[ResilienceEvent] = []

    def record(self, action: str, **detail: Any) -> ResilienceEvent:
        """Append one recovery action; unknown actions are rejected."""
        if action not in RESILIENCE_ACTIONS:
            raise ValueError(
                f"unknown resilience action {action!r}; valid: "
                + ", ".join(RESILIENCE_ACTIONS)
            )
        with self._lock:
            event = ResilienceEvent(
                seq=len(self.events), action=action, detail=detail
            )
            self.events.append(event)
            return event

    def counts(self) -> Dict[str, int]:
        """Recovery actions per kind (zero-filled for stable schemas)."""
        counts = {action: 0 for action in RESILIENCE_ACTIONS}
        with self._lock:
            for event in self.events:
                counts[event.action] += 1
        return counts

    def count(self, action: str) -> int:
        """Number of events of one action kind."""
        return self.counts().get(action, 0)

    def __len__(self) -> int:
        with self._lock:
            return len(self.events)

    def section(self, plan: Optional[FaultPlan] = None) -> Dict[str, Any]:
        """The manifest ``resilience`` section for this run.

        Includes the plan descriptor and its injection records when a
        :class:`FaultPlan` was active, so the section accounts for every
        fault the run experienced alongside every recovery it performed.
        """
        with self._lock:
            events = [event.to_dict() for event in self.events]
        section: Dict[str, Any] = {
            "schema_version": RESILIENCE_SCHEMA_VERSION,
            "plan": plan.describe() if plan is not None else None,
            "injected": [r.to_dict() for r in plan.injected] if plan else [],
            "injected_counts": plan.injected_counts() if plan else {},
            "counters": self.counts(),
            "events": events,
        }
        return section
