"""Recovery policies: bounded retry with exponential backoff.

A :class:`RetryPolicy` bounds how many times one :class:`WorkRange` may
be attempted (across retries-in-place *and* re-dispatches to other
workers) and spaces the attempts with capped exponential backoff.  The
default ``base_delay=0.0`` keeps tests and simulations instant — the
delay *schedule* is still computed and recorded, it just isn't slept.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with capped exponential backoff.

    Args:
        max_attempts: total attempts allowed per work range (the first
            attempt counts); at least 1.  Exhausting the budget raises
            :class:`repro.exec.pool.MorselFailedError`.
        base_delay: backoff before the first retry, in seconds.  0.0
            (the default) computes the schedule without sleeping.
        factor: multiplicative backoff growth per retry.
        max_delay: backoff cap in seconds.
    """

    max_attempts: int = 3
    base_delay: float = 0.0
    factor: float = 2.0
    max_delay: float = 0.05

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be at least 1: {self.max_attempts}"
            )
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be non-negative: {self.base_delay}")
        if self.factor < 1.0:
            raise ValueError(f"backoff factor must be >= 1: {self.factor}")
        if self.max_delay < 0:
            raise ValueError(f"max_delay must be non-negative: {self.max_delay}")

    def delay(self, attempt: int) -> float:
        """Backoff (seconds) before attempt number ``attempt`` (1-based retry)."""
        if attempt < 1:
            raise ValueError(f"attempt must be at least 1: {attempt}")
        if self.base_delay == 0.0:
            return 0.0
        return min(self.max_delay, self.base_delay * self.factor ** (attempt - 1))

    def sleep(self, attempt: int) -> float:
        """Sleep the backoff for ``attempt`` and return the delay used."""
        delay = self.delay(attempt)
        if delay > 0:
            time.sleep(delay)
        return delay


#: policy used when an executor is built without an explicit one.
DEFAULT_RETRY_POLICY = RetryPolicy()
