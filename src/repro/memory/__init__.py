"""Memory management substrate: allocator, virtual address space, hybrid
and interleaved placement policies.

The hybrid hash-table allocation (Figure 8) is the paper's key memory
idea: allocate GPU memory first, spill the remainder to the nearest CPU
memory (recursively across NUMA nodes), and expose the result as one
contiguous virtual array whose pages live in different physical regions.
"""

from repro.memory.allocator import Allocation, Allocator, OutOfMemoryError
from repro.memory.address_space import AddressSpace, PageMapping
from repro.memory.hybrid import (
    HybridAllocation,
    allocate_hybrid,
    allocate_interleaved,
)

__all__ = [
    "Allocation",
    "Allocator",
    "OutOfMemoryError",
    "AddressSpace",
    "PageMapping",
    "HybridAllocation",
    "allocate_hybrid",
    "allocate_interleaved",
]
