"""System-wide virtual address space with per-page physical placement.

Fast interconnects integrate the GPU into a system-wide address space
(Section 5.3): physical CPU pages can be mapped adjacent to GPU pages,
which is what makes the hybrid hash table a *single contiguous array*
with zero software-indirection cost.  This module models exactly that —
a virtual range whose pages map to named memory regions — and is used by
the hybrid hash table to answer "which region serves byte offset X?"
in O(1) for the common two-segment layout and O(log n) in general.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class PageMapping:
    """A run of virtually-contiguous pages backed by one region."""

    start: int  # virtual byte offset (inclusive)
    end: int  # virtual byte offset (exclusive)
    region_name: str

    @property
    def nbytes(self) -> int:
        return self.end - self.start

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty or negative mapping: {self}")


class AddressSpace:
    """A virtual byte range composed of region-backed segments.

    Segments must be appended in order and be contiguous; this mirrors
    the greedy allocation of Figure 8 which fills GPU memory first and
    then appends CPU-memory pages.
    """

    def __init__(self) -> None:
        self._segments: List[PageMapping] = []
        self._starts: List[int] = []

    @property
    def size(self) -> int:
        if not self._segments:
            return 0
        return self._segments[-1].end

    @property
    def segments(self) -> Tuple[PageMapping, ...]:
        return tuple(self._segments)

    def append(self, nbytes: int, region_name: str) -> PageMapping:
        """Map the next ``nbytes`` of the virtual range to a region."""
        if nbytes <= 0:
            raise ValueError(f"segment size must be positive: {nbytes}")
        start = self.size
        mapping = PageMapping(start=start, end=start + nbytes, region_name=region_name)
        self._segments.append(mapping)
        self._starts.append(start)
        return mapping

    def region_of(self, offset: int) -> str:
        """Name of the region backing a virtual byte offset."""
        if offset < 0 or offset >= self.size:
            raise IndexError(f"offset {offset} outside address space of {self.size}")
        index = bisect.bisect_right(self._starts, offset) - 1
        return self._segments[index].region_name

    def bytes_per_region(self) -> Dict[str, int]:
        """Total mapped bytes per region (for access-fraction estimates)."""
        totals: Dict[str, int] = {}
        for segment in self._segments:
            totals[segment.region_name] = (
                totals.get(segment.region_name, 0) + segment.nbytes
            )
        return totals

    def region_fraction(self, region_name: str) -> float:
        """Fraction of the space backed by ``region_name``.

        For a uniform access distribution this equals the access fraction
        A_region of Section 5.3's throughput model.
        """
        if self.size == 0:
            return 0.0
        return self.bytes_per_region().get(region_name, 0) / self.size
