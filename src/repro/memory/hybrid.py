"""Hybrid and interleaved allocation policies.

:func:`allocate_hybrid` implements the greedy algorithm of Figure 8:

1. allocate GPU memory by default;
2. if the GPU is full, spill to the CPU memory *nearest* to the GPU;
3. if that CPU is full too, recursively search the next-nearest CPUs of
   the multi-socket NUMA system.

The result is a single contiguous virtual array (``AddressSpace``) whose
leading bytes live in GPU memory — exactly what the hybrid hash table
needs for graceful degradation (Section 5.3).

:func:`allocate_interleaved` implements the multi-GPU placement of
Section 6.3: pages interleaved round-robin over all GPU memories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.hardware.memory import MemoryKind
from repro.memory.address_space import AddressSpace
from repro.memory.allocator import Allocation, Allocator, OutOfMemoryError
from repro.utils.units import MIB


@dataclass
class HybridAllocation:
    """A contiguous virtual allocation spanning several physical regions."""

    nbytes: int
    address_space: AddressSpace
    pieces: List[Allocation] = field(default_factory=list)
    label: str = ""
    freed: bool = field(default=False, repr=False)

    @property
    def gpu_fraction(self) -> float:
        """Fraction of bytes resident in GPU memory (A_GPU of Section 5.3).

        Returns 0.0 once the allocation has been freed — nothing is
        resident anywhere.
        """
        gpu_bytes = sum(p.nbytes for p in self.pieces if p.is_gpu_memory)
        if self.nbytes == 0:
            return 0.0
        return gpu_bytes / self.nbytes

    def bytes_per_region(self) -> Dict[str, int]:
        """Mapped bytes per memory region.

        Raises:
            RuntimeError: if the allocation has been freed — the address
                space no longer maps any bytes.
        """
        if self.freed:
            raise RuntimeError(
                f"hybrid allocation {self.label!r} has been freed; "
                "its address space maps no bytes"
            )
        return self.address_space.bytes_per_region()

    def free(self, allocator: Allocator) -> None:
        """Release every physical piece and invalidate the address space."""
        if self.freed:
            raise RuntimeError(
                f"hybrid allocation {self.label!r} already freed"
            )
        for piece in self.pieces:
            allocator.free(piece)
        self.pieces.clear()
        # Invalidate the virtual mapping too: a freed allocation must not
        # keep reporting mapped bytes through bytes_per_region().
        self.address_space = AddressSpace()
        self.freed = True


def allocate_hybrid(
    allocator: Allocator,
    gpu_name: str,
    nbytes: int,
    spill_kind: MemoryKind = MemoryKind.PAGEABLE,
    gpu_reserve: int = 0,
    label: str = "hybrid",
) -> HybridAllocation:
    """Greedy GPU-first allocation with NUMA-recursive CPU spill (Fig. 8).

    Args:
        allocator: the machine's allocator.
        gpu_name: the GPU whose memory is preferred.
        nbytes: total bytes of the contiguous virtual array.
        spill_kind: memory kind for spilled CPU pages (Coherence works on
            pageable memory; Zero-Copy would need pinned).
        gpu_reserve: GPU bytes to leave free (for staging buffers etc.).

    Raises:
        OutOfMemoryError: when GPU plus all CPU regions cannot hold it.
    """
    if nbytes < 0:
        raise ValueError(f"allocation size must be non-negative: {nbytes}")
    machine = allocator.machine
    gpu = machine.processor(gpu_name)
    space = AddressSpace()
    pieces: List[Allocation] = []
    remaining = nbytes

    def take(region_name: str, amount: int, kind: MemoryKind) -> None:
        nonlocal remaining
        if amount <= 0:
            return
        try:
            piece = allocator.alloc(region_name, amount, kind=kind, label=label)
        except OutOfMemoryError:
            # The region filled up between the capacity probe and the
            # reservation (a concurrent allocation, or an injected fault
            # simulating one): treat it as exhausted and spill onward —
            # that *is* the greedy algorithm's step 2/3.
            return
        pieces.append(piece)
        space.append(amount, region_name)
        remaining -= amount

    # Step 1: GPU memory first.
    gpu_region = gpu.local_memory
    gpu_available = max(0, gpu_region.free_bytes - gpu_reserve)
    take(gpu_region.name, min(remaining, gpu_available), MemoryKind.DEVICE)

    # Step 2: nearest CPU, then recursively the next-nearest (NUMA).
    if remaining > 0:
        for cpu_region in machine.cpu_memories_by_distance(gpu_name):
            if remaining == 0:
                break
            take(cpu_region.name, min(remaining, cpu_region.free_bytes), spill_kind)

    if remaining > 0:
        for piece in pieces:
            allocator.free(piece)
        raise OutOfMemoryError(
            f"hybrid allocation of {nbytes} bytes does not fit: "
            f"{remaining} bytes left after exhausting GPU and CPU memory"
        )
    return HybridAllocation(
        nbytes=nbytes, address_space=space, pieces=pieces, label=label
    )


def allocate_interleaved(
    allocator: Allocator,
    gpu_names: Sequence[str],
    nbytes: int,
    page_bytes: int = 2 * MIB,
    label: str = "interleaved",
) -> HybridAllocation:
    """Interleave pages over several GPUs' memories (Section 6.3).

    Multi-GPU systems distribute large hash tables by interleaving pages
    over all GPUs, the same strategy NUMA systems use; GPUs tolerate the
    remote-access latency. Pages are dealt round-robin at ``page_bytes``
    granularity.
    """
    if not gpu_names:
        raise ValueError("need at least one GPU to interleave over")
    if nbytes < 0:
        raise ValueError(f"allocation size must be non-negative: {nbytes}")
    machine = allocator.machine
    regions = [machine.processor(name).local_memory for name in gpu_names]
    space = AddressSpace()
    pieces: List[Allocation] = []
    remaining = nbytes
    index = 0
    while remaining > 0:
        region = regions[index % len(regions)]
        amount = min(page_bytes, remaining)
        if region.free_bytes < amount:
            for piece in pieces:
                allocator.free(piece)
            raise OutOfMemoryError(
                f"interleaved allocation: {region.name} is full with "
                f"{remaining} bytes still to place"
            )
        piece = allocator.alloc(region.name, amount, MemoryKind.DEVICE, label=label)
        pieces.append(piece)
        space.append(amount, region.name)
        remaining -= amount
        index += 1
    return HybridAllocation(
        nbytes=nbytes, address_space=space, pieces=pieces, label=label
    )
