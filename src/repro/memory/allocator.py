"""Capacity-tracking allocator over a machine's memory regions.

Allocations carry their :class:`~repro.hardware.memory.MemoryKind`
because transfer methods are constrained by it (Table 1): Zero-Copy
needs pinned memory, UM methods need unified memory, and only the
Coherence method reaches pageable memory from the GPU.

Pinning also has a *time* cost (Section 4.1, Dynamic Pinning), which the
transfer-method models consume; the allocator records enough metadata
for them to do so.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.faults.runtime import active_plan
from repro.hardware.memory import MemoryKind, MemoryRegion
from repro.hardware.topology import Machine


class OutOfMemoryError(MemoryError):
    """Raised when a region (or region chain) cannot satisfy a request."""


@dataclass
class Allocation:
    """A contiguous allocation in one memory region."""

    id: int
    region: MemoryRegion
    nbytes: int
    kind: MemoryKind
    label: str = ""
    freed: bool = False

    @property
    def region_name(self) -> str:
        return self.region.name

    @property
    def is_gpu_memory(self) -> bool:
        return self.kind is MemoryKind.DEVICE

    def __str__(self) -> str:
        return (
            f"Allocation#{self.id}({self.label or 'anon'}, {self.nbytes} B, "
            f"{self.kind.value} in {self.region.name})"
        )


class Allocator:
    """Allocates from the memory regions of one machine.

    Thread-safe: the morsel-parallel execution backend plus
    fault-triggered spills can hit one allocator from several threads
    concurrently, so id generation, the live table, and the region
    reserve/release pairs all happen under one internal lock.  (Two
    *different* allocators over the same machine still race on region
    capacity — create one allocator per machine.)
    """

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self._ids = itertools.count(1)
        self._lock = threading.RLock()
        self.live: Dict[int, Allocation] = {}

    def alloc(
        self,
        region_name: str,
        nbytes: int,
        kind: MemoryKind = MemoryKind.PAGEABLE,
        label: str = "",
    ) -> Allocation:
        """Allocate ``nbytes`` in a named region; raises OutOfMemoryError."""
        if nbytes < 0:
            raise ValueError(f"allocation size must be non-negative: {nbytes}")
        region = self.machine.memory(region_name)
        self._validate_kind(region, kind)
        plan = active_plan()
        if plan is not None:
            # Fault-injection site: a chaos plan may fail this allocation
            # ordinal with an InjectedOutOfMemoryError.
            plan.check_alloc(region=region_name, nbytes=nbytes, label=label)
        with self._lock:
            try:
                region.reserve(nbytes)
            except MemoryError as exc:
                raise OutOfMemoryError(str(exc)) from exc
            allocation = Allocation(
                id=next(self._ids),
                region=region,
                nbytes=nbytes,
                kind=kind,
                label=label,
            )
            self.live[allocation.id] = allocation
        return allocation

    @staticmethod
    def _validate_kind(region: MemoryRegion, kind: MemoryKind) -> None:
        gpu_region = region.spec.name.startswith("hbm")
        if gpu_region and kind is not MemoryKind.DEVICE:
            raise ValueError(
                f"GPU memory {region.name} only holds device allocations, "
                f"got {kind.value}"
            )
        if not gpu_region and kind is MemoryKind.DEVICE:
            raise ValueError(
                f"device allocations must live in GPU memory, not {region.name}"
            )

    def free(self, allocation: Allocation) -> None:
        """Return an allocation's bytes; double frees raise."""
        with self._lock:
            if allocation.freed:
                raise ValueError(f"double free of {allocation}")
            if allocation.id not in self.live:
                raise ValueError(f"{allocation} was not made by this allocator")
            allocation.region.release(allocation.nbytes)
            allocation.freed = True
            del self.live[allocation.id]

    def used_bytes(self, region_name: str) -> int:
        """Bytes currently allocated in one region."""
        with self._lock:
            return self.machine.memory(region_name).allocated

    def free_bytes(self, region_name: str) -> int:
        """Bytes still available in one region."""
        with self._lock:
            return self.machine.memory(region_name).free_bytes

    def live_allocations(self, region_name: Optional[str] = None) -> List[Allocation]:
        """Outstanding allocations, optionally filtered by region."""
        with self._lock:
            allocations = list(self.live.values())
        if region_name is not None:
            allocations = [a for a in allocations if a.region.name == region_name]
        return allocations
