"""Functional Unified Memory page-migration simulator.

The UM transfer methods (Table 1) move data at *page* granularity: a
GPU access to a non-resident page faults, the OS migrates the page into
GPU memory, and — when GPU memory is full — evicts another page back.
This module simulates that mechanism directly: a :class:`UnifiedSpace`
tracks per-page residency under a clock (second-chance) replacement
policy and counts faults, evictions, and hits for an access trace.

The cost model's UM constants (fault cost, thrash behaviour behind
Figure 17's PCI-e cliff) can thus be cross-checked against a mechanism
simulation instead of being taken on faith; see
``tests/memory/test_pages.py`` and the ``um_thrashing`` ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np


@dataclass(frozen=True)
class MigrationStats:
    """Outcome of replaying an access trace."""

    accesses: int
    faults: int
    evictions: int

    @property
    def hits(self) -> int:
        return self.accesses - self.faults

    @property
    def fault_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.faults / self.accesses

    def migrated_bytes(self, page_bytes: int) -> int:
        """Bytes moved over the interconnect (faults + write-backs)."""
        return (self.faults + self.evictions) * page_bytes


class UnifiedSpace:
    """A unified allocation of ``total_pages``, at most ``resident_pages``
    of which fit in GPU memory at a time.

    Replacement is the clock (second-chance) algorithm — what the
    driver's LRU approximation amounts to.
    """

    def __init__(self, total_pages: int, resident_pages: int) -> None:
        if total_pages <= 0:
            raise ValueError(f"need at least one page, got {total_pages}")
        if resident_pages <= 0:
            raise ValueError(
                f"need at least one resident frame, got {resident_pages}"
            )
        self.total_pages = total_pages
        self.resident_pages = min(resident_pages, total_pages)
        self.resident = np.zeros(total_pages, dtype=bool)
        self.referenced = np.zeros(total_pages, dtype=bool)
        self._frames: list = []  # resident pages in clock order
        self._hand = 0
        self.faults = 0
        self.evictions = 0
        self.accesses = 0

    # ------------------------------------------------------------------
    def _evict_one(self) -> None:
        """Advance the clock hand until a non-referenced page is found."""
        while True:
            if self._hand >= len(self._frames):
                self._hand = 0
            page = self._frames[self._hand]
            if self.referenced[page]:
                self.referenced[page] = False
                self._hand += 1
                continue
            self.resident[page] = False
            self._frames.pop(self._hand)
            self.evictions += 1
            return

    def access(self, page: int) -> bool:
        """Access one page; returns True on a fault (migration)."""
        if not 0 <= page < self.total_pages:
            raise IndexError(f"page {page} out of range [0, {self.total_pages})")
        self.accesses += 1
        if self.resident[page]:
            self.referenced[page] = True
            return False
        self.faults += 1
        if len(self._frames) >= self.resident_pages:
            self._evict_one()
        self.resident[page] = True
        self.referenced[page] = True
        self._frames.append(page)
        return True

    def access_trace(self, pages: Iterable[int]) -> MigrationStats:
        """Replay a page trace; returns cumulative stats *deltas*."""
        faults0, evictions0, accesses0 = self.faults, self.evictions, self.accesses
        for page in pages:
            self.access(int(page))
        return MigrationStats(
            accesses=self.accesses - accesses0,
            faults=self.faults - faults0,
            evictions=self.evictions - evictions0,
        )

    @property
    def resident_count(self) -> int:
        return len(self._frames)


def sequential_trace(total_pages: int, passes: int = 1) -> np.ndarray:
    """Page trace of a sequential scan repeated ``passes`` times."""
    if passes <= 0:
        raise ValueError("need at least one pass")
    return np.tile(np.arange(total_pages, dtype=np.int64), passes)


def uniform_random_trace(
    total_pages: int, accesses: int, seed: int = 0
) -> np.ndarray:
    """Page trace of uniform random accesses (a hash table's pattern)."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, total_pages, size=accesses, dtype=np.int64)


def expected_fault_rate_uniform(total_pages: int, resident_pages: int) -> float:
    """Analytic steady-state fault rate for uniform random accesses.

    With uniform accesses, residency converges to an arbitrary subset of
    ``resident_pages`` pages, so the miss probability is simply the
    non-resident fraction — the model behind the cost model's UM
    thrashing term (Figure 17's PCI-e out-of-core floor).
    """
    if total_pages <= 0:
        raise ValueError("need at least one page")
    return max(0.0, 1.0 - min(resident_pages, total_pages) / total_pages)
