"""Unified observability layer: spans, metrics, and run manifests.

Three pieces, designed to answer the paper's kind of question — "which
resource explains this number?" — for every priced run:

* **Span tracing** (:mod:`repro.obs.trace`): nested spans on a
  deterministic sim-clock, threaded through ``CostModel.phase_cost``,
  the join operators, the morsel dispatcher, and the discrete-event
  simulator.
* **Metrics** (:mod:`repro.obs.metrics`): counters/gauges/histograms
  populated from per-stream occupancy — bytes per link, atomic ops,
  cache hit rates, morsel batch sizes.
* **Run manifests** (:mod:`repro.obs.manifest`): schema-versioned JSON
  records (machine, workload, per-phase occupancy, bottleneck chains)
  consumed by ``python -m repro.obs.report`` and the bench trajectory.

An :class:`Observability` bundle (tracer + metrics) rides along one
operator instance; every ``CostModel`` has one (a fresh bundle is
created when none is injected).

``repro.obs.explain`` and ``repro.obs.manifest`` import the cost model,
so they are loaded lazily here to keep ``repro.costmodel.model ->
repro.obs`` import-cycle free.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any

from repro.obs.clock import SimClock
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import ActiveSpan, Span, Timeline, Tracer

#: Submodules (and their key names) resolved lazily on attribute access.
_LAZY_ATTRS = {
    "explain": "repro.obs.explain",
    "manifest": "repro.obs.manifest",
    "report": "repro.obs.report",
    "bottleneck_chain": "repro.obs.explain",
    "render_chain": "repro.obs.explain",
    "utilization": "repro.obs.explain",
    "explain_join": "repro.obs.explain",
    "RunManifest": "repro.obs.manifest",
    "build_manifest": "repro.obs.manifest",
    "MANIFEST_SCHEMA_VERSION": "repro.obs.manifest",
}


@dataclass
class Observability:
    """Tracer + metrics bundle shared by one pricing pipeline."""

    tracer: Tracer = field(default_factory=Tracer)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @classmethod
    def create(cls) -> "Observability":
        """Fresh bundle: new SimClock, Tracer, and MetricsRegistry."""
        return cls(tracer=Tracer(), metrics=MetricsRegistry())

    @property
    def clock(self) -> SimClock:
        """The tracer's deterministic simulated clock."""
        return self.tracer.clock

    @property
    def timeline(self) -> Timeline:
        """The tracer's recorded span timeline."""
        return self.tracer.timeline


def __getattr__(name: str) -> Any:
    module_name = _LAZY_ATTRS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
    module = importlib.import_module(module_name)
    if name in ("explain", "manifest", "report"):
        value: Any = module
    else:
        value = getattr(module, name)
    globals()[name] = value  # cache for the next lookup
    return value


__all__ = [
    "ActiveSpan",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "SimClock",
    "Span",
    "Timeline",
    "Tracer",
    # lazily resolved:
    "bottleneck_chain",
    "render_chain",
    "utilization",
    "explain_join",
    "RunManifest",
    "build_manifest",
    "MANIFEST_SCHEMA_VERSION",
]
