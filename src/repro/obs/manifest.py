"""Schema-versioned JSON run manifests.

A *run manifest* is the machine-readable record of one priced run:
which machine and calibration produced it, what the workload was, how
long each phase took, which resource was each phase's bottleneck (and
how close the contenders were), plus the metric and span dumps of the
observability layer.  Manifests are deterministic — no wall-clock
timestamps — so they can be committed as bench baselines
(``BENCH_pr2.json``) and diffed across PRs.

Bump :data:`MANIFEST_SCHEMA_VERSION` whenever a field is added,
renamed, or changes meaning, and record the bump in the schema
changelog of ``docs/observability.md`` — CI's bench-smoke job fails if
the version drifts without a changelog entry (see
:func:`check_changelog`).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, is_dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.costmodel.calibration import Calibration
from repro.costmodel.model import PhaseCost
from repro.hardware.topology import Machine
from repro.obs.explain import bottleneck_chain, utilization

#: Version of the manifest JSON layout.  Keep in lockstep with the
#: schema changelog in docs/observability.md.
MANIFEST_SCHEMA_VERSION = "1.4"

#: The *declared* manifest schema, enforced statically by the
#: ``manifest-schema`` analysis pass: every key a writer function puts
#: into a manifest section must be listed here, and the section key
#: sets are pinned by ``checksum`` (a BLAKE2b digest of the sorted
#: ``sections`` mapping).  Adding, renaming, or removing a key
#: therefore requires editing this declaration, recomputing the
#: checksum (the pass prints the expected value on mismatch), bumping
#: :data:`MANIFEST_SCHEMA_VERSION`, and recording the bump in the
#: docs/observability.md changelog (enforced by :func:`check_changelog`
#: in CI) — a new key cannot drift in silently.
#:
#: ``version`` must equal :data:`MANIFEST_SCHEMA_VERSION`; each section
#: names its writer (``Class.method`` or a module-level function) and
#: the exact keys that writer may emit.
MANIFEST_SCHEMA = {
    "version": "1.4",
    "checksum": "57cf6792e878707a",
    "sections": {
        "__top__": {
            "writer": "RunManifest.to_dict",
            "keys": [
                "schema_version",
                "kind",
                "machine",
                "workload",
                "config",
                "phases",
                "bottleneck_summary",
                "results",
                "metrics",
                "spans",
                "calibration",
                "resilience",
                "optimizer",
                "serving",
            ],
        },
        "__document__": {
            "writer": "write_manifest_file",
            "keys": ["schema_version", "generator", "runs"],
        },
        "phases": {
            "writer": "phase_record",
            "keys": [
                "label",
                "seconds",
                "bottleneck",
                "occupancy",
                "utilization",
                "bottleneck_chain",
            ],
        },
        "machine": {
            "writer": "machine_summary",
            "keys": ["name", "processors", "memories", "links"],
        },
        "resilience": {
            "writer": "ResilienceLog.section",
            "keys": [
                "schema_version",
                "plan",
                "injected",
                "injected_counts",
                "counters",
                "events",
            ],
        },
        "optimizer": {
            "writer": "OptimizerResult.section",
            "keys": [
                "schema_version",
                "machine",
                "shape",
                "strategy",
                "transfer_method",
                "placement",
                "gpu_fraction",
                "backend",
                "shards",
                "predicted_seconds",
                "considered",
                "rejected",
                "candidates",
            ],
        },
        "serving": {
            "writer": "ServingRecord.section",
            "keys": [
                "schema_version",
                "request_id",
                "tenant",
                "workload",
                "machine",
                "arrival",
                "start",
                "finish",
                "latency",
                "solo_seconds",
                "stretch",
                "cache_hit",
                "outcome",
                "deadline",
                "cancelled_at",
                "retries",
                "shed_reason",
                "breaker_state",
            ],
        },
    },
}


def machine_summary(machine: Machine) -> Dict[str, Any]:
    """JSON-ready topology description of a simulated machine."""
    return {
        "name": machine.name,
        "processors": {
            name: {
                "kind": proc.kind.value,
                "spec": proc.spec.name,
                "local_memory": proc.local_memory.name,
            }
            for name, proc in machine.processors.items()
        },
        "memories": {
            name: {
                "spec": region.spec.name,
                "owner": region.owner,
                "capacity_bytes": region.capacity,
            }
            for name, region in machine.memories.items()
        },
        "links": [
            {
                "spec": link.spec.name,
                "a": link.endpoint_a,
                "b": link.endpoint_b,
                "cache_coherent": link.spec.cache_coherent,
            }
            for link in machine.links
        ],
    }


def calibration_summary(calibration: Calibration) -> Dict[str, Any]:
    """The calibration constants, flattened to JSON-ready values."""
    if is_dataclass(calibration):
        return asdict(calibration)
    return {"repr": repr(calibration)}


def phase_record(cost: PhaseCost) -> Dict[str, Any]:
    """One phase's cost as a manifest entry with its bottleneck chain."""
    return {
        "label": cost.label,
        "seconds": cost.seconds,
        "bottleneck": cost.bottleneck,
        "occupancy": dict(cost.occupancy),
        "utilization": utilization(cost),
        "bottleneck_chain": bottleneck_chain(cost),
    }


@dataclass
class RunManifest:
    """One priced run: config in, per-phase attribution out."""

    kind: str  # e.g. "nopa", "coop[het]"
    machine: Dict[str, Any]
    workload: Dict[str, Any]
    config: Dict[str, Any] = field(default_factory=dict)
    phases: List[Dict[str, Any]] = field(default_factory=list)
    results: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    calibration: Dict[str, Any] = field(default_factory=dict)
    #: Fault-injection audit (schema 1.1): the ``section()`` of a
    #: :class:`repro.faults.ResilienceLog`, or None for fault-free runs.
    resilience: Optional[Dict[str, Any]] = None
    #: Optimizer decision (schema 1.2): the ``section()`` of a
    #: :class:`repro.logical.OptimizerResult` — which physical plan was
    #: chosen and every alternative considered — or None for runs whose
    #: physical configuration was hand-picked.
    optimizer: Optional[Dict[str, Any]] = None
    #: Serving-layer outcome (schema 1.3): the ``section()`` of a
    #: :class:`repro.serve.ServingRecord` — arrival/start/finish and
    #: the contention stretch the multi-query scheduler assigned — or
    #: None for runs priced outside the serving engine.
    serving: Optional[Dict[str, Any]] = None

    @property
    def bottleneck_summary(self) -> List[str]:
        """``["build -> mem:gpu0-mem", "probe -> link:nvlink0"]``."""
        return [
            f"{phase['label'] or '(phase)'} -> {phase['bottleneck']}"
            for phase in self.phases
        ]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation, schema version included."""
        return {
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "kind": self.kind,
            "machine": self.machine,
            "workload": self.workload,
            "config": self.config,
            "phases": self.phases,
            "bottleneck_summary": self.bottleneck_summary,
            "results": self.results,
            "metrics": self.metrics,
            "spans": self.spans,
            "calibration": self.calibration,
            "resilience": self.resilience,
            "optimizer": self.optimizer,
            "serving": self.serving,
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialize :meth:`to_dict` as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def write(self, path: "Path | str") -> Path:
        """Write the manifest JSON to ``path`` and return the path."""
        out = Path(path)
        out.write_text(self.to_json() + "\n")
        return out


def build_manifest(
    kind: str,
    machine: Machine,
    phases: List[PhaseCost],
    workload: Optional[Dict[str, Any]] = None,
    config: Optional[Dict[str, Any]] = None,
    results: Optional[Dict[str, Any]] = None,
    obs: Optional[Any] = None,
    calibration: Optional[Calibration] = None,
    resilience: Optional[Dict[str, Any]] = None,
    optimizer: Optional[Dict[str, Any]] = None,
    serving: Optional[Dict[str, Any]] = None,
) -> RunManifest:
    """Assemble a manifest from priced phases plus observability state.

    ``obs`` is an :class:`repro.obs.Observability` bundle (or anything
    with ``metrics.snapshot()`` / ``tracer.timeline.to_dicts()``).
    ``resilience`` is a :meth:`repro.faults.ResilienceLog.section` dump
    for chaos runs; fault-free runs leave it None.  ``optimizer`` is a
    :meth:`repro.logical.OptimizerResult.section` dump for runs whose
    physical plan the optimizer chose; hand-configured runs leave it
    None.  ``serving`` is a :meth:`repro.serve.ServingRecord.section`
    dump for queries served by the multi-query engine; standalone runs
    leave it None.
    """
    manifest = RunManifest(
        kind=kind,
        machine=machine_summary(machine),
        workload=dict(workload or {}),
        config=dict(config or {}),
        phases=[phase_record(cost) for cost in phases],
        results=dict(results or {}),
        resilience=resilience,
        optimizer=optimizer,
        serving=serving,
    )
    if obs is not None:
        manifest.metrics = obs.metrics.snapshot()
        manifest.spans = obs.tracer.timeline.to_dicts()
    if calibration is not None:
        manifest.calibration = calibration_summary(calibration)
    return manifest


def write_manifest_file(
    path: "Path | str", manifests: List[RunManifest], generator: str
) -> Path:
    """Write several runs into one schema-versioned manifest document."""
    document = {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "generator": generator,
        "runs": [m.to_dict() for m in manifests],
    }
    out = Path(path)
    out.write_text(json.dumps(document, indent=2) + "\n")
    return out


def check_changelog(doc_path: "Path | str") -> None:
    """Fail if the current schema version has no changelog entry.

    CI's bench-smoke job runs this so a schema drift cannot merge
    silently: any bump of :data:`MANIFEST_SCHEMA_VERSION` must land
    together with a line mentioning it in the schema-changelog section
    of ``docs/observability.md``.
    """
    text = Path(doc_path).read_text()
    needle = f"`{MANIFEST_SCHEMA_VERSION}`"
    if needle not in text:
        raise SystemExit(
            f"manifest schema version {MANIFEST_SCHEMA_VERSION} has no "
            f"changelog entry in {doc_path}; add a line mentioning "
            f"{needle} to the schema changelog before shipping the bump"
        )


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.obs.manifest --check-changelog docs/observability.md``"""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check-changelog",
        metavar="DOC",
        help="verify the schema version is recorded in the given doc",
    )
    args = parser.parse_args(argv)
    if args.check_changelog:
        check_changelog(args.check_changelog)
        print(
            f"manifest schema {MANIFEST_SCHEMA_VERSION}: changelog entry found"
        )
        return 0
    print(MANIFEST_SCHEMA_VERSION)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
