"""Span tracing on a deterministic sim-clock.

This module absorbed the old ``repro.sim.trace``: :class:`Span` and
:class:`Timeline` keep their original API — morsel counts per worker,
idle tails, makespans — and gain structured attributes plus a
:class:`Tracer` front end:

    with tracer.span("probe", processor="gpu0") as span:
        span.advance(cost.seconds)          # simulated duration
        span.annotate(bottleneck=cost.bottleneck)

Spans are timed against a :class:`~repro.obs.clock.SimClock`, so a
trace of a priced join is a deterministic function of the workload and
machine — there is no wall-clock anywhere in the pipeline.

Span emission is thread-safe: :meth:`Timeline.record` appends under a
lock and the tracer's span-nesting stack is thread-local, so the
morsel-parallel execution backend (``repro.exec``) can record from
concurrent workers without corrupting the trace.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.clock import SimClock


@dataclass(frozen=True)
class Span:
    """One unit of simulated work on one worker."""

    worker: str
    label: str
    start: float
    end: float
    units: float = 0.0
    parent: str = ""
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Simulated seconds between start and end."""
        return self.end - self.start

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"span ends before it starts: {self}")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (for run manifests)."""
        return {
            "worker": self.worker,
            "label": self.label,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "units": self.units,
            "parent": self.parent,
            "attrs": dict(self.attrs),
        }


@dataclass
class Timeline:
    """Append-only record of spans (appends are lock-guarded)."""

    spans: List[Span] = field(default_factory=list)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(
        self,
        worker: str,
        label: str,
        start: float,
        end: float,
        units: float = 0.0,
        parent: str = "",
        **attrs: Any,
    ) -> Span:
        """Append one completed span and return it."""
        span = Span(
            worker=worker,
            label=label,
            start=start,
            end=end,
            units=units,
            parent=parent,
            attrs=attrs,
        )
        with self._lock:
            self.spans.append(span)
        return span

    def _snapshot(self) -> List[Span]:
        """One consistent copy of the span list; every reader goes
        through here so a concurrent ``record`` cannot interleave."""
        with self._lock:
            return list(self.spans)

    def by_worker(self) -> Dict[str, List[Span]]:
        """Spans grouped by worker, in recording order."""
        result: Dict[str, List[Span]] = {}
        for span in self._snapshot():
            result.setdefault(span.worker, []).append(span)
        return result

    def by_label(self, label: str) -> List[Span]:
        """All spans with the given label, in recording order."""
        return [s for s in self._snapshot() if s.label == label]

    def busy_time(self, worker: str) -> float:
        """Total simulated seconds this worker spent inside spans."""
        return sum(s.duration for s in self._snapshot() if s.worker == worker)

    def units_processed(self, worker: str) -> float:
        """Total units (tuples) attributed to this worker's spans."""
        return sum(s.units for s in self._snapshot() if s.worker == worker)

    def makespan(self) -> float:
        """Earliest span start to latest span end (0.0 if empty)."""
        spans = self._snapshot()
        if not spans:
            return 0.0
        return max(s.end for s in spans) - min(s.start for s in spans)

    def idle_tail(self, worker: str) -> float:
        """Time between a worker's last span end and the global makespan
        end — the execution-skew penalty the scheduler tries to minimize.
        """
        spans = self._snapshot()
        mine = [s.end for s in spans if s.worker == worker]
        if not mine:
            return 0.0
        return max(s.end for s in spans) - max(mine)

    def to_dicts(self) -> List[Dict[str, Any]]:
        """JSON-ready list of all spans (for run manifests)."""
        return [span.to_dict() for span in self._snapshot()]


class ActiveSpan:
    """Handle yielded by :meth:`Tracer.span` while the span is open."""

    __slots__ = ("_tracer", "label", "worker", "start", "units", "attrs")

    def __init__(
        self,
        tracer: "Tracer",
        label: str,
        worker: str,
        start: float,
        units: float,
        attrs: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.label = label
        self.worker = worker
        self.start = start
        self.units = units
        self.attrs = attrs

    def advance(self, seconds: float) -> float:
        """Advance the tracer's sim-clock (the span's simulated work)."""
        return self._tracer.clock.advance(seconds)

    def annotate(self, **attrs: Any) -> "ActiveSpan":
        """Attach structured attributes to the span."""
        self.attrs.update(attrs)
        return self

    def add_units(self, units: float) -> "ActiveSpan":
        """Credit processed units (tuples) to the open span."""
        self.units += units
        return self


class Tracer:
    """Records nested spans against a shared deterministic clock.

    A span's duration is whatever the clock advanced between entry and
    exit — the cost model advances it by priced phase seconds, the
    discrete-event simulator by elapsed virtual time.
    """

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        timeline: Optional[Timeline] = None,
    ) -> None:
        self.clock = clock or SimClock()
        self.timeline = timeline or Timeline()
        self._local = threading.local()

    @property
    def _stack(self) -> List[ActiveSpan]:
        # Span nesting is per-thread: concurrent workers each keep their
        # own stack, so one worker's open span never becomes another's
        # parent (and push/pop need no lock).
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @property
    def current_label(self) -> str:
        """Label of the innermost open span ("" outside any span)."""
        return self._stack[-1].label if self._stack else ""

    @contextmanager
    def span(
        self,
        label: str,
        worker: str = "main",
        units: float = 0.0,
        **attrs: Any,
    ) -> Iterator[ActiveSpan]:
        """Open a span; it closes (and records) when the block exits."""
        handle = ActiveSpan(
            self, label, worker, start=self.clock.now, units=units, attrs=attrs
        )
        parent = self.current_label
        self._stack.append(handle)
        try:
            yield handle
        finally:
            self._stack.pop()
            self.timeline.record(
                handle.worker,
                handle.label,
                handle.start,
                self.clock.now,
                units=handle.units,
                parent=parent,
                **handle.attrs,
            )

    def record(
        self,
        worker: str,
        label: str,
        start: float,
        end: float,
        units: float = 0.0,
        **attrs: Any,
    ) -> Span:
        """Record a completed span directly (no clock interaction)."""
        return self.timeline.record(
            worker,
            label,
            start,
            end,
            units=units,
            parent=self.current_label,
            **attrs,
        )
