"""A small labeled-metrics registry (counters, gauges, histograms).

The cost model populates it from per-stream occupancy so every priced
stream is attributable: bytes moved per interconnect link, atomic
update counts, cache hit rates, morsel batch sizes.  Everything is a
plain deterministic value — no wall-clock timestamps — so metric
snapshots can be diffed across runs and committed as bench baselines.

Metric identity is ``(name, sorted labels)``, Prometheus-style::

    registry.counter("link_bytes_total", link="nvlink0").inc(4096)
    registry.histogram("dispatch_batch_tuples", worker="gpu0").observe(2**22)

Registry and cells are thread-safe: the morsel-parallel execution
backend (``repro.exec``) updates metrics from real concurrent workers,
so get-or-create and every read-modify-write (``inc``, ``set``,
``observe``) are lock-guarded — concurrent increments lose nothing.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram buckets: powers of four from 1 to ~10^9, wide
#: enough for tuple counts and byte volumes alike.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(4.0**e for e in range(16))


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """A monotonically increasing total."""

    name: str
    labels: LabelKey = ()
    value: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease: {amount}")
        with self._lock:
            self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {"labels": dict(self.labels), "value": self.value}


@dataclass
class Gauge:
    """A point-in-time value (last write wins)."""

    name: str
    labels: LabelKey = ()
    value: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {"labels": dict(self.labels), "value": self.value}


@dataclass
class Histogram:
    """Cumulative-bucket histogram with a running sum and count."""

    name: str
    labels: LabelKey = ()
    buckets: Tuple[float, ...] = DEFAULT_BUCKETS
    counts: List[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError(f"histogram buckets must be sorted: {self.buckets}")
        if not self.counts:
            # one bin per upper bound plus the +Inf overflow bin
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        with self._lock:
            self.counts[bisect.bisect_left(self.buckets, value)] += 1
            self.total += value
            self.count += 1

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        # One consistent cut of (count, total, counts); the mean is
        # recomputed inline because ``self.mean`` takes the same
        # non-reentrant lock.
        with self._lock:
            return {
                "labels": dict(self.labels),
                "count": self.count,
                "sum": self.total,
                "mean": self.total / self.count if self.count else 0.0,
                "buckets": {
                    ("+Inf" if i == len(self.buckets) else repr(self.buckets[i])): n
                    for i, n in enumerate(self.counts)
                    if n
                },
            }


class MetricsRegistry:
    """Get-or-create registry keyed by (kind, name, labels)."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, str, LabelKey], Any] = {}
        self._lock = threading.Lock()

    def _get(self, kind: str, name: str, labels: Dict[str, Any], factory):
        key = (kind, name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory(name, key[2])
                self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        """Get or create the counter with this name and label set."""
        return self._get(
            "counter", name, labels, lambda n, lk: Counter(name=n, labels=lk)
        )

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Get or create the gauge with this name and label set."""
        return self._get(
            "gauge", name, labels, lambda n, lk: Gauge(name=n, labels=lk)
        )

    def histogram(
        self,
        name: str,
        buckets: Optional[Tuple[float, ...]] = None,
        **labels: Any,
    ) -> Histogram:
        """Get or create the histogram with this name and label set."""
        return self._get(
            "histogram",
            name,
            labels,
            lambda n, lk: Histogram(
                name=n, labels=lk, buckets=buckets or DEFAULT_BUCKETS
            ),
        )

    def __iter__(self) -> Iterator[Any]:
        with self._lock:
            metrics = [self._metrics[key] for key in sorted(self._metrics)]
        yield from metrics

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def snapshot(self) -> Dict[str, List[Dict[str, Any]]]:
        """``{"counter:name": [{labels, value}, ...], ...}``, sorted."""
        with self._lock:
            items = sorted(self._metrics.items())
        out: Dict[str, List[Dict[str, Any]]] = {}
        for (kind, name, _labels), metric in items:
            out.setdefault(f"{kind}:{name}", []).append(metric.snapshot())
        return out

    def value(self, kind: str, name: str, **labels: Any) -> Optional[float]:
        """Convenience lookup of a counter/gauge value (None if absent)."""
        with self._lock:
            metric = self._metrics.get((kind, name, _label_key(labels)))
        return None if metric is None else metric.value
