"""Per-phase occupancy and bottleneck reports for priced joins.

The CLI answer to "which resource explains this number?": runs a NOPA
join and a cooperative (Het) join with a shared observability bundle,
prints each phase's occupancy table and bottleneck chain, and writes a
schema-versioned JSON run manifest for diffing across PRs.

Usage::

    python -m repro.obs.report                       # print breakdowns
    python -m repro.obs.report --out manifest.json   # also write JSON
    python -m repro.obs.report --machine intel       # PCI-e machine
"""

from __future__ import annotations

import argparse
from typing import Any, Dict, List, Optional, Tuple

from repro.core.join.coop import CoopJoin, CoopResult
from repro.core.join.nopa import JoinResult, NoPartitioningJoin
from repro.hardware.topology import Machine, ibm_ac922, intel_xeon_v100
from repro.obs import Observability
from repro.obs.explain import explain, render_chain
from repro.obs.manifest import RunManifest, build_manifest, write_manifest_file
from repro.workloads.builders import JoinWorkload, workload_a

#: default execution scale: small enough to run in well under a second.
DEFAULT_SCALE = 2.0**-13


def _machine(name: str) -> Machine:
    if name == "ibm":
        return ibm_ac922()
    if name == "intel":
        return intel_xeon_v100()
    raise SystemExit(f"unknown machine {name!r}; valid: ibm, intel")


def _workload_summary(workload: JoinWorkload) -> Dict[str, Any]:
    return {
        "name": workload.name,
        "description": workload.description,
        "modeled_r_tuples": workload.r.modeled_tuples,
        "modeled_s_tuples": workload.s.modeled_tuples,
        "executed_r_tuples": workload.r.executed_tuples,
        "executed_s_tuples": workload.s.executed_tuples,
        "r_location": workload.r.location,
        "r_kind": workload.r.kind.value,
        "s_location": workload.s.location,
        "s_kind": workload.s.kind.value,
    }


def report_nopa(
    machine: Machine,
    workload: JoinWorkload,
    placement: str = "gpu",
    method: str = "coherence",
    processor: str = "gpu0",
) -> Tuple[JoinResult, RunManifest]:
    """Run one NOPA join, print its breakdown, return (result, manifest)."""
    workload = workload.placed_for(method)
    obs = Observability.create()
    join = NoPartitioningJoin(
        machine,
        hash_table_placement=placement,
        transfer_method=method,
        obs=obs,
    )
    result = join.run(workload.r, workload.s, processor=processor)
    print(
        f"== NOPA join on {machine.name} "
        f"(table={placement}, method={method}, {processor}) =="
    )
    print(
        f"matches: {result.matches}  "
        f"throughput: {result.throughput_gtuples:.2f} G Tuples/s"
    )
    for cost in (result.build_cost, result.probe_cost):
        print()
        print(explain(cost))
        print(f"chain: {render_chain(cost)}")
    manifest = build_manifest(
        kind="nopa",
        machine=machine,
        phases=[result.build_cost, result.probe_cost],
        workload=_workload_summary(workload),
        config={
            "hash_table_placement": placement,
            "transfer_method": method,
            "processor": processor,
        },
        results={
            "matches": result.matches,
            "aggregate": result.aggregate,
            "runtime_seconds": result.runtime,
            "throughput_gtuples": result.throughput_gtuples,
            "placement_fractions": dict(result.placement.fractions),
            "payload_lines_loaded": result.payload_lines_loaded,
        },
        obs=obs,
        calibration=join.cost_model.calibration,
    )
    return result, manifest


def report_coop(
    machine: Machine,
    workload: JoinWorkload,
    strategy: str = "het",
    workers: Tuple[str, ...] = ("cpu0", "gpu0"),
) -> Tuple[CoopResult, RunManifest]:
    """Run one cooperative join, print its breakdown and worker shares."""
    obs = Observability.create()
    join = CoopJoin(machine, strategy=strategy, obs=obs)
    result = join.run(workload.r, workload.s, workers=workers)
    print(
        f"== Cooperative join on {machine.name} "
        f"(strategy={strategy}, workers={'+'.join(workers)}) =="
    )
    print(
        f"matches: {result.matches}  "
        f"throughput: {result.throughput_gtuples:.2f} G Tuples/s"
    )
    for cost in (result.build_cost, result.probe_cost):
        if cost is None:
            continue
        print()
        print(explain(cost))
        print(f"chain: {render_chain(cost)}")
    print()
    print("probe shares (morsel dispatch):")
    for worker in result.workers:
        share = result.worker_shares.get(worker, 0.0)
        rate = result.worker_rates.get(worker, 0.0)
        print(f"  {worker:>6}: {share:6.1%} of S at {rate / 1e9:.2f} G Tuples/s")
    phases = [c for c in (result.build_cost, result.probe_cost) if c is not None]
    manifest = build_manifest(
        kind=f"coop[{strategy}]",
        machine=machine,
        phases=phases,
        workload=_workload_summary(workload),
        config={"strategy": strategy, "workers": list(workers)},
        results={
            "matches": result.matches,
            "aggregate": result.aggregate,
            "runtime_seconds": result.runtime,
            "throughput_gtuples": result.throughput_gtuples,
            "worker_rates": dict(result.worker_rates),
            "worker_shares": dict(result.worker_shares),
        },
        obs=obs,
        calibration=join.cost_model.calibration,
    )
    return result, manifest


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--machine", default="ibm", choices=("ibm", "intel"))
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument(
        "--out", default=None, metavar="PATH", help="write a JSON manifest"
    )
    args = parser.parse_args(argv)

    machine = _machine(args.machine)
    workload = workload_a(scale=args.scale)
    manifests: List[RunManifest] = []

    if args.machine == "ibm":
        nopa_method, coop_strategy = "coherence", "het"
    else:
        # PCI-e: no coherence, no shared mutable table — use the
        # Zero-Copy pull method and the replicated-table strategy.
        nopa_method, coop_strategy = "zero_copy", "gpu+het"

    _, manifest = report_nopa(machine, workload, method=nopa_method)
    manifests.append(manifest)
    print()
    _, manifest = report_coop(machine, workload, strategy=coop_strategy)
    manifests.append(manifest)

    if args.out:
        path = write_manifest_file(
            args.out, manifests, generator="repro.obs.report"
        )
        print(f"\nwrote {path} ({len(manifests)} runs)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
