"""Human-readable explanations of phase costs and bottleneck chains.

``explain(cost)`` renders a PhaseCost's per-resource occupancy as a
utilization table — the tool for answering "why is this join this
fast?" (e.g. Figure 12's Coherence join is NVLink-bound at ~99%
utilization while the GPU memory idles at ~60%).

``bottleneck_chain(cost)`` is the structured form: resources ranked by
occupancy, each with its busy seconds and utilization, so manifests and
regression checks can assert *which* resource explains a number, not
just the number.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.costmodel.model import PhaseCost
from repro.utils.tables import Table
from repro.utils.units import format_time


def utilization(cost: PhaseCost) -> dict:
    """Resource -> busy fraction of the phase (1.0 = the bottleneck)."""
    if cost.seconds <= 0 or not cost.occupancy:
        return {}
    bottleneck_busy = cost.occupancy[cost.bottleneck]
    if bottleneck_busy <= 0:
        return {resource: 0.0 for resource in cost.occupancy}
    return {
        resource: busy / bottleneck_busy
        for resource, busy in cost.occupancy.items()
    }


def bottleneck_chain(cost: PhaseCost, top: int = 0) -> List[Dict[str, Any]]:
    """Resources ranked by occupancy (the phase's bottleneck chain).

    Each entry: ``{"resource", "busy_seconds", "utilization"}``.  The
    first entry is the bottleneck; the rest show how close the next
    contenders are — a chain like ``link:nvlink0 (100%) > mem:cpu0-mem
    (61%)`` is the paper's "NVLink-bound while memory idles" claim in
    data form.  ``top=0`` returns every resource.
    """
    util = utilization(cost)
    ranked = sorted(
        cost.occupancy.items(), key=lambda item: (-item[1], item[0])
    )
    if top > 0:
        ranked = ranked[:top]
    return [
        {
            "resource": resource,
            "busy_seconds": busy,
            "utilization": util.get(resource, 0.0),
        }
        for resource, busy in ranked
    ]


def render_chain(cost: PhaseCost, top: int = 4) -> str:
    """One-line rendering: ``link:x (100%) > mem:y (61%) > ...``."""
    chain = bottleneck_chain(cost, top=top)
    if not chain:
        return "(no resources)"
    return " > ".join(
        f"{entry['resource']} ({entry['utilization']:.0%})" for entry in chain
    )


def explain(cost: PhaseCost, top: int = 10) -> str:
    """Render the cost breakdown as an ASCII table.

    >>> from repro.costmodel.model import PhaseCost
    >>> c = PhaseCost(seconds=1.0, bottleneck="link:x",
    ...               occupancy={"link:x": 1.0, "mem:y": 0.25})
    >>> print(explain(c))  # doctest: +ELLIPSIS
    phase ... bottleneck: link:x
    resource | busy    | utilization
    ...
    """
    rows: List[tuple] = sorted(
        cost.occupancy.items(), key=lambda item: item[1], reverse=True
    )[:top]
    util = utilization(cost)
    table = Table(
        ["resource", "busy", "utilization"],
        title=(
            f"phase {cost.label or '(unnamed)'}: {format_time(cost.seconds)}, "
            f"bottleneck: {cost.bottleneck}"
        ),
    )
    for resource, busy in rows:
        marker = " <- bottleneck" if resource == cost.bottleneck else ""
        table.add_row(
            [resource, format_time(busy), f"{util.get(resource, 0):.0%}{marker}"]
        )
    return table.render()


def explain_join(result) -> str:
    """Explain both phases of a JoinResult."""
    parts = [
        f"join on {result.processor}: "
        f"{result.throughput_gtuples:.2f} G Tuples/s "
        f"({result.matches} matches)",
        explain(result.build_cost),
        explain(result.probe_cost),
    ]
    return "\n\n".join(parts)
