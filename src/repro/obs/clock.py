"""Deterministic virtual clocks for span timing.

Observability spans are timed against *simulated* seconds, never the
wall clock: the cost model prices a phase and advances a
:class:`SimClock` by exactly that many virtual seconds, so traces are
bit-identical across runs (the same discipline the discrete-event
simulator enforces with its ``(time, seq)`` event ordering — see the
determinism pass in :mod:`repro.analysis`).
"""

from __future__ import annotations


class SimClock:
    """A monotonically advancing virtual clock.

    The clock never reads real time; it only moves when someone who
    knows how long simulated work took calls :meth:`advance`.

    >>> clock = SimClock()
    >>> clock.advance(1.5)
    1.5
    >>> clock.now
    1.5
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start before zero: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward; returns the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance a clock backwards: {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to an absolute virtual time."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot rewind clock from {self._now} to {timestamp}"
            )
        self._now = float(timestamp)
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now})"
