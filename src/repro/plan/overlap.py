"""Chunked-pipeline overlap arithmetic (Section 4.1).

Push-based transfer methods split the input into chunks and overlap the
transfer with computation.  With ``n`` chunks in flight, the makespan of
a two-stage pipeline whose slowest stage takes ``T`` seconds in total is
``T * (1 + 1/n)`` plus fixed per-chunk costs: the first chunk cannot be
overlapped, and each chunk pays a dispatch latency.

This is the canonical home of the arithmetic; the executor applies it
to every phase carrying a ``chunked=`` attribute, and
``repro.transfer.pipeline`` re-exports it for API compatibility.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence


def chunk_sizes(total_bytes: int, chunks: int) -> List[int]:
    """Split ``total_bytes`` into ``chunks`` near-equal chunk sizes.

    >>> chunk_sizes(10, 3)
    [4, 3, 3]
    """
    if chunks <= 0:
        raise ValueError(f"need at least one chunk, got {chunks}")
    if total_bytes < 0:
        raise ValueError(f"byte count must be non-negative: {total_bytes}")
    base, remainder = divmod(total_bytes, chunks)
    return [base + (1 if i < remainder else 0) for i in range(chunks)]


def pipeline_makespan(
    stage_times: Sequence[float],
    chunks: int,
    per_chunk_overhead: float = 0.0,
) -> float:
    """Makespan of a multi-stage software pipeline over equal chunks.

    Args:
        stage_times: total time of each stage if run alone (e.g. [stage
            into pinned buffer, DMA over the link, GPU compute]).
        chunks: number of chunks the input is split into.
        per_chunk_overhead: fixed cost per chunk (API calls, kernel
            launches), paid serially by the slowest stage's driver.

    The dominant stage runs continuously; each other stage adds one chunk
    worth of fill/drain time.
    """
    if chunks <= 0:
        raise ValueError(f"need at least one chunk, got {chunks}")
    if not stage_times:
        raise ValueError("pipeline needs at least one stage")
    if any(t < 0 for t in stage_times):
        raise ValueError(f"negative stage time in {stage_times}")
    dominant = max(stage_times)
    fill_drain = sum(t / chunks for t in stage_times if t != dominant)
    # When several stages tie, all but one still contribute fill time.
    ties = [t for t in stage_times if t == dominant]
    fill_drain += (len(ties) - 1) * dominant / chunks
    return dominant + fill_drain + chunks * per_chunk_overhead


def iter_chunks(length: int, chunk_length: int) -> Iterator[slice]:
    """Yield slices covering ``range(length)`` in ``chunk_length`` steps.

    The functional layer streams relations through this — the same
    chunking the push pipelines use.
    """
    if chunk_length <= 0:
        raise ValueError(f"chunk length must be positive: {chunk_length}")
    for start in range(0, length, chunk_length):
        yield slice(start, min(start + chunk_length, length))
