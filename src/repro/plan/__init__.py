"""Declarative phase-plan IR and its pricing/scheduling executor.

Operators compile their work into a :class:`Plan` — a validated DAG of
:class:`PhaseSpec` nodes — and hand it to the :class:`PlanExecutor`,
which owns all pricing, overlap arithmetic, concurrency solving, and
observability emission.  New operators emit a DAG; they do not
re-implement the runtime.
"""

from repro.plan.executor import PhaseOutcome, PlanExecutor, PlanResult
from repro.plan.ingest import IngestSpec, ingest
from repro.plan.overlap import chunk_sizes, iter_chunks, pipeline_makespan
from repro.plan.spec import (
    Chunked,
    MorselWorker,
    PhaseKind,
    PhaseSpec,
    Plan,
    PlanError,
    Surcharge,
    WorkerLoad,
    concurrent_phase,
    fixed_phase,
    morsel_phase,
    priced_phase,
)

__all__ = [
    "Chunked",
    "IngestSpec",
    "MorselWorker",
    "PhaseKind",
    "PhaseOutcome",
    "PhaseSpec",
    "Plan",
    "PlanError",
    "PlanExecutor",
    "PlanResult",
    "Surcharge",
    "WorkerLoad",
    "chunk_sizes",
    "concurrent_phase",
    "fixed_phase",
    "ingest",
    "iter_chunks",
    "morsel_phase",
    "pipeline_makespan",
    "priced_phase",
]
