"""Shared ingest glue: streams + overlap for reading operator inputs.

Every operator that reads relation/column bytes used to hand-roll the
same transfer logic: local data (or CPU execution) streams directly; a
GPU reading CPU memory goes through the configured Table-1 transfer
method, adding the method's side streams, landing traffic, and — for
push methods — the chunked pipeline overlap.  This module is the single
copy; operators call :func:`ingest` while compiling their plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.costmodel.access import Stream, seq_stream
from repro.costmodel.model import CostModel
from repro.hardware.memory import MemoryKind
from repro.hardware.processor import Gpu
from repro.plan.spec import Chunked
from repro.transfer.methods import get_method


@dataclass(frozen=True)
class IngestSpec:
    """Streams for one input read, plus its chunked-overlap attribute.

    ``chunked`` is set for push-based transfer methods (the software
    copy pipeline overlaps transfer with compute); pull methods access
    data at byte/page granularity with no extra overlap structure.
    """

    streams: List[Stream]
    chunked: Optional[Chunked] = None


def ingest(
    cost_model: CostModel,
    transfer_method: str,
    processor: str,
    location: str,
    nbytes: float,
    label: str,
    kind: Optional[MemoryKind] = None,
) -> IngestSpec:
    """Streams + overlap for ``processor`` reading ``nbytes`` from
    ``location``.

    Local data (or CPU execution) reads directly; a GPU reading CPU
    memory goes through the configured transfer method, which may route
    at reduced software bandwidth, occupy helper resources (staging
    threads), and land data in GPU memory for a second local pass.
    """
    machine = cost_model.machine
    proc = machine.processor(processor)
    local = machine.memory(location).owner == processor
    if local or not isinstance(proc, Gpu):
        return IngestSpec(
            streams=[seq_stream(processor, location, nbytes, label)]
        )
    method = get_method(transfer_method)
    method.check_supported(machine, processor, location, kind=kind)
    ingest_bw = method.effective_ingest_bandwidth(cost_model, processor, location)
    route_bw = cost_model.sequential_bandwidth(processor, location)
    streams = [
        seq_stream(
            processor,
            location,
            nbytes,
            label=f"{label} [{method.name}]",
            bandwidth_factor=min(1.0, ingest_bw / route_bw),
        )
    ]
    streams.extend(method.side_streams(machine, processor, location, nbytes))
    if method.lands_in_gpu_memory():
        landing = proc.local_memory.name
        streams.append(
            seq_stream(processor, landing, nbytes, label=f"{label} landing write")
        )
        streams.append(
            seq_stream(processor, landing, nbytes, label=f"{label} kernel read")
        )
    chunked = None
    if method.semantics == "push":
        chunked = Chunked(chunks=cost_model.calibration.pipeline_chunks)
    return IngestSpec(streams=streams, chunked=chunked)
