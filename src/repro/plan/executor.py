"""The single pricing/scheduling executor for phase plans.

The :class:`PlanExecutor` is the only component that calls
``CostModel.phase_cost`` / ``occupancy_per_unit`` on behalf of
operators (the ``executor-boundary`` analysis pass enforces this).  It
walks a plan in topological order and, per phase:

* prices the phase — through the cost model (PRICED), the max-min fair
  concurrent-rate solver (CONCURRENT), the morsel-dispatch
  discrete-event simulation (MORSEL), or verbatim (FIXED);
* applies chunked transfer/compute overlap
  (:func:`repro.plan.overlap.pipeline_makespan`) and serial surcharges
  (hash-table broadcasts);
* opens exactly one observability span per phase on the deterministic
  sim clock, annotated with the phase's bottleneck, and records the
  phase's metrics exactly once.

On top of the sequential walk (which preserves the span/clock ordering
single chains had before the IR existed), the executor computes a
*dependency- and overlap-aware makespan* by replaying the priced phase
durations through the discrete-event :class:`~repro.sim.engine.
Simulator`: phases start when their dependencies finish and their
claimed resources free up, so independent phases overlap.  For a linear
chain the makespan equals the sum of phase seconds.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.costmodel.model import CostModel, PhaseCost
from repro.obs import Observability
from repro.obs.manifest import phase_record
from repro.obs.trace import Timeline
from repro.plan.overlap import pipeline_makespan
from repro.plan.spec import PhaseKind, PhaseSpec, Plan, PlanError
from repro.sim.engine import Simulator
from repro.sim.resources import solve_concurrent_rates


@dataclass
class PhaseOutcome:
    """One executed phase: its cost plus scheduling detail."""

    name: str
    cost: PhaseCost
    #: position on the sequential span timeline (sim-clock seconds).
    start: float
    end: float
    #: solved per-worker rates/shares (CONCURRENT and MORSEL phases).
    rates: Dict[str, float] = field(default_factory=dict)
    shares: Dict[str, float] = field(default_factory=dict)
    #: per-worker morsel timeline (MORSEL phases).
    timeline: Optional[Timeline] = None

    @property
    def seconds(self) -> float:
        return self.cost.seconds


@dataclass
class PlanResult:
    """Executor output: per-phase outcomes plus schedule summaries."""

    plan: Plan
    outcomes: Dict[str, PhaseOutcome]
    #: dependency- and claim-aware completion time (independent phases
    #: overlap); equals :attr:`total_seconds` for linear chains.
    makespan: float

    @property
    def total_seconds(self) -> float:
        """Sum of all phase durations (fully serialized execution)."""
        return sum(o.cost.seconds for o in self.outcomes.values())

    def __getitem__(self, name: str) -> PhaseOutcome:
        return self.outcomes[name]

    def cost(self, name: str) -> PhaseCost:
        """The priced cost of phase ``name``."""
        return self.outcomes[name].cost

    def seconds(self, name: str) -> float:
        """Shorthand for ``cost(name).seconds``."""
        return self.outcomes[name].cost.seconds

    def phase_costs(self) -> List[PhaseCost]:
        """Per-phase costs in execution order (manifest input)."""
        return [o.cost for o in self.outcomes.values()]

    def phase_records(self) -> List[Dict[str, Any]]:
        """JSON-ready manifest entries, one per executed phase."""
        return [phase_record(cost) for cost in self.phase_costs()]


class PlanExecutor:
    """Prices and schedules one plan on one machine's cost model."""

    def __init__(self, cost_model: CostModel) -> None:
        self.cost_model = cost_model
        self.obs: Observability = cost_model.obs

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def execute(self, plan: Plan) -> PlanResult:
        """Run every phase in topological order and emit observability.

        Each phase gets exactly one outer span (its duration is the
        phase's full seconds on the sim clock) and exactly one metrics
        deposit; pricing-internal spans (``price[...]``, ``sim.run``)
        nest inside it.
        """
        tracer = self.obs.tracer
        clock = self.obs.clock
        outcomes: Dict[str, PhaseOutcome] = {}
        for phase in plan.topological_order():
            with tracer.span(
                phase.name,
                worker=phase.span_worker or "plan",
                units=phase.span_units,
                **phase.span_attrs,
            ) as span:
                start = clock.now
                outcome = self._run_phase(phase)
                # Pricing may have advanced the clock already (priced
                # profiles advance by their cost, the morsel simulation
                # by its virtual time); top the span up to the phase's
                # full duration.
                remainder = outcome.cost.seconds - (clock.now - start)
                if remainder > 0:
                    span.advance(remainder)
                span.annotate(
                    bottleneck=outcome.cost.bottleneck, **phase.annotations
                )
                outcome.start = start
                outcome.end = clock.now
            outcomes[phase.name] = outcome
        makespan = self._schedule_makespan(plan, outcomes)
        return PlanResult(plan=plan, outcomes=outcomes, makespan=makespan)

    # ------------------------------------------------------------------
    # Phase pricing
    # ------------------------------------------------------------------
    def _run_phase(self, phase: PhaseSpec) -> PhaseOutcome:
        if phase.kind is PhaseKind.PRICED:
            return self._run_priced(phase)
        if phase.kind is PhaseKind.CONCURRENT:
            return self._run_concurrent(phase)
        if phase.kind is PhaseKind.MORSEL:
            return self._run_morsel(phase)
        return self._run_fixed(phase)

    def _run_priced(self, phase: PhaseSpec) -> PhaseOutcome:
        assert phase.profile is not None
        cost = self.cost_model.phase_cost(phase.profile)
        if phase.chunked is not None and cost.occupancy:
            cost = self._apply_chunked(phase, cost)
        cost = self._apply_surcharges(phase, cost)
        return PhaseOutcome(name=phase.name, cost=cost, start=0.0, end=0.0)

    def _apply_chunked(self, phase: PhaseSpec, cost: PhaseCost) -> PhaseCost:
        """Chunked-overlap makespan of a priced phase (Section 4.1).

        The phase's transfer and compute run as a software pipeline over
        ``chunks`` chunks: the bottleneck stage runs continuously and
        the overlapped stage adds one chunk of fill/drain, i.e. the
        two-stage makespan over the bottleneck's serial time.
        """
        assert phase.profile is not None and phase.chunked is not None
        base = cost.occupancy[cost.bottleneck] * (
            1.0 + self.cost_model.calibration.join_pipeline_overhead
        )
        seconds = pipeline_makespan(
            [base, base],
            phase.chunked.chunks,
            phase.chunked.per_chunk_overhead,
        )
        seconds += phase.profile.fixed_overhead
        return PhaseCost(
            seconds=seconds,
            bottleneck=cost.bottleneck,
            occupancy=cost.occupancy,
            label=cost.label,
        )

    def _apply_surcharges(self, phase: PhaseSpec, cost: PhaseCost) -> PhaseCost:
        if not phase.surcharges:
            return cost
        seconds = cost.seconds
        occupancy = dict(cost.occupancy)
        for surcharge in phase.surcharges:
            seconds += surcharge.seconds
            occupancy[surcharge.resource] = (
                occupancy.get(surcharge.resource, 0.0) + surcharge.seconds
            )
        bottleneck = (
            max(occupancy, key=lambda res: occupancy[res])
            if occupancy
            else cost.bottleneck
        )
        return PhaseCost(
            seconds=seconds,
            bottleneck=bottleneck,
            occupancy=occupancy,
            label=cost.label,
        )

    # -- concurrent (solver) phases ------------------------------------
    def _solve(self, phase: PhaseSpec) -> Dict[str, Dict[str, float]]:
        return {
            key: self.cost_model.occupancy_per_unit(load.profile, load.units)
            for key, load in phase.loads.items()
        }

    @staticmethod
    def _aggregate_cost(
        demands: Dict[str, Dict[str, float]],
        units_done: Dict[str, float],
        seconds: float,
        label: str,
    ) -> PhaseCost:
        """Sum per-worker occupancy at the solved shares into one cost.

        The result has the same shape single-profile pricing produces,
        so manifests report co-processed phases uniformly; its
        bottleneck is the most-occupied shared resource.
        """
        occupancy: Dict[str, float] = defaultdict(float)
        for key, demand in demands.items():
            units = units_done.get(key, 0.0)
            for resource, per_unit in demand.items():
                occupancy[resource] += per_unit * units
        bottleneck = (
            max(occupancy, key=lambda res: occupancy[res])
            if occupancy
            else "(none)"
        )
        return PhaseCost(
            seconds=seconds,
            bottleneck=bottleneck,
            occupancy=dict(occupancy),
            label=label,
        )

    def _record_load_metrics(
        self, phase: PhaseSpec, shares: Dict[str, float]
    ) -> None:
        """One metrics deposit per worker, scaled to its solved share."""
        for key, load in phase.loads.items():
            self.cost_model.record_profile_metrics(
                load.profile.scaled(shares.get(key, 0.0))
            )

    def _run_concurrent(self, phase: PhaseSpec) -> PhaseOutcome:
        demands = self._solve(phase)
        rates = solve_concurrent_rates(demands)
        if phase.shared_units is not None:
            # Pool mode: all workers drain one shared unit pool.
            combined = sum(rates.values())
            seconds = (
                phase.shared_units / combined if combined > 0 else 0.0
            )
            units_done = {key: rates[key] * seconds for key in demands}
            shares = {
                key: (
                    units_done[key] / phase.shared_units
                    if phase.shared_units
                    else 0.0
                )
                for key in demands
            }
        else:
            # Barrier mode: every worker finishes its own units.
            seconds = max(
                phase.loads[key].units / rates[key] for key in demands
            )
            units_done = {key: phase.loads[key].units for key in demands}
            shares = {key: 1.0 for key in demands}
        cost = self._aggregate_cost(demands, units_done, seconds, phase.name)
        cost = self._apply_surcharges(phase, cost)
        self._record_load_metrics(phase, shares)
        return PhaseOutcome(
            name=phase.name,
            cost=cost,
            start=0.0,
            end=0.0,
            rates=dict(rates),
            shares=shares,
        )

    def _run_morsel(self, phase: PhaseSpec) -> PhaseOutcome:
        # Imported here: repro.core packages compile plans, so a
        # module-level import would be circular.
        from repro.core.scheduler.batch import tune_batch_morsels
        from repro.core.scheduler.morsel import MorselDispatcher

        demands = self._solve(phase)
        rates = solve_concurrent_rates(demands)
        total_tuples = int(phase.shared_units or 0)
        dispatcher = MorselDispatcher(
            total_tuples, phase.morsel_tuples, metrics=self.obs.metrics
        )
        sim = Simulator(tracer=self.obs.tracer)
        timeline = Timeline()

        def make_worker(name: str, rate: float, batch: int, latency: float):
            def work(simulator: Simulator) -> None:
                grant = dispatcher.next_batch(batch, worker=name)
                if grant is None:
                    return
                duration = latency + grant.tuples / rate
                timeline.record(
                    name,
                    phase.name,
                    simulator.now,
                    simulator.now + duration,
                    grant.tuples,
                )
                simulator.schedule(duration, work)

            return work

        for key in phase.loads:
            rate = rates[key]
            if rate <= 0 or rate == float("inf"):
                raise RuntimeError(f"degenerate probe rate for {key}: {rate}")
            worker = phase.morsel_workers[key]
            batch = worker.batch_morsels or tune_batch_morsels(
                phase.morsel_tuples, rate, worker.dispatch_latency
            )
            sim.schedule(
                0.0, make_worker(key, rate, batch, worker.dispatch_latency)
            )
        seconds = sim.run()
        shares = {
            key: dispatcher.dispatched_tuples(key) / max(1, total_tuples)
            for key in phase.loads
        }
        units_done = {
            key: float(dispatcher.dispatched_tuples(key))
            for key in phase.loads
        }
        cost = self._aggregate_cost(demands, units_done, seconds, phase.name)
        self._record_load_metrics(phase, shares)
        return PhaseOutcome(
            name=phase.name,
            cost=cost,
            start=0.0,
            end=0.0,
            rates=dict(rates),
            shares=shares,
            timeline=timeline,
        )

    def _run_fixed(self, phase: PhaseSpec) -> PhaseOutcome:
        assert phase.fixed_cost is not None
        cost = phase.fixed_cost
        for resource, busy in cost.occupancy.items():
            self.obs.metrics.counter(
                "resource_busy_seconds_total", resource=resource
            ).inc(busy)
        return PhaseOutcome(name=phase.name, cost=cost, start=0.0, end=0.0)

    # ------------------------------------------------------------------
    # Dependency-aware makespan
    # ------------------------------------------------------------------
    def _schedule_makespan(
        self, plan: Plan, outcomes: Dict[str, PhaseOutcome]
    ) -> float:
        """Replay phase durations through the discrete-event simulator.

        A phase starts when every dependency has finished and every
        claimed resource is free; phases with disjoint dependencies and
        claims overlap.  Runs on a throwaway simulator (no tracer) so
        the schedule replay does not touch the observability clock.
        """
        sim = Simulator()
        remaining = {p.name: len(set(p.deps)) for p in plan.phases}
        dependents: Dict[str, List[PhaseSpec]] = defaultdict(list)
        for phase in plan.phases:
            for dep in set(phase.deps):
                dependents[dep].append(phase)
        claimed: Dict[str, bool] = {}
        waiting: List[PhaseSpec] = []

        def claims_free(phase: PhaseSpec) -> bool:
            return not any(claimed.get(res, False) for res in phase.claims)

        def try_start(phase: PhaseSpec, simulator: Simulator) -> None:
            if not claims_free(phase):
                waiting.append(phase)
                return
            for res in phase.claims:
                claimed[res] = True
            simulator.schedule(
                outcomes[phase.name].cost.seconds,
                lambda s, p=phase: finish(p, s),
            )

        def finish(phase: PhaseSpec, simulator: Simulator) -> None:
            for res in phase.claims:
                claimed[res] = False
            for dependent in dependents[phase.name]:
                remaining[dependent.name] -= 1
                if remaining[dependent.name] == 0:
                    try_start(dependent, simulator)
            # Freed claims may unblock queued phases.
            runnable = [p for p in waiting if claims_free(p)]
            for p in runnable:
                waiting.remove(p)
                try_start(p, simulator)

        for phase in plan.topological_order():
            if remaining[phase.name] == 0:
                sim.schedule(0.0, lambda s, p=phase: try_start(p, s))
        makespan = sim.run()
        if waiting:
            stuck = sorted(p.name for p in waiting)
            raise PlanError(f"deadlocked phases (claim cycle?): {stuck}")
        return makespan
