"""The declarative phase-plan IR.

Operators *compile to plans* instead of orchestrating pricing inline: a
:class:`Plan` is a validated DAG of :class:`PhaseSpec` nodes, each
carrying the access profiles (or solver loads, or a precomputed cost)
of one execution phase plus its dependency edges and resource claims.
One :class:`~repro.plan.executor.PlanExecutor` prices every phase
through the cost model, applies chunked transfer/compute overlap, runs
concurrent phases through the max-min fair solver or the morsel
discrete-event simulation, and emits observability spans/metrics
exactly once per phase.

Four phase kinds cover every operator in the repro:

* ``PRICED`` — one access profile, priced by ``CostModel.phase_cost``
  (optionally with :class:`Chunked` overlap and :class:`Surcharge`
  add-ons such as hash-table broadcasts);
* ``CONCURRENT`` — several workers progress together; per-worker
  occupancy demands feed the max-min fair rate solver.  With
  ``shared_units`` set the workers drain one shared pool of work
  (co-processed build/probe); without it every worker must finish its
  own units and the phase ends at the slowest (barrier semantics,
  e.g. parallel per-dimension builds);
* ``MORSEL`` — like ``CONCURRENT`` pool mode, but the shared pool is
  handed out by the morsel dispatcher inside a discrete-event
  simulation (end-of-input skew, GPU batching);
* ``FIXED`` — a precomputed :class:`~repro.costmodel.model.PhaseCost`
  (closed-form phases like the radix baseline's in-cache join pass).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional, Tuple

from repro.costmodel.access import AccessProfile
from repro.costmodel.model import PhaseCost


class PlanError(ValueError):
    """Raised for structurally invalid plans (cycles, dangling deps)."""


class PhaseKind(Enum):
    """How the executor prices a phase (one runner per kind)."""

    PRICED = "priced"
    CONCURRENT = "concurrent"
    MORSEL = "morsel"
    FIXED = "fixed"


@dataclass(frozen=True)
class Chunked:
    """Chunked transfer/compute overlap of a push-based pipeline.

    Section 4.1: with ``chunks`` chunks in flight, a two-stage pipeline
    whose slowest stage takes ``T`` seconds total completes in
    ``T * (1 + 1/chunks)`` plus per-chunk overheads — the executor
    computes this via :func:`repro.plan.overlap.pipeline_makespan`
    instead of operators folding it into ``makespan_factor`` by hand.
    """

    chunks: int
    per_chunk_overhead: float = 0.0

    def __post_init__(self) -> None:
        if self.chunks <= 0:
            raise PlanError(f"need at least one chunk, got {self.chunks}")
        if self.per_chunk_overhead < 0:
            raise PlanError(
                f"negative per-chunk overhead: {self.per_chunk_overhead}"
            )


@dataclass(frozen=True)
class Surcharge:
    """Extra serial seconds a phase pays on one resource.

    Used for synchronous hash-table broadcasts (GPU+Het step 2,
    replicated multi-GPU placement): the copy rides on top of the
    priced build and occupies the builder's link.
    """

    seconds: float
    resource: str
    label: str = ""

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise PlanError(f"negative surcharge: {self.seconds}")


@dataclass(frozen=True)
class WorkerLoad:
    """One worker's access profile and work-unit count in a phase."""

    profile: AccessProfile
    units: float

    def __post_init__(self) -> None:
        if self.units <= 0:
            raise PlanError(f"worker load needs positive units: {self.units}")


@dataclass(frozen=True)
class MorselWorker:
    """Dispatcher configuration of one morsel-phase worker."""

    dispatch_latency: float
    #: morsels per grant; ``None`` auto-tunes from the solved rate.
    batch_morsels: Optional[int] = None


@dataclass
class PhaseSpec:
    """One phase of a plan: payload, dependencies, and span metadata."""

    name: str
    kind: PhaseKind
    deps: Tuple[str, ...] = ()
    #: resources this phase holds exclusively while it runs; the
    #: dependency-aware makespan serializes phases sharing a claim.
    claims: Tuple[str, ...] = ()
    # -- PRICED ---------------------------------------------------------
    profile: Optional[AccessProfile] = None
    chunked: Optional[Chunked] = None
    surcharges: Tuple[Surcharge, ...] = ()
    # -- CONCURRENT / MORSEL -------------------------------------------
    loads: Dict[str, WorkerLoad] = field(default_factory=dict)
    #: pool mode: total shared units the workers drain together; the
    #: phase takes ``shared_units / sum(rates)``.  ``None`` = barrier
    #: mode: every load finishes its own units, slowest wins.
    shared_units: Optional[float] = None
    # -- MORSEL ---------------------------------------------------------
    morsel_tuples: int = 0
    morsel_workers: Dict[str, MorselWorker] = field(default_factory=dict)
    # -- FIXED ----------------------------------------------------------
    fixed_cost: Optional[PhaseCost] = None
    # -- span metadata --------------------------------------------------
    span_worker: str = ""
    span_units: float = 0.0
    span_attrs: Dict[str, Any] = field(default_factory=dict)
    #: attributes annotated onto the span after execution (e.g. the
    #: functional match count), alongside the phase's bottleneck.
    annotations: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise PlanError("phase needs a non-empty name")
        if self.name in self.deps:
            raise PlanError(f"phase {self.name!r} depends on itself")
        if self.kind is PhaseKind.PRICED and self.profile is None:
            raise PlanError(f"priced phase {self.name!r} needs a profile")
        if self.kind in (PhaseKind.CONCURRENT, PhaseKind.MORSEL):
            if not self.loads:
                raise PlanError(
                    f"{self.kind.value} phase {self.name!r} needs worker loads"
                )
        if self.kind is PhaseKind.MORSEL:
            if self.morsel_tuples <= 0:
                raise PlanError(
                    f"morsel phase {self.name!r} needs a positive morsel size"
                )
            if self.shared_units is None:
                raise PlanError(
                    f"morsel phase {self.name!r} needs shared_units "
                    "(the dispatcher pool)"
                )
            missing = set(self.loads) - set(self.morsel_workers)
            if missing:
                raise PlanError(
                    f"morsel phase {self.name!r} lacks dispatcher config "
                    f"for worker(s) {sorted(missing)}"
                )
        if self.kind is PhaseKind.FIXED and self.fixed_cost is None:
            raise PlanError(f"fixed phase {self.name!r} needs a cost")


def priced_phase(
    name: str,
    profile: AccessProfile,
    deps: Tuple[str, ...] = (),
    chunked: Optional[Chunked] = None,
    surcharges: Tuple[Surcharge, ...] = (),
    claims: Tuple[str, ...] = (),
    span_worker: str = "",
    span_units: float = 0.0,
    span_attrs: Optional[Dict[str, Any]] = None,
    annotations: Optional[Dict[str, Any]] = None,
) -> PhaseSpec:
    """A single-profile phase priced by ``CostModel.phase_cost``."""
    return PhaseSpec(
        name=name,
        kind=PhaseKind.PRICED,
        deps=tuple(deps),
        claims=tuple(claims),
        profile=profile,
        chunked=chunked,
        surcharges=tuple(surcharges),
        span_worker=span_worker or (profile.processor or ""),
        span_units=span_units,
        span_attrs=dict(span_attrs or {}),
        annotations=dict(annotations or {}),
    )


def concurrent_phase(
    name: str,
    loads: Dict[str, WorkerLoad],
    shared_units: Optional[float] = None,
    deps: Tuple[str, ...] = (),
    surcharges: Tuple[Surcharge, ...] = (),
    claims: Tuple[str, ...] = (),
    span_worker: str = "",
    span_units: float = 0.0,
    span_attrs: Optional[Dict[str, Any]] = None,
    annotations: Optional[Dict[str, Any]] = None,
) -> PhaseSpec:
    """A solver-priced phase: pool mode (shared_units) or barrier mode."""
    return PhaseSpec(
        name=name,
        kind=PhaseKind.CONCURRENT,
        deps=tuple(deps),
        claims=tuple(claims),
        loads=dict(loads),
        shared_units=shared_units,
        surcharges=tuple(surcharges),
        span_worker=span_worker or ",".join(loads),
        span_units=span_units,
        span_attrs=dict(span_attrs or {}),
        annotations=dict(annotations or {}),
    )


def morsel_phase(
    name: str,
    loads: Dict[str, WorkerLoad],
    shared_units: float,
    morsel_tuples: int,
    morsel_workers: Dict[str, MorselWorker],
    deps: Tuple[str, ...] = (),
    claims: Tuple[str, ...] = (),
    span_worker: str = "",
    span_units: float = 0.0,
    span_attrs: Optional[Dict[str, Any]] = None,
    annotations: Optional[Dict[str, Any]] = None,
) -> PhaseSpec:
    """A morsel-dispatched phase run as a discrete-event simulation."""
    return PhaseSpec(
        name=name,
        kind=PhaseKind.MORSEL,
        deps=tuple(deps),
        claims=tuple(claims),
        loads=dict(loads),
        shared_units=shared_units,
        morsel_tuples=morsel_tuples,
        morsel_workers=dict(morsel_workers),
        span_worker=span_worker or ",".join(loads),
        span_units=span_units,
        span_attrs=dict(span_attrs or {}),
        annotations=dict(annotations or {}),
    )


def fixed_phase(
    name: str,
    cost: PhaseCost,
    deps: Tuple[str, ...] = (),
    claims: Tuple[str, ...] = (),
    span_worker: str = "",
    span_units: float = 0.0,
    span_attrs: Optional[Dict[str, Any]] = None,
    annotations: Optional[Dict[str, Any]] = None,
) -> PhaseSpec:
    """A phase with a precomputed closed-form cost."""
    return PhaseSpec(
        name=name,
        kind=PhaseKind.FIXED,
        deps=tuple(deps),
        claims=tuple(claims),
        fixed_cost=cost,
        span_worker=span_worker,
        span_units=span_units,
        span_attrs=dict(span_attrs or {}),
        annotations=dict(annotations or {}),
    )


@dataclass
class Plan:
    """A validated DAG of phases, executed in topological order."""

    phases: List[PhaseSpec]
    label: str = ""

    def __post_init__(self) -> None:
        if not self.phases:
            raise PlanError("a plan needs at least one phase")
        names = [p.name for p in self.phases]
        seen = set()
        for name in names:
            if name in seen:
                raise PlanError(f"duplicate phase name {name!r}")
            seen.add(name)
        for phase in self.phases:
            for dep in phase.deps:
                if dep not in seen:
                    raise PlanError(
                        f"phase {phase.name!r} depends on unknown phase "
                        f"{dep!r}"
                    )
        self._order = self._topological_order()

    def _topological_order(self) -> List[PhaseSpec]:
        """Kahn's algorithm; declaration order breaks ties (stable)."""
        by_name = {p.name: p for p in self.phases}
        indegree = {p.name: len(set(p.deps)) for p in self.phases}
        dependents: Dict[str, List[str]] = {p.name: [] for p in self.phases}
        for phase in self.phases:
            for dep in set(phase.deps):
                dependents[dep].append(phase.name)
        ready = [p.name for p in self.phases if indegree[p.name] == 0]
        order: List[PhaseSpec] = []
        while ready:
            name = ready.pop(0)
            order.append(by_name[name])
            for dependent in dependents[name]:
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    ready.append(dependent)
        if len(order) != len(self.phases):
            stuck = sorted(n for n, d in indegree.items() if d > 0)
            raise PlanError(f"plan has a dependency cycle through {stuck}")
        return order

    def topological_order(self) -> List[PhaseSpec]:
        """Phases in a deterministic dependency-respecting order."""
        return list(self._order)

    def phase(self, name: str) -> PhaseSpec:
        """The spec named ``name`` (KeyError if absent)."""
        for phase in self.phases:
            if phase.name == name:
                return phase
        raise KeyError(name)

    def __iter__(self):
        return iter(self._order)

    def __len__(self) -> int:
        return len(self.phases)
