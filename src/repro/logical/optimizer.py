"""The cost-based optimizer: enumerate physical alternatives, price
each with ``repro.costmodel``, pick the cheapest.

The search space is exactly the paper's knob set:

* **transfer method** — the eight Table-1 methods, with the input
  relations reallocated to each method's required
  :class:`~repro.hardware.memory.MemoryKind` (mirroring what the
  paper's harness does between measurement series); methods whose
  route or kind ``check_supported`` rejects become *rejected*
  candidates, never winners;
* **hash-table placement** — GPU, CPU, the hybrid allocator's
  best-effort split, plus an explicit Figure-8/11 GPU-fraction sweep;
* **execution strategy** — single-processor (GPU-only or CPU-only),
  Het (shared table, cooperative morsel probe), GPU+Het (build,
  broadcast, probe everywhere);
* **join order** — dimension permutations for star shapes;
* **host tier** — serial/threads/processes backend and shard count.
  Results and modeled plan costs are backend-invariant (pinned by the
  equivalence suite), so the tier is chosen by a deterministic
  data-size heuristic rather than by price.

Candidates are priced through the same :func:`compile_query` +
:class:`~repro.plan.PlanExecutor` path the operator facades use, from
*estimated* statistics (``repro.logical.stats``); the estimation error
is tracked as the predicted-vs-actual gap benchmark.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.costmodel.calibration import DEFAULT_CALIBRATION, Calibration
from repro.costmodel.model import CostModel
from repro.core.hashtable.placement import (
    HashTablePlacement,
    place_hash_table,
)
from repro.data.relation import Relation
from repro.hardware.topology import Machine
from repro.logical.algebra import (
    Aggregate,
    HashJoin,
    LogicalError,
    Query,
    Scan,
)
from repro.logical.lower import (
    JoinShape,
    PhysicalConfig,
    ScanShape,
    StarShape,
    classify,
    compile_query,
)
from repro.logical.stats import (
    estimate_join_stats,
    estimate_scan_stats,
    estimate_star_stats,
)
from repro.memory.allocator import OutOfMemoryError
from repro.plan import Plan, PlanExecutor
from repro.transfer.methods import (
    TRANSFER_METHODS,
    UnsupportedTransferError,
    get_method,
)

#: version of the optimizer-decision manifest section.
OPTIMIZER_SCHEMA_VERSION = "1.0"

#: Figure-8/11 GPU-fraction sweep for hybrid hash tables.
FRACTION_SWEEP = (0.75, 0.5, 0.25)

#: cap on enumerated dimension permutations for star shapes.
MAX_JOIN_ORDERS = 24


@dataclass(frozen=True)
class Candidate:
    """One priced (or rejected) point of the physical search space."""

    config: PhysicalConfig
    seconds: Optional[float] = None
    rejected: Optional[str] = None

    @property
    def viable(self) -> bool:
        return self.rejected is None and self.seconds is not None

    def describe(self) -> str:
        """One explain line: the config plus its price or rejection."""
        if self.rejected is not None:
            return f"{self.config.describe()} — rejected: {self.rejected}"
        return f"{self.config.describe()} — {self.seconds:.6f}s"

    def summary(self) -> Dict[str, object]:
        """Manifest row (not the schema-checked section writer)."""
        return {
            "config": self.config.describe(),
            "seconds": self.seconds,
            "rejected": self.rejected,
        }


@dataclass(frozen=True)
class OptimizerResult:
    """The chosen plan plus the full considered space."""

    query: str
    shape: str
    machine: str
    chosen: Candidate
    candidates: Tuple[Candidate, ...]
    chosen_plan: Plan
    gpu_fraction: Optional[float] = None

    @property
    def rejected(self) -> Tuple[Candidate, ...]:
        return tuple(c for c in self.candidates if c.rejected is not None)

    def explain(self) -> str:
        """Human-readable report of the considered space."""
        viable = [c for c in self.candidates if c.viable]
        lines = [
            f"optimize[{self.shape}] on {self.machine}",
            "query:",
        ]
        lines += ["  " + line for line in self.query.splitlines()]
        lines.append(
            f"chosen: {self.chosen.config.describe()} "
            f"(predicted {self.chosen.seconds:.6f}s)"
        )
        lines.append(
            f"considered {len(self.candidates)} candidates "
            f"({len(viable)} viable, {len(self.rejected)} rejected):"
        )
        ranked = sorted(
            viable, key=lambda c: (c.seconds, c.config.describe())
        )
        for cand in ranked:
            marker = "*" if cand is self.chosen else " "
            lines.append(f"  {marker} {cand.describe()}")
        for cand in self.rejected:
            lines.append(f"  x {cand.describe()}")
        return "\n".join(lines)

    def section(self) -> Dict[str, object]:
        """The manifest's ``optimizer`` section (schema-checked)."""
        return {
            "schema_version": OPTIMIZER_SCHEMA_VERSION,
            "machine": self.machine,
            "shape": self.shape,
            "strategy": self.chosen.config.strategy,
            "transfer_method": self.chosen.config.transfer_method,
            "placement": (
                self.chosen.config.placement.label
                if self.chosen.config.placement is not None
                else None
            ),
            "gpu_fraction": self.gpu_fraction,
            "backend": self.chosen.config.backend,
            "shards": self.chosen.config.shards,
            "predicted_seconds": self.chosen.seconds,
            "considered": len(self.candidates),
            "rejected": len(self.rejected),
            "candidates": self._summaries(),
        }

    def _summaries(self) -> List[Dict[str, object]]:
        return [c.summary() for c in self.candidates]


# ----------------------------------------------------------------------
# Host-tier heuristic
# ----------------------------------------------------------------------
def host_tier(executed_rows: int) -> Tuple[str, int, int]:
    """(backend, workers, shards) for the functional execution.

    Backend choice cannot be priced — the modeled plan cost is
    backend-invariant by construction — so the tier scales with the
    *executed* data size: serial below ~256 K rows (dispatch overhead
    dominates), threads to ~2 M, sharded processes beyond.
    """
    if executed_rows >= 1 << 21:
        return ("processes", 4, 4)
    if executed_rows >= 1 << 18:
        return ("threads", 4, 1)
    return ("serial", 0, 1)


# ----------------------------------------------------------------------
# Candidate enumeration
# ----------------------------------------------------------------------
def _rekind_join(shape: JoinShape, kind) -> Tuple[Query, Relation, Relation]:
    """Rebuild the query with both relations reallocated to ``kind``
    (the optimizer's analogue of ``JoinWorkload.placed_for``)."""
    r = shape.build.relation.placed(shape.build.relation.location, kind=kind)
    s = shape.probe.relation.placed(shape.probe.relation.location, kind=kind)
    build = Scan(r, name=shape.build.name, modeled_rows=shape.build.modeled_rows)
    probe = Scan(s, name=shape.probe.name, modeled_rows=shape.probe.modeled_rows)
    join = HashJoin(
        build,
        probe,
        build_key=shape.join.build_key,
        probe_key=shape.join.probe_key,
        selectivity=shape.join.selectivity,
    )
    agg = Aggregate(join, shape.aggregate.group_by, shape.aggregate.aggregates)
    return Query(agg), r, s


def _fraction_placement(
    machine: Machine,
    table_bytes: float,
    fraction: float,
    gpu_name: str,
) -> HashTablePlacement:
    """An explicit A_GPU split (the Figure-8 sweep point)."""
    gpu_region = machine.processor(gpu_name).local_memory
    available = gpu_region.capacity - gpu_region.allocated
    if table_bytes * fraction > available:
        raise OutOfMemoryError(
            f"GPU fraction {fraction:.2f} of {table_bytes:.0f} bytes "
            f"exceeds {gpu_name}'s memory"
        )
    cpu_region = machine.nearest_cpu_memory(gpu_name)
    return HashTablePlacement(
        total_bytes=int(table_bytes),
        fractions={gpu_region.name: fraction, cpu_region.name: 1.0 - fraction},
        label=f"hybrid[{fraction:.2f}]",
    )


def _join_candidates(
    shape: JoinShape,
    machine: Machine,
    gpu_name: str,
    workers: Tuple[str, ...],
    tier: Tuple[str, int, int],
    scheme: str,
    label: str,
):
    """Yield (config, query, stats) points for a two-table join."""
    backend, exec_workers, shards = tier
    r_scan, s_scan = shape.build, shape.probe
    if r_scan.relation is None or s_scan.relation is None:
        raise LogicalError(
            "the optimizer needs Relation-backed scans to enumerate "
            "transfer methods (it reallocates the inputs per method)"
        )
    selectivity = (
        shape.join.selectivity if shape.join.selectivity is not None else 1.0
    )

    def stats_for(r: Relation, s: Relation):
        return estimate_join_stats(
            r.modeled_tuples,
            s.modeled_tuples,
            r.key.dtype.itemsize,
            r.payload.dtype.itemsize,
            scheme=scheme,
            selectivity=selectivity,
        )

    base = PhysicalConfig(
        strategy="single",
        processor=gpu_name,
        backend=backend,
        exec_workers=exec_workers,
        shards=shards,
        hash_scheme=scheme,
        label=label,
    )

    # GPU-only: transfer method x hash-table placement.
    for method_name in sorted(TRANSFER_METHODS):
        method = get_method(method_name)
        query, r, s = _rekind_join(shape, method.required_kind)
        stats = stats_for(r, s)
        table_bytes = stats.table.modeled_bytes
        placement_strategies: List[object] = ["gpu", "cpu", "hybrid"]
        placement_strategies.extend(FRACTION_SWEEP)
        for strategy in placement_strategies:
            def build_config(
                method_name: str = method_name,
                strategy: object = strategy,
                table_bytes: float = table_bytes,
            ) -> PhysicalConfig:
                if isinstance(strategy, float):
                    placement = _fraction_placement(
                        machine, table_bytes, strategy, gpu_name
                    )
                else:
                    placement = place_hash_table(
                        machine, int(table_bytes), str(strategy),
                        gpu_name=gpu_name,
                    )
                return replace(
                    base,
                    transfer_method=method_name,
                    placement=placement,
                )
            yield build_config, query, stats

    # CPU-only: one candidate per CPU; ingest never crosses the
    # interconnect, so the transfer method is moot (kept at the
    # query's pageable default).
    query, r, s = _rekind_join(shape, get_method("coherence").required_kind)
    stats = stats_for(r, s)
    for cpu in machine.cpus():
        def cpu_config(cpu_name: str = cpu.name) -> PhysicalConfig:
            placement = place_hash_table(
                machine,
                int(stats.table.modeled_bytes),
                "cpu",
                gpu_name=gpu_name,
            )
            return replace(
                base,
                processor=cpu_name,
                transfer_method="coherence",
                placement=placement,
            )
        yield cpu_config, query, stats

    # Cooperative strategies need every worker to address the shared
    # (or replicated) table through a cache-coherent interconnect.
    for strategy in ("het", "gpu+het"):
        def coop_config(strategy: str = strategy) -> PhysicalConfig:
            if not machine.coherent_gpu_access:
                raise UnsupportedTransferError(
                    f"{strategy} needs cache-coherent GPU access and "
                    f"{machine.name}'s interconnect is not coherent"
                )
            return replace(
                base,
                strategy=strategy,
                workers=workers,
                transfer_method="coherence",
                placement=None,
            )
        yield coop_config, query, stats


def _scan_candidates(
    shape: ScanShape,
    machine: Machine,
    gpu_name: str,
    tier: Tuple[str, int, int],
    calibration: Calibration,
    label: str,
):
    """Yield (config, query, stats) points for a selection scan."""
    backend, exec_workers, shards = tier
    query = Query(shape.aggregate)
    processors = [gpu_name] + [cpu.name for cpu in machine.cpus()]
    value_bytes = shape.scan.column_bytes()
    for processor in processors:
        is_gpu = processor == gpu_name
        methods = sorted(TRANSFER_METHODS) if is_gpu else ["coherence"]
        for method_name in methods:
            for variant in ("predicated", "branching"):
                stats = estimate_scan_stats(
                    variant,
                    shape.predicates,
                    len(value_bytes),
                    value_bytes,
                    calibration.branching_residual_load,
                )

                def scan_config(
                    processor: str = processor,
                    method_name: str = method_name,
                    variant: str = variant,
                ) -> PhysicalConfig:
                    return PhysicalConfig(
                        strategy="single",
                        processor=processor,
                        transfer_method=method_name,
                        variant=variant,
                        backend=backend,
                        exec_workers=exec_workers,
                        shards=shards,
                        label=label,
                    )

                yield scan_config, query, stats


def _star_candidates(
    shape: StarShape,
    machine: Machine,
    gpu_name: str,
    workers: Tuple[str, ...],
    tier: Tuple[str, int, int],
    label: str,
):
    """Yield (config, query, stats) points for a star shape: one
    candidate per enumerated dimension probe order."""
    backend, exec_workers, shards = tier
    query = Query(shape.aggregate)
    hints = [sel for _scan, _key, sel in shape.dimensions]
    ndims = len(shape.dimensions)
    orders = itertools.islice(
        itertools.permutations(range(ndims)), MAX_JOIN_ORDERS
    )
    for order in orders:
        stats = estimate_star_stats([hints[i] for i in order])

        def star_config(
            order: Tuple[int, ...] = tuple(order)
        ) -> PhysicalConfig:
            if not machine.coherent_gpu_access:
                raise UnsupportedTransferError(
                    "the star pipeline replicates dimension tables and "
                    "probes cooperatively; it needs coherent GPU access"
                )
            return PhysicalConfig(
                strategy="gpu+het",
                workers=workers,
                transfer_method="coherence",
                join_order=order,
                backend=backend,
                exec_workers=exec_workers,
                shards=shards,
                label=label,
            )

        yield star_config, query, stats


# ----------------------------------------------------------------------
# The optimizer entry point
# ----------------------------------------------------------------------
def optimize(
    query,
    machine: Machine,
    calibration: Calibration = DEFAULT_CALIBRATION,
    gpu_name: str = "gpu0",
    workers: Optional[Sequence[str]] = None,
    hash_scheme: str = "perfect",
    label: str = "",
) -> OptimizerResult:
    """Pick the cheapest physical plan for a logical query.

    Returns an :class:`OptimizerResult` carrying the chosen candidate,
    its compiled :class:`~repro.plan.Plan`, and every alternative that
    was considered (including rejections with reasons), ready for
    ``explain()`` or the manifest's ``optimizer`` section.
    """
    shape = classify(query)
    if workers is None:
        workers = (gpu_name,) + tuple(cpu.name for cpu in machine.cpus())
    workers = tuple(workers)
    cost_model = CostModel(machine, calibration)

    if isinstance(shape, ScanShape):
        shape_name = "scan"
        tier = host_tier(shape.scan.executed_rows)
        points = _scan_candidates(
            shape, machine, gpu_name, tier, calibration,
            label or shape.scan.name,
        )
    elif isinstance(shape, JoinShape):
        shape_name = "join"
        tier = host_tier(shape.probe.executed_rows)
        points = _join_candidates(
            shape, machine, gpu_name, workers, tier, hash_scheme,
            label or "join",
        )
    else:
        shape_name = "star"
        tier = host_tier(shape.fact.executed_rows)
        points = _star_candidates(
            shape, machine, gpu_name, workers, tier, label or "star"
        )

    candidates: List[Candidate] = []
    plans: List[Optional[Plan]] = []
    for build_config, cand_query, stats in points:
        config: Optional[PhysicalConfig] = None
        try:
            config = build_config()
            plan = compile_query(cand_query, config, cost_model, stats)
            result = PlanExecutor(cost_model).execute(plan)
        except (
            UnsupportedTransferError,
            OutOfMemoryError,
            LogicalError,
            ValueError,
        ) as exc:
            # Building the config itself may be what failed (an
            # unplaceable table, an incoherent route); keep a stand-in
            # so explain() still shows the attempted point.
            if config is None:
                config = PhysicalConfig(label="(rejected)")
            candidates.append(
                Candidate(config=config, rejected=str(exc))
            )
            plans.append(None)
            continue
        candidates.append(Candidate(config=config, seconds=result.makespan))
        plans.append(plan)

    viable = [
        (cand.seconds, i)
        for i, cand in enumerate(candidates)
        if cand.viable
    ]
    if not viable:
        reasons = "; ".join(
            c.rejected for c in candidates if c.rejected is not None
        )
        raise LogicalError(
            f"no viable physical plan for this query on {machine.name}: "
            f"{reasons or 'no candidates enumerated'}"
        )
    _best_seconds, best_index = min(viable)
    chosen = candidates[best_index]
    chosen_plan = plans[best_index]
    assert chosen_plan is not None
    gpu_fraction = (
        chosen.config.placement.gpu_fraction(machine)
        if chosen.config.placement is not None
        else None
    )
    if isinstance(query, Query):
        description = query.describe()
    else:
        description = Query(query).describe()
    return OptimizerResult(
        query=description,
        shape=shape_name,
        machine=machine.name,
        chosen=chosen,
        candidates=tuple(candidates),
        chosen_plan=chosen_plan,
        gpu_fraction=gpu_fraction,
    )
