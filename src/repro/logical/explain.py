"""Explain the optimizer's choice for a named workload.

CLI::

    python -m repro.logical.explain q6
    python -m repro.logical.explain join-a --machine intel-xeon-v100
    python -m repro.logical.explain --list

For the named workload, the optimizer enumerates the physical search
space (transfer methods, hash-table placements, strategies, join
orders, host tiers), prices every candidate with the cost model, and
prints the chosen plan followed by every alternative — viable ones
ranked by predicted seconds, rejected ones with the rejection reason
(e.g. ``coherence`` on a PCI-e machine).

The registry is shared with the predicted-vs-actual gap benchmark
(``repro.bench.optimizer_gap``), so the workloads explained here are
exactly the ones whose estimation error is tracked in CI.
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.data.relation import Relation
from repro.hardware import ibm_ac922, intel_xeon_v100
from repro.hardware.topology import Machine
from repro.logical.algebra import Query, scan
from repro.logical.optimizer import OptimizerResult, optimize
from repro.workloads.builders import (
    workload_a,
    workload_b,
    workload_selectivity,
)
from repro.workloads.tpch import lineitem_q6

#: The join workloads keep their *modeled* (paper) cardinalities — the
#: trade-offs the optimizer must re-derive (Table-1 method ranking,
#: Figure-11 placement, Het-vs-GPU strategy) only appear at paper
#: scale, where transfer and memory terms dominate fixed overheads.
#: Only the *executed* arrays are scaled down (the builders' default
#: ``scale``), so everything still runs in milliseconds.
Q6_SCALE_FACTOR = 100.0
#: match rate of the Figure-20 reduced-selectivity join workload.  The
#: hint the optimizer sees is this exact value; the *sampled* match
#: rate differs by rng noise, which is precisely the estimation error
#: the gap benchmark measures.
JOIN_SEL_SELECTIVITY = 0.5
STAR_DIMS = ("d1_key", "d2_key", "d3_key")
#: fraction of the fact key domain each dimension covers — the join's
#: survival rate, used both to generate the data and as the logical
#: query's selectivity hint (so estimated and measured statistics agree
#: up to sampling noise).
STAR_SELECTIVITY = (0.9, 0.5, 0.2)
STAR_FACT_MODELED = 1 << 26
STAR_DIM_MODELED = 1 << 20

MACHINES: Dict[str, Callable[[], Machine]] = {
    "ibm-ac922": ibm_ac922,
    "intel-xeon-v100": intel_xeon_v100,
}


def _join_query(wl) -> Query:
    """S probes a table built from R (the NOPA/Coop shape).

    The workload's own match rate becomes the join's selectivity hint
    (omitted at 1.0 — the every-key-matches default)."""
    hint = None if wl.selectivity == 1.0 else wl.selectivity
    return (
        scan(wl.s)
        .join(scan(wl.r), build_key="key", probe_key="key", selectivity=hint)
        .aggregate(agg=("build_payload", "sum"))
    )


def _q6_query() -> Query:
    from repro.core.ops.q6 import TpchQ6

    workload = lineitem_q6(Q6_SCALE_FACTOR)
    machine = ibm_ac922()
    return TpchQ6(machine).logical_query(workload)


def star_inputs() -> Tuple[Dict[str, "np.ndarray"], Tuple[Relation, ...]]:
    """Deterministic star-join inputs: fact key columns + dimensions.

    Each dimension covers only ``STAR_SELECTIVITY[i]`` of the fact key
    domain, so the measured per-dimension survival matches the query's
    selectivity hints up to sampling noise.  Shared with the facade run
    of the gap benchmark (``repro.bench.optimizer_gap``) so predicted
    and actual prices describe the same data.
    """
    rng = np.random.default_rng(7)
    n_dim = 1 << 10
    n_fact = 1 << 14
    fact = {
        key: rng.integers(0, n_dim, n_fact).astype(np.int64)
        for key in STAR_DIMS
    }
    dims = []
    for i, key in enumerate(STAR_DIMS):
        covered = int(n_dim * STAR_SELECTIVITY[i])
        dims.append(
            Relation(
                name=key,
                key=np.arange(covered, dtype=np.int64),
                payload=rng.integers(0, 100, covered).astype(np.int64),
                modeled_tuples=STAR_DIM_MODELED,
            )
        )
    return fact, tuple(dims)


def _star_query() -> Query:
    """A three-dimension star: the fact scan probes one join per
    dimension, each with its own output prefix and a survival hint."""
    fact, dims = star_inputs()
    query = scan(
        fact,
        name="fact",
        modeled_rows=STAR_FACT_MODELED,
        location="cpu0-mem",
    )
    for i, key in enumerate(STAR_DIMS):
        query = query.join(
            scan(dims[i]),
            build_key="key",
            probe_key=key,
            selectivity=STAR_SELECTIVITY[i],
            output_prefix=f"{key}_",
        )
    return query.aggregate(star=(f"{STAR_DIMS[0]}_payload", "sum"))


#: name -> (description, query builder).  The query builders reuse the
#: facades' own logical-query constructors where one exists, so the
#: explained plans are the plans the operators actually run.
WORKLOADS: Dict[str, Tuple[str, Callable[[], Query]]] = {
    "q6": (
        "TPC-H Q6 scan/filter/aggregate (Figure 15)",
        _q6_query,
    ),
    "join-a": (
        "workload A hash join, 2 GiB build side (Figure 7)",
        lambda: _join_query(workload_a()),
    ),
    "join-b": (
        "workload B hash join, cache-resident build side (Figure 7)",
        lambda: _join_query(workload_b()),
    ),
    "join-sel": (
        "workload A at 50% join selectivity (Figure 20)",
        lambda: _join_query(workload_selectivity(JOIN_SEL_SELECTIVITY)),
    ),
    "star": (
        "three-dimension star join (Section 6.2 multi-way extension)",
        _star_query,
    ),
}


def explain_workload(
    name: str, machine_name: str = "ibm-ac922"
) -> OptimizerResult:
    """Optimize a named workload and return the full decision."""
    if name not in WORKLOADS:
        raise KeyError(
            f"unknown workload {name!r}; valid: {', '.join(sorted(WORKLOADS))}"
        )
    if machine_name not in MACHINES:
        raise KeyError(
            f"unknown machine {machine_name!r}; valid: "
            f"{', '.join(sorted(MACHINES))}"
        )
    _description, build_query = WORKLOADS[name]
    return optimize(build_query(), MACHINES[machine_name](), label=name)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.logical.explain",
        description="Print the optimizer's chosen physical plan and all "
        "rejected alternatives for a named workload.",
    )
    parser.add_argument(
        "workload",
        nargs="?",
        help=f"workload name ({', '.join(sorted(WORKLOADS))})",
    )
    parser.add_argument(
        "--machine",
        default="ibm-ac922",
        choices=sorted(MACHINES),
        help="machine to optimize for (default: ibm-ac922)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list the named workloads and exit",
    )
    args = parser.parse_args(argv)
    if args.list or args.workload is None:
        for name in sorted(WORKLOADS):
            print(f"{name:10s} {WORKLOADS[name][0]}")
        return 0
    result = explain_workload(args.workload, args.machine)
    print(result.explain())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
