"""Lower a logical plan to a ``repro.engine.operators`` pipeline.

This is the *functional* lowering: it produces actual result tuples by
interpreting the logical plan with the vectorized pull-based engine.
The priced lowering (``repro.logical.lower``) produces the cost-model
:class:`repro.plan.Plan` for the same query; facades run both and the
golden harness pins that the pair stays consistent.
"""

from __future__ import annotations

from typing import Optional

from repro.engine import operators as ops
from repro.logical.algebra import (
    Aggregate,
    Filter,
    HashJoin,
    LogicalError,
    LogicalNode,
    Project,
    Query,
    Scan,
)


def to_operators(
    node,
    morsel_rows: int = 1 << 16,
    hash_scheme: str = "open_addressing",
) -> ops.Operator:
    """Recursively translate a logical tree into engine operators."""
    if isinstance(node, Query):
        node = node.node
    if isinstance(node, Scan):
        return ops.TableScan(node.data, morsel_rows=morsel_rows)
    if isinstance(node, Filter):
        child = to_operators(node.child, morsel_rows, hash_scheme)
        predicate = node.predicate
        return ops.Filter(
            child, lambda batch: predicate.mask(batch[predicate.column])
        )
    if isinstance(node, Project):
        child = to_operators(node.child, morsel_rows, hash_scheme)
        return ops.Project(child, node.expressions)
    if isinstance(node, HashJoin):
        build = to_operators(node.build, morsel_rows, hash_scheme)
        probe = to_operators(node.probe, morsel_rows, hash_scheme)
        return ops.HashJoinOp(
            build,
            probe,
            build_key=node.build_key,
            probe_key=node.probe_key,
            hash_scheme=hash_scheme,
            output_prefix=node.output_prefix,
        )
    if isinstance(node, Aggregate):
        child = to_operators(node.child, morsel_rows, hash_scheme)
        return ops.HashAggregate(child, node.group_by, node.aggregates)
    raise LogicalError(
        f"no engine lowering for logical node {type(node).__name__}"
    )


def run_pipeline(
    query,
    morsel_rows: int = 1 << 16,
    hash_scheme: str = "open_addressing",
) -> ops.Batch:
    """Interpret a logical plan; returns the collected result batch."""
    return ops.collect(to_operators(query, morsel_rows, hash_scheme))
