"""The logical-plan algebra: ``Scan -> Filter -> Project -> HashJoin ->
Aggregate``.

Logical nodes describe *what* a query computes, independent of where it
runs, which Table-1 transfer method moves its bytes, or where its hash
tables live — those are physical choices made by
:class:`repro.logical.lower.PhysicalConfig` (by hand) or
:func:`repro.logical.optimizer.optimize` (by cost).  The algebra is
deliberately small: it covers TPC-H Q6 (scan + predicate cascade +
projection + aggregate) and multi-join star/snowflake shapes over
``repro.workloads``, which is exactly the operator inventory of the
paper.

Every constructor validates its schema immediately, so a malformed
query fails where it is written, not deep inside the compiler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.data.relation import Relation
from repro.hardware.memory import MemoryKind

Batch = Dict[str, np.ndarray]

#: aggregate functions the algebra (and the engine interpreter) accept.
AGGREGATE_FUNCTIONS = ("sum", "min", "max", "count", "mean")

#: comparison operators a :class:`Predicate` may use.
PREDICATE_OPS = ("ge", "gt", "lt", "le", "eq", "between")


class LogicalError(ValueError):
    """A malformed logical plan (unknown column, bad shape, ...)."""


# ----------------------------------------------------------------------
# Scalar expressions and predicates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Expr:
    """A scalar expression over a batch: callable + referenced columns."""

    fn: Callable[[Batch], np.ndarray]
    refs: Tuple[str, ...]
    label: str = ""

    def __call__(self, batch: Batch) -> np.ndarray:
        return self.fn(batch)


def column(name: str) -> Expr:
    """The identity expression for one column."""
    return Expr(lambda batch: batch[name], (name,), name)


def mul(a: str, b: str, dtype: Any = np.float64) -> Expr:
    """``a * b`` with both columns widened to ``dtype`` first."""
    return Expr(
        lambda batch: batch[a].astype(dtype) * batch[b].astype(dtype),
        (a, b),
        f"{a} * {b}",
    )


@dataclass(frozen=True)
class Predicate:
    """One comparison over a single column.

    ``selectivity`` is an optional estimate hint in [0, 1] used by the
    optimizer's pre-execution statistics (the functional layer always
    measures the true value).  ``clustered`` marks columns whose
    qualifying rows are physically contiguous (dbgen's shipdate
    clustering), which changes the *line*-granularity skipping estimate
    for branching scans.
    """

    column: str
    op: str
    value: Any = None
    high: Any = None
    selectivity: Optional[float] = None
    clustered: bool = False
    label: str = ""

    def __post_init__(self) -> None:
        if self.op not in PREDICATE_OPS:
            raise LogicalError(
                f"unknown predicate op {self.op!r}; valid: "
                f"{', '.join(PREDICATE_OPS)}"
            )
        if self.op == "between" and self.high is None:
            raise LogicalError("'between' predicates need value and high")
        if self.selectivity is not None and not 0.0 <= self.selectivity <= 1.0:
            raise LogicalError(
                f"selectivity hint must be in [0, 1], got {self.selectivity}"
            )

    def mask(self, values: np.ndarray) -> np.ndarray:
        """Evaluate to a boolean mask over one column array."""
        if self.op == "ge":
            return values >= self.value
        if self.op == "gt":
            return values > self.value
        if self.op == "lt":
            return values < self.value
        if self.op == "le":
            return values <= self.value
        if self.op == "eq":
            return values == self.value
        return (values >= self.value) & (values <= self.high)

    def describe(self) -> str:
        """Render the comparison (or the explicit label if one is set)."""
        if self.label:
            return self.label
        if self.op == "between":
            return f"{self.column} in [{self.value}, {self.high}]"
        symbol = {"ge": ">=", "gt": ">", "lt": "<", "le": "<=", "eq": "=="}
        return f"{self.column} {symbol[self.op]} {self.value}"


def ge(col: str, value: Any, **kwargs: Any) -> Predicate:
    """``col >= value``."""
    return Predicate(col, "ge", value, **kwargs)


def lt(col: str, value: Any, **kwargs: Any) -> Predicate:
    """``col < value``."""
    return Predicate(col, "lt", value, **kwargs)


def between(col: str, lo: Any, hi: Any, **kwargs: Any) -> Predicate:
    """``lo <= col <= hi`` (both bounds inclusive)."""
    return Predicate(col, "between", lo, hi, **kwargs)


# ----------------------------------------------------------------------
# Logical nodes
# ----------------------------------------------------------------------
class LogicalNode:
    """Base: a node with children and a fixed output schema."""

    children: Tuple["LogicalNode", ...] = ()

    def schema(self) -> Tuple[str, ...]:
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human description (used by explain output)."""
        raise NotImplementedError

    def walk(self) -> Iterable["LogicalNode"]:
        yield self
        for child in self.children:
            yield from child.walk()


class Scan(LogicalNode):
    """A base-table scan.

    Accepts a :class:`Relation` (exposed as ``key``/``payload``
    columns), any object with ``columns() -> dict`` plus
    ``modeled_rows``/``location``/``kind`` attributes (e.g.
    :class:`repro.workloads.tpch.Q6Workload`), or a plain dict of
    equal-length numpy columns.
    """

    def __init__(
        self,
        source: Any,
        name: str = "",
        modeled_rows: Optional[int] = None,
        location: Optional[str] = None,
        kind: Optional[MemoryKind] = None,
    ) -> None:
        self.source = source
        self.relation: Optional[Relation] = None
        if isinstance(source, Relation):
            self.relation = source
            data: Dict[str, np.ndarray] = {
                "key": source.key,
                "payload": source.payload,
            }
            name = name or source.name
            modeled_rows = (
                modeled_rows if modeled_rows is not None
                else source.modeled_tuples
            )
            location = location or source.location
            kind = kind or source.kind
        elif hasattr(source, "columns") and callable(source.columns):
            data = dict(source.columns())
            modeled_rows = (
                modeled_rows if modeled_rows is not None
                else getattr(source, "modeled_rows", None)
            )
            location = location or getattr(source, "location", None)
            kind = kind or getattr(source, "kind", None)
        elif isinstance(source, Mapping):
            data = dict(source)
        else:
            raise LogicalError(
                f"scan source must be a Relation, a columns() provider, or "
                f"a dict of columns, got {type(source).__name__}"
            )
        if not data:
            raise LogicalError("scan needs at least one column")
        lengths = {len(col) for col in data.values()}
        if len(lengths) != 1:
            raise LogicalError(
                f"ragged scan columns: lengths {sorted(lengths)}"
            )
        self.data = data
        self.name = name or "scan"
        self.executed_rows = lengths.pop()
        self.modeled_rows = (
            int(modeled_rows) if modeled_rows is not None
            else self.executed_rows
        )
        if self.modeled_rows < self.executed_rows:
            raise LogicalError(
                f"modeled cardinality {self.modeled_rows} below executed "
                f"cardinality {self.executed_rows} in scan {self.name!r}"
            )
        self.location = location or "cpu0-mem"
        self.kind = kind if kind is not None else MemoryKind.PAGEABLE

    def schema(self) -> Tuple[str, ...]:
        return tuple(self.data)

    def column_bytes(self) -> List[int]:
        """Per-column element widths, in schema order."""
        return [col.dtype.itemsize for col in self.data.values()]

    def describe(self) -> str:
        return (
            f"Scan({self.name}: {self.modeled_rows} modeled rows, "
            f"cols={list(self.data)}, in {self.location})"
        )


class Filter(LogicalNode):
    """Keeps rows satisfying one predicate."""

    def __init__(self, child: LogicalNode, predicate: Predicate) -> None:
        if predicate.column not in child.schema():
            raise LogicalError(
                f"filter references unknown column {predicate.column!r}; "
                f"child schema: {list(child.schema())}"
            )
        self.child = child
        self.children = (child,)
        self.predicate = predicate

    def schema(self) -> Tuple[str, ...]:
        return self.child.schema()

    def describe(self) -> str:
        return f"Filter({self.predicate.describe()})"


class Project(LogicalNode):
    """Computes output columns from expressions over the input."""

    def __init__(
        self, child: LogicalNode, expressions: Mapping[str, Expr]
    ) -> None:
        if not expressions:
            raise LogicalError("projection needs at least one expression")
        available = set(child.schema())
        for name, expr in expressions.items():
            missing = [ref for ref in expr.refs if ref not in available]
            if missing:
                raise LogicalError(
                    f"projection {name!r} references unknown column(s) "
                    f"{missing}; child schema: {sorted(available)}"
                )
        self.child = child
        self.children = (child,)
        self.expressions = dict(expressions)

    def schema(self) -> Tuple[str, ...]:
        return tuple(self.expressions)

    def describe(self) -> str:
        exprs = ", ".join(
            f"{name}={expr.label or '<expr>'}"
            for name, expr in self.expressions.items()
        )
        return f"Project({exprs})"


class HashJoin(LogicalNode):
    """Equi-join: the build child populates a hash table, the probe
    child streams through it.

    Mirrors :class:`repro.engine.operators.HashJoinOp`: build-side
    payload columns appear in the output with ``output_prefix``
    prepended (``build_`` by default; star queries joining several
    dimensions with identically-named payloads pass a per-dimension
    prefix to keep the output schema collision-free).
    ``selectivity`` is an optional match-rate estimate hint for the
    optimizer (fraction of probe rows that find a build match).
    """

    def __init__(
        self,
        build: LogicalNode,
        probe: LogicalNode,
        build_key: str,
        probe_key: str,
        selectivity: Optional[float] = None,
        output_prefix: str = "build_",
    ) -> None:
        if build_key not in build.schema():
            raise LogicalError(
                f"build key {build_key!r} not in build schema "
                f"{list(build.schema())}"
            )
        if probe_key not in probe.schema():
            raise LogicalError(
                f"probe key {probe_key!r} not in probe schema "
                f"{list(probe.schema())}"
            )
        if selectivity is not None and not 0.0 <= selectivity <= 1.0:
            raise LogicalError(
                f"join selectivity hint must be in [0, 1], got {selectivity}"
            )
        self.build = build
        self.probe = probe
        self.children = (build, probe)
        self.build_key = build_key
        self.probe_key = probe_key
        self.selectivity = selectivity
        self.output_prefix = output_prefix
        self.build_payload_names = tuple(
            name for name in build.schema() if name != build_key
        )
        overlap = set(
            f"{output_prefix}{name}" for name in self.build_payload_names
        ) & set(probe.schema())
        if overlap:
            raise LogicalError(
                f"join output column collision: {sorted(overlap)}; pass a "
                "distinct output_prefix"
            )

    def schema(self) -> Tuple[str, ...]:
        return self.probe.schema() + tuple(
            f"{self.output_prefix}{name}"
            for name in self.build_payload_names
        )

    def describe(self) -> str:
        return f"HashJoin(build.{self.build_key} == probe.{self.probe_key})"


class Aggregate(LogicalNode):
    """Group-by aggregation; empty ``group_by`` yields one global row."""

    def __init__(
        self,
        child: LogicalNode,
        group_by: Tuple[str, ...] = (),
        aggregates: Optional[Mapping[str, Tuple[str, str]]] = None,
    ) -> None:
        aggregates = dict(aggregates or {})
        if not aggregates:
            raise LogicalError("aggregation needs at least one aggregate")
        available = set(child.schema())
        for name in group_by:
            if name not in available:
                raise LogicalError(
                    f"group-by column {name!r} not in child schema "
                    f"{sorted(available)}"
                )
        for name, (col, fn) in aggregates.items():
            if fn not in AGGREGATE_FUNCTIONS:
                raise LogicalError(
                    f"unknown aggregate function {fn!r}; valid: "
                    f"{', '.join(AGGREGATE_FUNCTIONS)}"
                )
            if fn == "count":
                if col != "*":
                    raise LogicalError("count aggregates use column '*'")
            elif col not in available:
                raise LogicalError(
                    f"aggregate {name!r} references unknown column {col!r}; "
                    f"child schema: {sorted(available)}"
                )
        self.child = child
        self.children = (child,)
        self.group_by = tuple(group_by)
        self.aggregates = aggregates

    def schema(self) -> Tuple[str, ...]:
        return self.group_by + tuple(self.aggregates)

    def describe(self) -> str:
        aggs = ", ".join(
            f"{name}={fn}({col})"
            for name, (col, fn) in self.aggregates.items()
        )
        by = f" by {list(self.group_by)}" if self.group_by else ""
        return f"Aggregate({aggs}{by})"


# ----------------------------------------------------------------------
# The fluent builder
# ----------------------------------------------------------------------
class Query:
    """A fluent, validating builder over the algebra.

    Example (TPC-H Q6 shape)::

        q = (scan(workload, name="lineitem")
             .filter(ge("shipdate", lo), lt("shipdate", hi))
             .project(revenue=mul("extendedprice", "discount"))
             .aggregate(revenue=("revenue", "sum")))

    Example (NOPA join shape; ``self`` is the probe side)::

        q = (scan(wl.s)
             .join(scan(wl.r), build_key="key", probe_key="key")
             .aggregate(agg=("build_payload", "sum")))
    """

    def __init__(self, node: LogicalNode) -> None:
        if not isinstance(node, LogicalNode):
            raise LogicalError(
                f"Query wraps a LogicalNode, got {type(node).__name__}"
            )
        self.node = node

    def schema(self) -> Tuple[str, ...]:
        """Output column names of the wrapped tree."""
        return self.node.schema()

    def filter(self, *predicates: Predicate) -> "Query":
        """Apply the predicates in order (first argument innermost)."""
        if not predicates:
            raise LogicalError("filter() needs at least one predicate")
        node = self.node
        for predicate in predicates:
            node = Filter(node, predicate)
        return Query(node)

    def project(self, **expressions: Expr) -> "Query":
        """Compute named output columns from expressions."""
        return Query(Project(self.node, expressions))

    def join(
        self,
        build: "Query",
        build_key: str,
        probe_key: str,
        selectivity: Optional[float] = None,
        output_prefix: str = "build_",
    ) -> "Query":
        """Join ``self`` (probe side) against ``build`` (build side)."""
        return Query(
            HashJoin(
                build.node,
                self.node,
                build_key=build_key,
                probe_key=probe_key,
                selectivity=selectivity,
                output_prefix=output_prefix,
            )
        )

    def aggregate(
        self,
        group_by: Tuple[str, ...] = (),
        **aggregates: Tuple[str, str],
    ) -> "Query":
        """Aggregate ``name=(column, fn)`` pairs, optionally grouped."""
        return Query(Aggregate(self.node, group_by, aggregates))

    def describe(self) -> str:
        """Indented tree rendering of the logical plan."""
        lines: List[str] = []

        def render(node: LogicalNode, depth: int) -> None:
            lines.append("  " * depth + node.describe())
            for child in node.children:
                render(child, depth + 1)

        render(self.node, 0)
        return "\n".join(lines)


def scan(
    source: Any,
    name: str = "",
    modeled_rows: Optional[int] = None,
    location: Optional[str] = None,
    kind: Optional[MemoryKind] = None,
) -> Query:
    """Start a query from a base table (see :class:`Scan`)."""
    return Query(
        Scan(
            source,
            name=name,
            modeled_rows=modeled_rows,
            location=location,
            kind=kind,
        )
    )
