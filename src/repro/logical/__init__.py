"""Logical query layer and cost-based optimizer.

The layer sits between user code and the phase-plan IR (``repro.plan``):

* :mod:`repro.logical.algebra` — a small relational algebra
  (``Scan -> Filter -> Project -> HashJoin -> Aggregate``) with a
  validating :class:`Query` builder, enough for TPC-H Q6 plus
  multi-join star/snowflake shapes over ``repro.workloads``;
* :mod:`repro.logical.stats` — runtime statistics (measured from a
  functional execution, or *estimated* ahead of time) that
  parameterize pricing;
* :mod:`repro.logical.lower` — the lowering compiler that turns a
  logical plan plus a :class:`PhysicalConfig` into a priced
  :class:`repro.plan.Plan` DAG through the shared ``ingest()`` glue;
* :mod:`repro.logical.interpret` — lowers a logical plan to a
  ``repro.engine.operators`` pipeline for functional execution;
* :mod:`repro.logical.optimizer` — enumerates physical alternatives
  (Table-1 transfer method, Fig. 8/11 hash-table placement fraction,
  GPU-only vs Het vs GPU+Het strategy, join order, backend + shards),
  prices each with the cost model, and picks the cheapest.

The operator classes (``NoPartitioningJoin``, ``CoopJoin``,
``StarJoin``, ``TpchQ6``) are facades over this layer: they build a
logical plan and run it through :func:`compile_query`, so every priced
plan in the library is compiler output.
"""

from repro.logical.algebra import (
    Aggregate,
    Expr,
    Filter,
    HashJoin,
    LogicalError,
    LogicalNode,
    Predicate,
    Project,
    Query,
    Scan,
    between,
    column,
    ge,
    lt,
    mul,
    scan,
)
from repro.logical.interpret import run_pipeline, to_operators
from repro.logical.lower import PhysicalConfig, compile_query
from repro.logical.optimizer import (
    Candidate,
    OPTIMIZER_SCHEMA_VERSION,
    OptimizerResult,
    optimize,
)
from repro.logical.stats import (
    JoinStats,
    ScanStats,
    StarStats,
    TableProfile,
    estimate_join_stats,
    estimate_line_fraction,
    estimate_scan_stats,
    estimate_star_stats,
)

__all__ = [
    "Aggregate",
    "Candidate",
    "Expr",
    "Filter",
    "HashJoin",
    "JoinStats",
    "LogicalError",
    "LogicalNode",
    "OPTIMIZER_SCHEMA_VERSION",
    "OptimizerResult",
    "PhysicalConfig",
    "Predicate",
    "Project",
    "Query",
    "Scan",
    "ScanStats",
    "StarStats",
    "TableProfile",
    "between",
    "column",
    "compile_query",
    "estimate_join_stats",
    "estimate_line_fraction",
    "estimate_scan_stats",
    "estimate_star_stats",
    "ge",
    "lt",
    "mul",
    "optimize",
    "run_pipeline",
    "scan",
    "to_operators",
]
