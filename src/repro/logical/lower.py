"""The lowering compiler: logical plan + physical choices -> ``Plan``.

This module owns the phase-assembly arithmetic that used to live
inside the operator classes (``NoPartitioningJoin``, ``CoopJoin``,
``StarJoin``, ``TpchQ6``).  The operators are now facades: they build a
logical plan, gather runtime statistics from their functional
execution, and call :func:`compile_query`; the optimizer calls the same
compiler with *estimated* statistics to price candidates it never
executes.  Either way, every read of relation/column bytes goes through
the shared :func:`repro.plan.ingest` glue, and every plan is priced by
the one :class:`repro.plan.PlanExecutor`.

The free functions (``join_build_phase`` and friends) are the verbatim
arithmetic of the pre-refactor operator methods — same stream
construction order, same float expressions — which is what keeps the
PR-3 golden-equivalence harness passing bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.costmodel.access import (
    AccessProfile,
    Stream,
    atomic_stream,
    random_stream,
    seq_stream,
)
from repro.costmodel.calibration import Calibration
from repro.costmodel.model import CostModel, PhaseCost
from repro.core.hashtable.placement import HashTablePlacement
from repro.data.relation import Relation
from repro.hardware.cache import HotSetProfile
from repro.hardware.memory import MemoryKind
from repro.hardware.processor import Gpu
from repro.hardware.topology import Machine
from repro.logical.algebra import (
    Aggregate,
    Filter,
    HashJoin,
    LogicalError,
    LogicalNode,
    Predicate,
    Project,
    Query,
    Scan,
)
from repro.logical.stats import JoinStats, ScanStats, StarStats, TableProfile
from repro.memory.allocator import OutOfMemoryError
from repro.plan import (
    MorselWorker,
    PhaseSpec,
    Plan,
    Surcharge,
    WorkerLoad,
    concurrent_phase,
    fixed_phase,
    ingest,
    morsel_phase,
    priced_phase,
)

#: calibrated accounting: a GPU insert is one 16-byte CAS; a CPU
#: insert is a compare-exchange plus a store (two accesses).
GPU_BUILD_ACCESSES = 1.0
CPU_BUILD_ACCESSES = 2.0

#: execution strategies the physical layer understands.
STRATEGIES = ("single", "het", "gpu+het")


# ----------------------------------------------------------------------
# Physical configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PhysicalConfig:
    """One point in the physical search space.

    The optimizer enumerates these; the facades construct the single
    point matching their constructor knobs.  Fields that do not apply
    to a shape (e.g. ``variant`` for joins) are ignored by lowering.
    """

    #: "single" (one processor), "het" (shared table, cooperative
    #: morsel probe), or "gpu+het" (build once, broadcast, probe
    #: everywhere) — the Section 6 strategies.
    strategy: str = "single"
    #: executing processor for the single strategy.
    processor: str = "gpu0"
    #: cooperating processors for het / gpu+het / star shapes.
    workers: Tuple[str, ...] = ()
    #: Table-1 transfer method for GPU reads of CPU-memory inputs.
    transfer_method: str = "coherence"
    #: resolved hash-table placement (single strategy only).
    placement: Optional[HashTablePlacement] = None
    #: hash-table layout: "soa" | "aos" (Figure 20).
    layout: str = "soa"
    #: probe output: "aggregate" | "materialize" (Section 5.1).
    output: str = "aggregate"
    #: scan kernel variant: "predicated" | "branching" (Section 7.2.4).
    variant: str = "predicated"
    #: dimension probe order for star shapes: indices into the query's
    #: as-written dimension list; empty keeps the written order.  The
    #: matching ``StarStats.survival_per_dim`` must be given in this
    #: *execution* order.
    join_order: Tuple[int, ...] = ()
    #: modeled morsel size of the simulated Het dispatcher.
    morsel_tuples: int = 1 << 22
    #: morsels per GPU batch (None auto-tunes).
    gpu_batch_morsels: Optional[int] = None
    #: host-execution tier: functional backend + worker/shard counts.
    #: Results and modeled costs are backend-invariant (the bit-identical
    #: equivalence suite pins that), so these do not affect pricing —
    #: the optimizer picks them with a deterministic host heuristic.
    backend: str = "serial"
    exec_workers: int = 0
    shards: int = 1
    hash_scheme: str = "perfect"
    #: base label for plan/phase names ("nopa", "q6", ...).
    label: str = ""

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise LogicalError(
                f"unknown strategy {self.strategy!r}; valid: "
                f"{', '.join(STRATEGIES)}"
            )
        if self.layout not in ("soa", "aos"):
            raise LogicalError(
                f"layout must be 'soa' or 'aos', got {self.layout!r}"
            )
        if self.output not in ("aggregate", "materialize"):
            raise LogicalError(
                f"output must be 'aggregate' or 'materialize', "
                f"got {self.output!r}"
            )
        if self.strategy != "single" and not self.workers:
            raise LogicalError(
                f"strategy {self.strategy!r} needs a workers tuple"
            )

    def describe(self) -> str:
        """Compact one-line rendering (used by explain and manifests)."""
        if self.strategy == "single":
            where = self.processor
        else:
            where = "+".join(self.workers)
        parts = [f"{self.strategy}@{where}", self.transfer_method]
        if self.placement is not None:
            parts.append(f"table={self.placement.label}")
        if self.join_order:
            parts.append("order=" + ">".join(str(i) for i in self.join_order))
        parts.append(f"backend={self.backend}x{max(1, self.exec_workers)}")
        if self.shards > 1:
            parts.append(f"shards={self.shards}")
        return " ".join(parts)


# ----------------------------------------------------------------------
# Shape classification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScanShape:
    """Aggregate over (projected, filtered) single-table scan — Q6."""

    scan: Scan
    predicates: Tuple[Predicate, ...]
    aggregate: Aggregate


@dataclass(frozen=True)
class JoinShape:
    """Aggregate over one hash join of two base tables — NOPA/Coop."""

    join: HashJoin
    build: Scan
    probe: Scan
    aggregate: Aggregate


@dataclass(frozen=True)
class StarShape:
    """Aggregate over a chain of joins sharing one fact table."""

    fact: Scan
    #: (dimension scan, fact key column, selectivity hint) in probe
    #: order — innermost join first.
    dimensions: Tuple[Tuple[Scan, str, Optional[float]], ...]
    aggregate: Aggregate


def classify(node: LogicalNode):
    """Map a logical tree onto one of the lowerable shapes."""
    if isinstance(node, Query):
        node = node.node
    if not isinstance(node, Aggregate):
        raise LogicalError(
            "lowerable plans end in an Aggregate (the paper's operators "
            f"all reduce); got {type(node).__name__}"
        )
    aggregate = node
    core = aggregate.child
    predicates: List[Predicate] = []
    while isinstance(core, (Filter, Project)):
        if isinstance(core, Filter):
            predicates.append(core.predicate)
        core = core.child
    predicates.reverse()  # application order: innermost filter first
    if isinstance(core, Scan):
        return ScanShape(core, tuple(predicates), aggregate)
    if not isinstance(core, HashJoin):
        raise LogicalError(
            f"cannot lower a {type(core).__name__} pipeline; supported "
            "shapes: scan/filter/aggregate, single hash join, star joins"
        )
    if predicates:
        raise LogicalError(
            "filters above a join are not lowerable yet; push them into "
            "selectivity hints"
        )
    # Walk the probe chain: HashJoin(build=dim, probe=HashJoin(...)).
    dimensions: List[Tuple[Scan, str, Optional[float]]] = []
    probe: LogicalNode = core
    while isinstance(probe, HashJoin):
        if not isinstance(probe.build, Scan):
            raise LogicalError(
                "join build sides must be base-table scans "
                f"(got {type(probe.build).__name__})"
            )
        dimensions.append((probe.build, probe.probe_key, probe.selectivity))
        probe = probe.probe
    if not isinstance(probe, Scan):
        raise LogicalError(
            f"join probe chain must end in a scan, got {type(probe).__name__}"
        )
    dimensions.reverse()  # innermost join probes the fact first
    if len(dimensions) == 1:
        return JoinShape(core, dimensions[0][0], probe, aggregate)
    return StarShape(probe, tuple(dimensions), aggregate)


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _is_gpu(machine: Machine, worker: str) -> bool:
    return isinstance(machine.processor(worker), Gpu)


def _ingest_relation(
    cost_model: CostModel,
    transfer_method: str,
    processor: str,
    relation: Relation,
    nbytes: float,
    label: str,
):
    """Shared ingest glue: streams + chunked overlap for one input."""
    return ingest(
        cost_model,
        transfer_method,
        processor,
        relation.location,
        nbytes,
        label,
        kind=relation.kind,
    )


def table_streams(
    processor: str,
    placement: HashTablePlacement,
    accesses: float,
    access_bytes: float,
    atomic: bool,
    hot_set: Optional[HotSetProfile],
    label: str,
) -> List[Stream]:
    """Hash-table traffic split across the placement's regions."""
    streams: List[Stream] = []
    for region, share in placement.split_accesses(accesses).items():
        if share <= 0:
            continue
        working_set = placement.total_bytes * placement.fraction(region)
        if atomic:
            streams.append(
                atomic_stream(
                    processor,
                    region,
                    share,
                    access_bytes,
                    working_set_bytes=working_set,
                    label=label,
                )
            )
        else:
            streams.append(
                random_stream(
                    processor,
                    region,
                    share,
                    access_bytes,
                    working_set_bytes=working_set,
                    hot_set=hot_set,
                    label=label,
                )
            )
    return streams


# ----------------------------------------------------------------------
# Single-processor join (NOPA) lowering
# ----------------------------------------------------------------------
def join_build_phase(
    cost_model: CostModel,
    transfer_method: str,
    r: Relation,
    processor: str,
    table: TableProfile,
    placement: HashTablePlacement,
) -> PhaseSpec:
    """The build phase at modeled scale, as a plan node."""
    proc = cost_model.machine.processor(processor)
    is_gpu = isinstance(proc, Gpu)
    per_tuple = (
        GPU_BUILD_ACCESSES if is_gpu else CPU_BUILD_ACCESSES
    ) * table.insert_factor
    modeled_inserts = r.modeled_tuples * per_tuple
    spec = _ingest_relation(
        cost_model, transfer_method, processor, r, r.modeled_bytes, "read R"
    )
    streams = list(spec.streams)
    streams += table_streams(
        processor,
        placement,
        modeled_inserts,
        table.entry_bytes,
        atomic=True,
        hot_set=None,
        label="ht insert",
    )
    overhead = proc.kernel_launch_latency if is_gpu else 0.0
    work = cost_model.calibration.join_work_per_tuple[
        "gpu" if is_gpu else "cpu"
    ]
    profile = AccessProfile(
        streams=streams,
        fixed_overhead=overhead,
        compute_tuples=r.modeled_tuples * work,
        label="build",
        processor=processor,
    )
    return priced_phase(
        "build",
        profile,
        chunked=spec.chunked,
        claims=(processor,),
        span_worker=processor,
        span_units=float(r.modeled_tuples),
    )


def join_probe_phase(
    cost_model: CostModel,
    transfer_method: str,
    s: Relation,
    processor: str,
    table: TableProfile,
    placement: HashTablePlacement,
    lines_loaded: float,
    hot_set: Optional[HotSetProfile],
    layout: str = "soa",
    output: str = "aggregate",
    matches: int = 0,
    model_factor: Optional[float] = None,
) -> PhaseSpec:
    """The probe phase at modeled scale, as a plan node."""
    proc = cost_model.machine.processor(processor)
    is_gpu = isinstance(proc, Gpu)
    # The probe always streams S's key column; the payload column is
    # loaded at line granularity only where matches occur.
    key_bytes = s.modeled_tuples * s.key_bytes
    value_bytes = s.modeled_tuples * s.payload_bytes * lines_loaded
    spec = _ingest_relation(
        cost_model,
        transfer_method,
        processor,
        s,
        key_bytes + value_bytes,
        "read S",
    )
    streams = list(spec.streams)
    if model_factor is None:
        model_factor = s.model_factor
    key_lookups = table.lookup_probes * model_factor
    value_reads = table.value_reads * model_factor
    if layout == "aos":
        # Interleaved entries: the value rides in the same access as
        # the key, so matches add no extra table traffic — but every
        # probe moves the full entry.
        accesses = key_lookups
        access_bytes = float(table.entry_bytes)
    else:
        accesses = key_lookups + value_reads
        access_bytes = float(table.key_itemsize)
    streams += table_streams(
        processor,
        placement,
        accesses,
        access_bytes,
        atomic=False,
        hot_set=hot_set,
        label="ht probe",
    )
    if output == "materialize":
        # Result tuples (<key, s payload, r payload>) are written
        # sequentially to the processor's local memory.
        result_bytes = value_reads * (
            s.key_bytes + s.payload_bytes + table.value_itemsize
        )
        streams.append(
            seq_stream(
                processor,
                proc.local_memory.name,
                result_bytes,
                label="materialize result",
            )
        )
    overhead = proc.kernel_launch_latency if is_gpu else 0.0
    work = cost_model.calibration.join_work_per_tuple[
        "gpu" if is_gpu else "cpu"
    ]
    profile = AccessProfile(
        streams=streams,
        fixed_overhead=overhead,
        compute_tuples=s.modeled_tuples * work,
        label="probe",
        processor=processor,
    )
    return priced_phase(
        "probe",
        profile,
        deps=("build",),
        chunked=spec.chunked,
        claims=(processor,),
        span_worker=processor,
        span_units=float(s.modeled_tuples),
        annotations={"matches": matches},
    )


def join_plan(
    cost_model: CostModel,
    config: PhysicalConfig,
    r: Relation,
    s: Relation,
    stats: JoinStats,
    label: str = "nopa",
) -> Plan:
    """Compile the two-phase NOPA DAG (build -> probe)."""
    if config.placement is None:
        raise LogicalError(
            "single-strategy join lowering needs a resolved placement"
        )
    return Plan(
        phases=[
            join_build_phase(
                cost_model,
                config.transfer_method,
                r,
                config.processor,
                stats.table,
                config.placement,
            ),
            join_probe_phase(
                cost_model,
                config.transfer_method,
                s,
                config.processor,
                stats.table,
                config.placement,
                stats.lines_loaded,
                stats.hot_set,
                layout=config.layout,
                output=config.output,
                matches=stats.matches,
                model_factor=stats.model_factor,
            ),
        ],
        label=label,
    )


# ----------------------------------------------------------------------
# Cooperative (Het / GPU+Het) join lowering
# ----------------------------------------------------------------------
def _shared_table_region(machine: Machine, workers: Tuple[str, ...]) -> str:
    """Het: the shared table lives in the CPU memory nearest the GPU.

    "We avoid our hybrid hash table optimization and store the hash
    table in CPU memory ... we avoid slowing down CPU processing
    through remote GPU memory accesses" (Section 6.2).
    """
    gpus = [w for w in workers if _is_gpu(machine, w)]
    anchor = gpus[0] if gpus else workers[0]
    return machine.nearest_cpu_memory(anchor).name


def _local_table_region(machine: Machine, worker: str) -> str:
    """GPU+Het: every worker probes a copy in its local memory."""
    return machine.processor(worker).local_memory.name


def _coop_build_profile(
    machine: Machine,
    calibration: Calibration,
    worker: str,
    r: Relation,
    table_region: str,
    table_bytes: float,
    entry_bytes: float,
    contended: bool,
) -> AccessProfile:
    is_gpu = _is_gpu(machine, worker)
    accesses_per_tuple = 1.0 if is_gpu else 2.0
    label = "ht insert [contended]" if contended else "ht insert"
    work = calibration.join_work_per_tuple["gpu" if is_gpu else "cpu"]
    return AccessProfile(
        streams=[
            seq_stream(worker, r.location, r.modeled_bytes, "read R"),
            atomic_stream(
                worker,
                table_region,
                r.modeled_tuples * accesses_per_tuple,
                entry_bytes,
                working_set_bytes=table_bytes,
                label=label,
            ),
        ],
        compute_tuples=r.modeled_tuples * work,
        label=f"build[{worker}]",
    )


def _coop_probe_profile(
    machine: Machine,
    calibration: Calibration,
    worker: str,
    s: Relation,
    table_region: str,
    table_bytes: float,
    key_bytes: float,
    accesses_per_tuple: float,
    lines_loaded: float,
    hot_set: Optional[HotSetProfile],
) -> AccessProfile:
    is_gpu = _is_gpu(machine, worker)
    work = calibration.join_work_per_tuple["gpu" if is_gpu else "cpu"]
    stream_bytes = s.modeled_tuples * (
        s.key_bytes + s.payload_bytes * lines_loaded
    )
    return AccessProfile(
        streams=[
            seq_stream(worker, s.location, stream_bytes, "read S"),
            random_stream(
                worker,
                table_region,
                s.modeled_tuples * accesses_per_tuple,
                key_bytes,
                working_set_bytes=table_bytes,
                hot_set=hot_set,
                label="ht probe",
            ),
        ],
        compute_tuples=s.modeled_tuples * work,
        label=f"probe[{worker}]",
    )


def coop_build_phase(
    cost_model: CostModel,
    strategy: str,
    r: Relation,
    workers: Tuple[str, ...],
    table_bytes: float,
    entry_bytes: float,
) -> Tuple[PhaseSpec, Dict[str, str]]:
    """Compile the build phase; returns (spec, worker -> probe region)."""
    machine = cost_model.machine
    calibration = cost_model.calibration
    span_attrs = {"strategy": strategy}
    if strategy == "het":
        region = _shared_table_region(machine, workers)
        contended = len(workers) > 1
        loads = {
            worker: WorkerLoad(
                _coop_build_profile(
                    machine,
                    calibration,
                    worker,
                    r,
                    region,
                    table_bytes,
                    entry_bytes,
                    contended,
                ),
                float(r.modeled_tuples),
            )
            for worker in workers
        }
        spec = concurrent_phase(
            "build",
            loads,
            shared_units=float(r.modeled_tuples),
            claims=tuple(workers),
            span_worker=",".join(workers),
            span_units=float(r.modeled_tuples),
            span_attrs=span_attrs,
        )
        return spec, {worker: region for worker in workers}

    # gpu+het: the GPU builds locally, then broadcasts the table.
    # Every worker holds a private copy, so the table must fit the
    # smallest GPU memory (this is the "small build-side relations"
    # special case of Section 6.2).
    gpus = [w for w in workers if _is_gpu(machine, w)]
    if not gpus:
        raise LogicalError("gpu+het requires at least one GPU worker")
    for worker in gpus:
        capacity = machine.processor(worker).local_memory.capacity
        if table_bytes > capacity:
            raise OutOfMemoryError(
                f"gpu+het replicates the {table_bytes}-byte hash table "
                f"to every processor, but it exceeds {worker}'s memory; "
                "use the Het strategy for large build sides"
            )
    builder = gpus[0]
    build_region = _local_table_region(machine, builder)
    profile = _coop_build_profile(
        machine,
        calibration,
        builder,
        r,
        build_region,
        table_bytes,
        entry_bytes,
        contended=False,
    )
    # Synchronous copy of the finished table to each other worker's
    # local memory over the builder's link (Figure 9b, step 2).
    others = [w for w in workers if w != builder]
    copy_targets = {_local_table_region(machine, w) for w in others}
    surcharges: Tuple[Surcharge, ...] = ()
    if copy_targets:
        link = machine.gpu_link(builder)
        copy_bw = link.spec.seq_bw * calibration.ht_copy_bandwidth_factor
        copy_seconds = len(copy_targets) * table_bytes / copy_bw
        surcharges = (
            Surcharge(copy_seconds, f"link:{link.name}", "ht broadcast"),
        )
    spec = priced_phase(
        "build",
        profile,
        surcharges=surcharges,
        claims=tuple(workers),
        span_worker=",".join(workers),
        span_units=float(r.modeled_tuples),
        span_attrs=span_attrs,
    )
    return spec, {w: _local_table_region(machine, w) for w in workers}


def coop_probe_phase(
    cost_model: CostModel,
    strategy: str,
    s: Relation,
    workers: Tuple[str, ...],
    regions: Dict[str, str],
    table_bytes: float,
    key_bytes: float,
    accesses_per_tuple: float,
    lines_loaded: float,
    hot_set: Optional[HotSetProfile],
    morsel_tuples: int,
    gpu_batch_morsels: Optional[int],
    matches: int = 0,
) -> PhaseSpec:
    """Compile the morsel-dispatched cooperative probe phase."""
    machine = cost_model.machine
    calibration = cost_model.calibration
    loads = {}
    morsel_workers = {}
    for worker in workers:
        profile = _coop_probe_profile(
            machine,
            calibration,
            worker,
            s,
            regions[worker],
            table_bytes,
            key_bytes,
            accesses_per_tuple,
            lines_loaded,
            hot_set,
        )
        loads[worker] = WorkerLoad(profile, float(s.modeled_tuples))
        if _is_gpu(machine, worker):
            morsel_workers[worker] = MorselWorker(
                dispatch_latency=calibration.gpu_batch_dispatch_latency,
                batch_morsels=gpu_batch_morsels,
            )
        else:
            morsel_workers[worker] = MorselWorker(
                dispatch_latency=calibration.cpu_morsel_dispatch_latency,
                batch_morsels=1,
            )
    return morsel_phase(
        "probe",
        loads,
        shared_units=float(s.modeled_tuples),
        morsel_tuples=morsel_tuples,
        morsel_workers=morsel_workers,
        deps=("build",),
        claims=tuple(workers),
        span_worker=",".join(workers),
        span_units=float(s.modeled_tuples),
        span_attrs={"strategy": strategy},
        annotations={"matches": matches},
    )


def coop_plan(
    cost_model: CostModel,
    config: PhysicalConfig,
    r: Relation,
    s: Relation,
    stats: JoinStats,
) -> Plan:
    """Compile the cooperative build -> morsel-probe DAG."""
    table_bytes = stats.table.modeled_bytes
    build_spec, regions = coop_build_phase(
        cost_model,
        config.strategy,
        r,
        config.workers,
        table_bytes,
        stats.table.entry_bytes,
    )
    probe_spec = coop_probe_phase(
        cost_model,
        config.strategy,
        s,
        config.workers,
        regions,
        table_bytes,
        stats.table.key_itemsize,
        stats.table.accesses_per_lookup,
        stats.lines_loaded,
        stats.hot_set,
        config.morsel_tuples,
        config.gpu_batch_morsels,
        matches=stats.matches,
    )
    return Plan([build_spec, probe_spec], label=f"coop[{config.strategy}]")


# ----------------------------------------------------------------------
# Star (multi-way) join lowering
# ----------------------------------------------------------------------
def star_build_phase(
    cost_model: CostModel,
    dimensions: Sequence[Tuple[Relation, str]],
    workers: Sequence[str],
) -> Tuple[PhaseSpec, Dict[str, str]]:
    """Parallel builds (round-robin over the workers).

    Each dimension's build is one load in a barrier-mode concurrent
    phase (the phase ends when the slowest builder finishes).
    ``dimensions`` is ``(relation, fact_key)`` pairs in probe order;
    returns (spec, fact_key -> builder).
    """
    machine = cost_model.machine
    calibration = cost_model.calibration
    builder_of: Dict[str, str] = {}
    loads: Dict[str, WorkerLoad] = {}
    for i, (rel, fact_key) in enumerate(dimensions):
        builder = workers[i % len(workers)]
        builder_of[fact_key] = builder
        table_bytes = rel.modeled_tuples * rel.tuple_bytes
        is_gpu = _is_gpu(machine, builder)
        accesses = rel.modeled_tuples * (1.0 if is_gpu else 2.0)
        local = machine.processor(builder).local_memory.name
        profile = AccessProfile(
            streams=[
                seq_stream(builder, rel.location, rel.modeled_bytes, "read dim"),
                atomic_stream(
                    builder, local, accesses, rel.tuple_bytes,
                    working_set_bytes=table_bytes, label="ht insert",
                ),
            ],
            compute_tuples=rel.modeled_tuples
            * calibration.join_work_per_tuple["gpu" if is_gpu else "cpu"],
            label=f"build[{fact_key}]",
            processor=builder,
        )
        key = f"{builder}#{fact_key}"
        loads[key] = WorkerLoad(profile, float(rel.modeled_tuples))
    spec = concurrent_phase(
        "build",
        loads,
        claims=tuple(workers),
        span_worker=",".join(workers),
    )
    return spec, builder_of


def star_broadcast_phase(
    cost_model: CostModel,
    dimensions: Sequence[Tuple[Relation, str]],
    workers: Sequence[str],
    builder_of: Dict[str, str],
) -> PhaseSpec:
    """Broadcast every finished table to every *other* worker over
    the builder's link (a fixed, sequential copy cost)."""
    machine = cost_model.machine
    calibration = cost_model.calibration
    broadcast = 0.0
    occupancy: Dict[str, float] = {}
    for rel, fact_key in dimensions:
        builder = builder_of[fact_key]
        table_bytes = rel.modeled_tuples * rel.tuple_bytes
        others = len(workers) - 1
        if others == 0:
            continue
        if _is_gpu(machine, builder):
            link = machine.gpu_link(builder)
            link_bw = link.spec.seq_bw
            resource = f"link:{link.name}"
        else:
            memory = machine.processor(builder).local_memory
            link_bw = memory.spec.seq_bw
            resource = f"mem:{memory.name}"
        seconds = others * table_bytes / (
            link_bw * calibration.ht_copy_bandwidth_factor
        )
        broadcast += seconds
        occupancy[resource] = occupancy.get(resource, 0.0) + seconds
    cost = PhaseCost(
        seconds=broadcast,
        bottleneck=(
            max(occupancy, key=lambda res: occupancy[res])
            if occupancy
            else "(none)"
        ),
        occupancy=occupancy,
        label="broadcast",
    )
    return fixed_phase(
        "broadcast",
        cost,
        deps=("build",),
        claims=tuple(workers),
        span_worker=",".join(workers),
    )


def star_probe_phase(
    cost_model: CostModel,
    fact_column_bytes: float,
    fact_location: str,
    modeled_fact: int,
    dimensions: Sequence[Tuple[Relation, str]],
    workers: Sequence[str],
    survival_per_dim: Sequence[float],
) -> PhaseSpec:
    """Compile the all-workers conjunctive probe (pool mode)."""
    machine = cost_model.machine
    calibration = cost_model.calibration
    loads: Dict[str, WorkerLoad] = {}
    for worker in workers:
        is_gpu = _is_gpu(machine, worker)
        local = machine.processor(worker).local_memory.name
        streams = [
            seq_stream(
                worker,
                fact_location,
                modeled_fact * fact_column_bytes,
                "read fact",
            )
        ]
        alive = 1.0
        for (rel, _fact_key), survival in zip(dimensions, survival_per_dim):
            table_bytes = rel.modeled_tuples * rel.tuple_bytes
            # Short-circuit: only tuples still alive probe the next
            # dimension; each probe is key + (on match) value.
            accesses = modeled_fact * alive * (1.0 + survival)
            streams.append(
                random_stream(
                    worker, local, accesses, rel.key_bytes,
                    working_set_bytes=table_bytes, label="dim probe",
                )
            )
            alive *= survival
        work = calibration.join_work_per_tuple["gpu" if is_gpu else "cpu"]
        profile = AccessProfile(
            streams=streams,
            compute_tuples=modeled_fact * work * len(dimensions),
            label=f"probe[{worker}]",
            processor=worker,
        )
        loads[worker] = WorkerLoad(profile, float(modeled_fact))
    return concurrent_phase(
        "probe",
        loads,
        shared_units=float(modeled_fact),
        deps=("broadcast",),
        claims=tuple(workers),
        span_worker=",".join(workers),
        span_units=float(modeled_fact),
    )


def star_plan(
    cost_model: CostModel,
    config: PhysicalConfig,
    fact_column_bytes: float,
    fact_location: str,
    modeled_fact: int,
    dimensions: Sequence[Tuple[Relation, str]],
    stats: StarStats,
    label: str = "star",
) -> Plan:
    """Compile the star build -> broadcast -> probe DAG."""
    build_spec, builder_of = star_build_phase(
        cost_model, dimensions, config.workers
    )
    broadcast_spec = star_broadcast_phase(
        cost_model, dimensions, config.workers, builder_of
    )
    probe_spec = star_probe_phase(
        cost_model,
        fact_column_bytes,
        fact_location,
        modeled_fact,
        dimensions,
        config.workers,
        stats.survival_per_dim,
    )
    return Plan([build_spec, broadcast_spec, probe_spec], label=label)


# ----------------------------------------------------------------------
# Scan (Q6 / selection) lowering
# ----------------------------------------------------------------------
def scan_phase(
    cost_model: CostModel,
    transfer_method: str,
    variant: str,
    processor: str,
    modeled_rows: int,
    col_bytes: Sequence[int],
    fractions: Sequence[float],
    location: str,
    kind: Optional[MemoryKind],
    read_label: str,
    profile_label: str,
) -> PhaseSpec:
    """Compile a fused scan/filter/aggregate into one priced phase."""
    proc = cost_model.machine.processor(processor)
    is_gpu = isinstance(proc, Gpu)
    total_bytes = modeled_rows * sum(
        width * frac for width, frac in zip(col_bytes, fractions)
    )
    spec = ingest(
        cost_model,
        transfer_method,
        processor,
        location,
        total_bytes,
        read_label,
        kind=kind,
    )
    work = cost_model.calibration.scan_work_per_tuple[
        "gpu" if is_gpu else "cpu"
    ]
    if variant == "branching" and not is_gpu:
        # Branchy scalar code cannot use SIMD predication; the CPU
        # pays more per-row work but the same skipping benefit.
        work *= 2.0
    overhead = proc.kernel_launch_latency if is_gpu else 0.0
    profile = AccessProfile(
        streams=spec.streams,
        compute_tuples=modeled_rows * work,
        fixed_overhead=overhead,
        label=profile_label,
        processor=processor,
    )
    return priced_phase(
        "scan",
        profile,
        chunked=spec.chunked,
        claims=(processor,),
        span_worker=processor,
        span_units=float(modeled_rows),
        span_attrs={"variant": variant},
    )


def scan_plan(
    cost_model: CostModel,
    config: PhysicalConfig,
    table: Scan,
    stats: ScanStats,
    label: str,
) -> Plan:
    """One-phase plan: the fused scan/filter/aggregate kernel."""
    return Plan(
        [
            scan_phase(
                cost_model,
                config.transfer_method,
                config.variant,
                config.processor,
                table.modeled_rows,
                table.column_bytes(),
                stats.column_line_fractions,
                table.location,
                table.kind,
                read_label=f"scan {table.name}",
                profile_label=f"{label}-{config.variant}",
            )
        ],
        label=f"{label}[{config.variant}]",
    )


# ----------------------------------------------------------------------
# Compiler entry point
# ----------------------------------------------------------------------
def compile_query(
    query,
    config: PhysicalConfig,
    cost_model: CostModel,
    stats,
) -> Plan:
    """Lower a logical plan to a priced :class:`repro.plan.Plan` DAG.

    ``stats`` must match the shape: :class:`ScanStats` for
    scan/filter/aggregate pipelines, :class:`JoinStats` for one hash
    join, :class:`StarStats` for multi-join star shapes.
    """
    shape = classify(query)
    if isinstance(shape, ScanShape):
        if not isinstance(stats, ScanStats):
            raise LogicalError(
                f"scan shapes need ScanStats, got {type(stats).__name__}"
            )
        label = config.label or shape.scan.name
        return scan_plan(cost_model, config, shape.scan, stats, label)
    if isinstance(shape, JoinShape):
        if isinstance(stats, StarStats):
            # A one-dimension star query: price the parallel-build /
            # broadcast / pool-probe pipeline (Section 6.2's multi-way
            # extension) instead of the Section-6 morsel-dispatch probe.
            if config.strategy == "single":
                raise LogicalError(
                    "star statistics lower to the cooperative "
                    "build/broadcast/probe pipeline; use strategy "
                    "'gpu+het' with a workers tuple"
                )
            if shape.build.relation is None:
                raise LogicalError(
                    "star lowering needs Relation-backed dimension scans"
                )
            return star_plan(
                cost_model,
                config,
                float(sum(shape.probe.column_bytes())),
                shape.probe.location,
                shape.probe.modeled_rows,
                [(shape.build.relation, shape.join.probe_key)],
                stats,
                label=config.label or "star",
            )
        if not isinstance(stats, JoinStats):
            raise LogicalError(
                f"join shapes need JoinStats, got {type(stats).__name__}"
            )
        r = shape.build.relation
        s = shape.probe.relation
        if r is None or s is None:
            raise LogicalError(
                "join lowering needs Relation-backed scans on both sides"
            )
        if config.strategy == "single":
            return join_plan(
                cost_model, config, r, s, stats, label=config.label or "nopa"
            )
        return coop_plan(cost_model, config, r, s, stats)
    assert isinstance(shape, StarShape)
    if not isinstance(stats, StarStats):
        raise LogicalError(
            f"star shapes need StarStats, got {type(stats).__name__}"
        )
    if config.strategy == "single":
        raise LogicalError(
            "star shapes lower to the cooperative build/broadcast/probe "
            "pipeline; use strategy 'gpu+het' with a workers tuple"
        )
    dimensions = shape.dimensions
    if config.join_order:
        if sorted(config.join_order) != list(range(len(dimensions))):
            raise LogicalError(
                f"join_order {config.join_order} is not a permutation of "
                f"the {len(dimensions)} dimensions"
            )
        dimensions = tuple(dimensions[i] for i in config.join_order)
    dims: List[Tuple[Relation, str]] = []
    for dim_scan, fact_key, _selectivity in dimensions:
        if dim_scan.relation is None:
            raise LogicalError(
                "star lowering needs Relation-backed dimension scans"
            )
        dims.append((dim_scan.relation, fact_key))
    fact_column_bytes = float(sum(shape.fact.column_bytes()))
    return star_plan(
        cost_model,
        config,
        fact_column_bytes,
        shape.fact.location,
        shape.fact.modeled_rows,
        dims,
        stats,
        label=config.label or "star",
    )
