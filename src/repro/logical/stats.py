"""Runtime statistics that parameterize lowering and pricing.

The lowering compiler prices traffic from *statistics*: hash-table
access counters, payload-line fractions, per-column line fractions,
dimension survival rates.  They come from two sources:

* **measured** — the facade operators execute functionally first and
  capture the exact counters (:meth:`TableProfile.from_table` etc.);
  pricing from measured statistics is what the golden-equivalence
  harness pins bit-for-bit;
* **estimated** — the optimizer prices candidate plans *before* any
  execution, so it derives the same statistics analytically from
  modeled cardinalities and selectivity hints (``estimate_*``).  The
  estimation error is exactly the optimizer's predicted-vs-actual gap,
  tracked as a first-class benchmark (``repro.bench.optimizer_gap``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.hardware.cache import HotSetProfile

#: coherence/cache-line granularity for payload line skipping; must
#: match ``repro.core.join.nopa.LINE_BYTES`` (asserted by tests).
LINE_BYTES = 128

#: analytic hash-scheme constants for pre-execution estimation: average
#: slot inspections per insert and per lookup at the library's default
#: geometries.  Perfect hashing is exact (dense primary-key domain);
#: the open-addressing and chaining numbers are rough expected values
#: at ~50% fill, good enough to rank candidates.
SCHEME_ACCESS_FACTORS = {
    "perfect": (1.0, 1.0),
    "open_addressing": (1.5, 1.5),
    "chaining": (1.5, 1.5),
}


@dataclass(frozen=True)
class TableProfile:
    """What pricing needs to know about one hash table.

    The probe counters (``lookups``, ``lookup_probes``,
    ``value_reads``) are totals at *executed* scale for measured
    profiles (the lowering rescales them by the probe relation's
    ``model_factor``, exactly as the operators always did) and totals
    at *modeled* scale for estimated profiles (which therefore carry
    ``model_factor == 1``).
    """

    entry_bytes: int
    key_itemsize: int
    value_itemsize: int
    insert_factor: float
    lookups: float
    lookup_probes: float
    value_reads: float
    modeled_bytes: float

    @classmethod
    def from_table(cls, table, modeled_build_tuples: int) -> "TableProfile":
        """Measured profile of a built-and-probed hash table."""
        return cls(
            entry_bytes=table.entry_bytes,
            key_itemsize=table.keys.dtype.itemsize,
            value_itemsize=table.values.dtype.itemsize,
            insert_factor=table.stats.insert_factor,
            lookups=table.stats.lookups,
            lookup_probes=table.stats.lookup_probes,
            value_reads=table.stats.value_reads,
            modeled_bytes=table.modeled_bytes(modeled_build_tuples),
        )

    @classmethod
    def estimate(
        cls,
        modeled_build_tuples: int,
        modeled_probe_tuples: int,
        key_bytes: int,
        payload_bytes: int,
        scheme: str = "perfect",
        selectivity: float = 1.0,
    ) -> "TableProfile":
        """Analytic profile from modeled cardinalities (no execution)."""
        if scheme not in SCHEME_ACCESS_FACTORS:
            raise ValueError(
                f"no estimation constants for hash scheme {scheme!r}"
            )
        insert_factor, probes_per_lookup = SCHEME_ACCESS_FACTORS[scheme]
        entry_bytes = key_bytes + payload_bytes
        return cls(
            entry_bytes=entry_bytes,
            key_itemsize=key_bytes,
            value_itemsize=payload_bytes,
            insert_factor=insert_factor,
            lookups=float(modeled_probe_tuples),
            lookup_probes=modeled_probe_tuples * probes_per_lookup,
            value_reads=modeled_probe_tuples * selectivity,
            modeled_bytes=float(modeled_build_tuples) * entry_bytes,
        )

    @property
    def accesses_per_lookup(self) -> float:
        """Key + value accesses per probe tuple (the Coop/Het metric)."""
        return (self.lookup_probes + self.value_reads) / max(1, self.lookups)


@dataclass(frozen=True)
class JoinStats:
    """Statistics for a two-relation hash-join shape."""

    table: TableProfile
    #: payload-column line-load fraction of the probe side (Section
    #: 7.2.9); 1.0 when every line holds at least one match.
    lines_loaded: float
    matches: int = 0
    #: multiplier from the probe counters' scale to modeled scale
    #: (``s.model_factor`` for measured stats, 1.0 for estimates).
    model_factor: float = 1.0
    hot_set: Optional[HotSetProfile] = None


@dataclass(frozen=True)
class ScanStats:
    """Statistics for a scan/filter/aggregate (Q6) shape."""

    #: per-column line-load fractions, in scan schema order.
    column_line_fractions: Tuple[float, ...]


@dataclass(frozen=True)
class StarStats:
    """Statistics for a star/snowflake multi-join shape."""

    #: fraction of still-alive fact tuples surviving each dimension
    #: probe, in probe order.
    survival_per_dim: Tuple[float, ...] = field(default_factory=tuple)


# ----------------------------------------------------------------------
# Estimators (the optimizer's pre-execution statistics)
# ----------------------------------------------------------------------
def estimate_line_fraction(
    selectivity: float, value_bytes: int, clustered: bool = False
) -> float:
    """Fraction of value cache lines holding at least one match.

    Uniformly scattered matches hit a line with probability
    ``1 - (1 - s)^k`` for ``k`` values per line; clustered matches
    occupy contiguous lines, so the fraction collapses to ``s``.
    """
    if not 0.0 <= selectivity <= 1.0:
        raise ValueError(f"selectivity must be in [0, 1]: {selectivity}")
    if clustered:
        return selectivity
    per_line = max(1, LINE_BYTES // max(1, value_bytes))
    return 1.0 - (1.0 - selectivity) ** per_line


def estimate_join_stats(
    modeled_build_tuples: int,
    modeled_probe_tuples: int,
    key_bytes: int,
    payload_bytes: int,
    scheme: str = "perfect",
    selectivity: float = 1.0,
    hot_set: Optional[HotSetProfile] = None,
) -> JoinStats:
    """Analytic :class:`JoinStats` from cardinalities and a match-rate
    hint (no functional execution)."""
    table = TableProfile.estimate(
        modeled_build_tuples,
        modeled_probe_tuples,
        key_bytes,
        payload_bytes,
        scheme=scheme,
        selectivity=selectivity,
    )
    return JoinStats(
        table=table,
        lines_loaded=estimate_line_fraction(selectivity, payload_bytes),
        matches=int(modeled_probe_tuples * selectivity),
        model_factor=1.0,
        hot_set=hot_set,
    )


def estimate_scan_stats(
    variant: str,
    predicates: Sequence,
    column_count: int,
    value_bytes: Sequence[int],
    residual_load: float,
) -> ScanStats:
    """Analytic per-column line fractions for a selection scan.

    Mirrors the measured-path arithmetic of
    :func:`repro.core.ops.selection.selection_line_fractions` plus the
    branching residual: column ``i`` is loaded only for lines where all
    predicates over columns ``< i`` survive.  Predicates without a
    ``selectivity`` hint are assumed non-selective (fraction 1.0).
    """
    if variant == "predicated":
        return ScanStats(tuple(1.0 for _ in range(column_count)))
    fractions = [1.0]
    prefix = 1.0
    clustered_prefix = True
    for i in range(1, column_count):
        if i - 1 < len(predicates):
            pred = predicates[i - 1]
            s = pred.selectivity if pred.selectivity is not None else 1.0
            clustered_prefix = clustered_prefix and pred.clustered
            prefix *= s
        width = value_bytes[i] if i < len(value_bytes) else 4
        fraction = estimate_line_fraction(
            prefix, width, clustered=clustered_prefix
        )
        fractions.append(residual_load + (1.0 - residual_load) * fraction)
    return ScanStats(tuple(fractions))


def estimate_star_stats(
    survival_hints: Sequence[Optional[float]],
) -> StarStats:
    """Analytic survival fractions from per-dimension match-rate hints
    (1.0 — no filtering — when a hint is missing)."""
    return StarStats(
        tuple(1.0 if s is None else float(s) for s in survival_hints)
    )
