"""Cache models used by the cost model.

Two effects from the paper are captured here:

1. **Working-set caching** (Figure 13, workload B): a hash table that fits
   into the GPU L2 (or CPU L3) is served at cache bandwidth instead of
   memory bandwidth.  The V100 L2 is *memory-side* and cannot cache remote
   data (Figure 14, workload B), which the ``caches_remote`` flag encodes.

2. **Hot-set caching under skew** (Figure 19): a Zipf-distributed probe
   stream concentrates accesses on few hash-table entries; the fraction of
   accesses that hit the cacheable hot set is served locally.  The
   :class:`HotSetProfile` describes an access distribution as "the top-k
   distinct targets receive mass(k) of all accesses".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class HotSetProfile:
    """Access-frequency profile over distinct targets of random accesses.

    ``mass_of_top(k)`` returns the fraction of all accesses that land on
    the ``k`` most frequently accessed distinct targets.  For a uniform
    distribution over ``n`` targets that is ``k / n``; for Zipf it is the
    partial sum of the (normalized) Zipf pmf, which the workload layer
    computes empirically from generated keys.

    ``k`` may be fractional (cache-capacity queries divide a byte budget
    by an entry size): every profile linearly interpolates between
    integer ``k``s.
    """

    distinct_targets: int
    mass_of_top: Callable[[float], float]

    @staticmethod
    def uniform(distinct_targets: int) -> "HotSetProfile":
        if distinct_targets <= 0:
            raise ValueError("need at least one target")

        def mass(k: float) -> float:
            return min(1.0, max(0.0, k / distinct_targets))

        return HotSetProfile(distinct_targets, mass)

    @staticmethod
    def zipf(distinct_targets: int, exponent: float) -> "HotSetProfile":
        """Analytic Zipf profile: pmf(i) ~ 1 / i**exponent.

        ``exponent == 0`` degenerates to uniform.  The partial sums use the
        generalized-harmonic approximation, accurate to <1% for the sizes
        used by the benchmarks.
        """
        if distinct_targets <= 0:
            raise ValueError("need at least one target")
        if exponent < 0:
            raise ValueError("Zipf exponent must be non-negative")
        if exponent == 0:
            return HotSetProfile.uniform(distinct_targets)

        def harmonic(k: int) -> float:
            # Generalized harmonic number H_{k,s} via Euler-Maclaurin.
            if k <= 0:
                return 0.0
            if k <= 64:
                return sum(1.0 / i**exponent for i in range(1, k + 1))
            head = sum(1.0 / i**exponent for i in range(1, 65))
            if abs(exponent - 1.0) < 1e-12:
                tail = math.log(k / 64.0)
            else:
                tail = (k ** (1 - exponent) - 64 ** (1 - exponent)) / (1 - exponent)
            return head + tail

        total = harmonic(distinct_targets)

        def mass(k: float) -> float:
            k = max(0.0, min(float(k), float(distinct_targets)))
            if k == 0:
                return 0.0
            lower = int(k)
            fraction = k - lower
            value = harmonic(lower)
            if fraction:
                value += fraction * (harmonic(lower + 1) - harmonic(lower))
            return value / total

        return HotSetProfile(distinct_targets, mass)


class CacheModel:
    """Hit-rate estimation for one cache level.

    This is an analytical model, not a line-by-line simulation: for the
    streaming/probing workloads in the paper, hit rates are determined by
    whether the working set (or the skewed hot set) fits, which the model
    evaluates in O(1).
    """

    def __init__(self, spec, capacity_override: Optional[int] = None) -> None:
        self.spec = spec
        self.capacity = capacity_override if capacity_override else spec.capacity

    @property
    def line_bytes(self) -> int:
        return self.spec.line_bytes

    @property
    def bandwidth(self) -> float:
        return self.spec.bandwidth

    def can_cache(self, data_is_remote: bool) -> bool:
        """Whether this cache may hold the data at all.

        The V100 L2 sits on the memory side of the crossbar and only caches
        lines homed in local GPU memory.
        """
        if data_is_remote and not self.spec.caches_remote:
            return False
        return True

    def hit_rate(
        self,
        working_set_bytes: float,
        data_is_remote: bool = False,
        hot_set: Optional[HotSetProfile] = None,
        entry_bytes: float = 16.0,
    ) -> float:
        """Estimated hit rate of random accesses into ``working_set_bytes``.

        With a ``hot_set`` profile, the cache retains the hottest entries
        (LRU converges to this for heavy-tailed access streams) and the hit
        rate is the access mass of as many entries as fit.  Without one,
        the working set either fits (hit rate ~1 after warm-up) or random
        accesses sample it uniformly and the hit rate is capacity/set.
        """
        if working_set_bytes < 0:
            raise ValueError("working set must be non-negative")
        if not self.can_cache(data_is_remote):
            return 0.0
        if working_set_bytes == 0:
            return 1.0
        if hot_set is not None:
            # One cached entry occupies a full line (conservative).
            lines = int(self.capacity // self.spec.line_bytes)
            entries_per_line = max(1, int(self.spec.line_bytes // entry_bytes))
            cacheable_entries = lines * entries_per_line
            return hot_set.mass_of_top(cacheable_entries)
        if working_set_bytes <= self.capacity:
            return 1.0
        return self.capacity / working_set_bytes
