"""Simulated hardware substrate: processors, memories, interconnects.

This package models the two evaluation platforms of the paper:

* an IBM AC922-like machine — 2x POWER9 CPUs linked by X-Bus, each with a
  V100-SXM2 GPU attached over 3x NVLink 2.0 (cache-coherent), and
* a dual-socket Intel Xeon machine linked by UPI with one V100-PCIE GPU
  behind 16x PCI-e 3.0 (not cache-coherent).

All performance primitives (bandwidths, latencies, packet overheads) come
from the paper's Figures 1-3 and Section 2.2, and are recorded on the spec
dataclasses in :mod:`repro.hardware.specs`.
"""

from repro.hardware.specs import (
    CacheSpec,
    CpuSpec,
    GpuSpec,
    LinkSpec,
    MemorySpec,
    INTERCONNECTS,
    MEMORIES,
    NVLINK2,
    PCIE3,
    UPI,
    XBUS,
    DDR4_POWER9,
    DDR4_XEON,
    HBM2_V100,
    POWER9,
    XEON_6126,
    V100_SXM2,
    V100_PCIE,
)
from repro.hardware.interconnect import Interconnect
from repro.hardware.memory import MemoryKind, MemoryRegion
from repro.hardware.processor import Cpu, Gpu, Processor, ProcessorKind
from repro.hardware.cache import CacheModel, HotSetProfile
from repro.hardware.topology import Machine, ibm_ac922, intel_xeon_v100

__all__ = [
    "CacheSpec",
    "CpuSpec",
    "GpuSpec",
    "LinkSpec",
    "MemorySpec",
    "INTERCONNECTS",
    "MEMORIES",
    "NVLINK2",
    "PCIE3",
    "UPI",
    "XBUS",
    "DDR4_POWER9",
    "DDR4_XEON",
    "HBM2_V100",
    "POWER9",
    "XEON_6126",
    "V100_SXM2",
    "V100_PCIE",
    "Interconnect",
    "MemoryKind",
    "MemoryRegion",
    "Cpu",
    "Gpu",
    "Processor",
    "ProcessorKind",
    "CacheModel",
    "HotSetProfile",
    "Machine",
    "ibm_ac922",
    "intel_xeon_v100",
]
