"""NUMA distance queries over a machine topology.

The paper's allocation policies are NUMA-aware (Figure 8 spills to the
*nearest* CPU, Section 5.3 recursively searches next-nearest nodes;
Section 3 notes the OS optimizes "NUMA locality through page
migration").  This module exposes the distance structure behind those
policies: hop counts and effective bandwidths between every processor
and every memory region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.costmodel.model import CostModel
from repro.hardware.topology import Machine


@dataclass(frozen=True)
class NumaDistance:
    """Distance from one processor to one memory region."""

    processor: str
    memory: str
    hops: int
    bandwidth: float  # end-to-end sequential bytes/s
    latency: float  # end-to-end seconds


def distance_matrix(machine: Machine) -> Dict[Tuple[str, str], NumaDistance]:
    """All (processor, memory) distances of a machine."""
    cost_model = CostModel(machine)
    matrix: Dict[Tuple[str, str], NumaDistance] = {}
    for proc_name in machine.processors:
        for mem_name in machine.memories:
            matrix[(proc_name, mem_name)] = NumaDistance(
                processor=proc_name,
                memory=mem_name,
                hops=machine.hops(proc_name, mem_name),
                bandwidth=cost_model.sequential_bandwidth(proc_name, mem_name),
                latency=cost_model.path_latency(proc_name, mem_name),
            )
    return matrix


def memories_by_distance(machine: Machine, processor: str) -> List[NumaDistance]:
    """All memory regions ordered by (hops, latency) from a processor."""
    matrix = distance_matrix(machine)
    distances = [
        d for (proc, _), d in matrix.items() if proc == processor
    ]
    distances.sort(key=lambda d: (d.hops, d.latency, d.memory))
    return distances


def render_matrix(machine: Machine) -> str:
    """ASCII rendering: hops for every (processor, memory) pair."""
    from repro.utils.tables import Table

    memories = sorted(machine.memories)
    table = Table(
        ["processor \\ memory"] + memories,
        title=f"NUMA hop distances — {machine.name}",
    )
    matrix = distance_matrix(machine)
    for proc in sorted(machine.processors):
        table.add_row(
            [proc] + [str(matrix[(proc, mem)].hops) for mem in memories]
        )
    return table.render()
