"""Behavioural model of a point-to-point interconnect link.

A :class:`LinkSpec` is a data sheet; an :class:`Interconnect` is one
*instance* of a link in a machine (e.g. "the 3x NVLink 2.0 bundle between
CPU0 and GPU0").  It computes effective bandwidths for a given access
pattern and access size, applying the packet-overhead model of Section 2.2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.specs import LinkSpec


@dataclass(frozen=True)
class Interconnect:
    """One physical link instance between two endpoints of a machine.

    Endpoints are identified by the names of the components they join
    (processor or memory names); the topology owns routing.
    """

    spec: LinkSpec
    endpoint_a: str
    endpoint_b: str

    @property
    def name(self) -> str:
        return f"{self.spec.name}[{self.endpoint_a}<->{self.endpoint_b}]"

    def connects(self, a: str, b: str) -> bool:
        """Whether this link joins components ``a`` and ``b`` (any order)."""
        return {self.endpoint_a, self.endpoint_b} == {a, b}

    def sequential_bandwidth(self) -> float:
        """Measured streaming bandwidth in bytes/s (one direction)."""
        return self.spec.seq_bw

    def duplex_bandwidth(self) -> float:
        """Aggregate bandwidth with traffic in both directions.

        Full-duplex links (both PCI-e and NVLink) carry each direction at
        full speed; protocol acknowledgements cost a few percent, which is
        already folded into the measured per-direction number.
        """
        if self.spec.duplex:
            return 2.0 * self.spec.seq_bw
        return self.spec.seq_bw

    def random_access_rate(self, parallelism: float) -> float:
        """Sustainable independent random accesses per second.

        Random accesses are latency-bound: an initiator with ``parallelism``
        outstanding requests achieves ``parallelism / latency`` accesses/s,
        capped by the link's measured random-access capability (which
        reflects the NPU / root-complex queue depths).
        """
        if parallelism <= 0:
            raise ValueError(f"parallelism must be positive, got {parallelism}")
        latency_bound = parallelism / self.spec.latency
        return min(latency_bound, self.spec.random_access_rate)

    def random_bandwidth(self, access_bytes: int, parallelism: float) -> float:
        """Useful bytes/s for random accesses of ``access_bytes`` each.

        An access of up to one coherence packet occupies a single request
        slot, so byte throughput grows with access size until payload
        efficiency and the sequential bandwidth cap take over.
        """
        rate = self.random_access_rate(parallelism)
        per_access = min(access_bytes, self.spec.payload_bytes)
        raw = rate * per_access
        return min(raw, self.spec.seq_bw * self.spec.packet_efficiency(access_bytes))

    def transfer_time(self, nbytes: float) -> float:
        """Latency + streaming time for one bulk transfer of ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"byte count must be non-negative, got {nbytes}")
        return self.spec.latency + nbytes / self.spec.seq_bw
