"""Memory regions and memory kinds.

A :class:`MemoryRegion` is one physical memory pool in the machine (one
CPU socket's DRAM, or one GPU's HBM2).  Allocations carve capacity out of
regions; the allocator lives in :mod:`repro.memory.allocator`.

The *kind* of an allocation matters for transfer methods (Table 1):
zero-copy requires pinned memory, unified-memory methods require unified
allocations, and only NVLink 2.0's Coherence method can touch pageable
memory directly from the GPU.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.hardware.specs import MemorySpec


class MemoryKind(enum.Enum):
    """Allocation kinds distinguished by CUDA and the paper's Table 1."""

    PAGEABLE = "pageable"
    PINNED = "pinned"
    UNIFIED = "unified"
    DEVICE = "device"

    @property
    def gpu_accessible_over(self) -> frozenset:
        """Which access paths may touch this memory from a *remote* GPU."""
        if self is MemoryKind.PAGEABLE:
            return frozenset({"coherence"})
        if self is MemoryKind.PINNED:
            return frozenset({"coherence", "zero_copy", "dma"})
        if self is MemoryKind.UNIFIED:
            return frozenset({"coherence", "page_migration", "prefetch"})
        return frozenset({"local"})


@dataclass
class MemoryRegion:
    """A physical memory pool owned by one processor.

    Attributes:
        name: unique name within the machine, e.g. ``"cpu0-mem"``.
        spec: the memory technology data sheet.
        owner: name of the processor this memory is local to.
        allocated: bytes currently allocated (maintained by the allocator).
    """

    name: str
    spec: MemorySpec
    owner: str
    allocated: int = 0

    @property
    def capacity(self) -> int:
        return self.spec.capacity

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.allocated

    def reserve(self, nbytes: int) -> None:
        """Take ``nbytes`` out of the region; raises if it does not fit."""
        if nbytes < 0:
            raise ValueError(f"cannot reserve negative bytes: {nbytes}")
        if nbytes > self.free_bytes:
            raise MemoryError(
                f"{self.name}: cannot reserve {nbytes} bytes "
                f"({self.free_bytes} free of {self.capacity})"
            )
        self.allocated += nbytes

    def release(self, nbytes: int) -> None:
        """Return ``nbytes`` to the region."""
        if nbytes < 0:
            raise ValueError(f"cannot release negative bytes: {nbytes}")
        if nbytes > self.allocated:
            raise ValueError(
                f"{self.name}: releasing {nbytes} bytes but only "
                f"{self.allocated} are allocated"
            )
        self.allocated -= nbytes

    def __str__(self) -> str:
        return f"MemoryRegion({self.name}, {self.spec.name}, owner={self.owner})"
