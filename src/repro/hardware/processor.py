"""Processor models: CPUs and GPUs.

Processors are the initiators of memory traffic.  The attributes that the
cost model consumes are:

* the local memory region,
* the memory-level parallelism (outstanding requests) the processor can
  sustain, which bounds latency-bound random access rates, and
* compute throughput for cache-resident phases (hash computation, branch
  evaluation), so that compute can become the bottleneck once bandwidth
  ceases to be (Discussion point (2)).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.hardware.cache import CacheModel
from repro.hardware.memory import MemoryRegion
from repro.hardware.specs import CpuSpec, GpuSpec


class ProcessorKind(enum.Enum):
    CPU = "cpu"
    GPU = "gpu"


@dataclass
class Processor:
    """Common base for CPUs and GPUs placed in a machine topology."""

    name: str
    kind: ProcessorKind
    local_memory: MemoryRegion

    def memory_parallelism(self) -> float:
        raise NotImplementedError

    def tuple_throughput(self) -> float:
        """Compute-bound tuples/s for hash-join style per-tuple work."""
        raise NotImplementedError


@dataclass
class Cpu(Processor):
    """One CPU socket."""

    spec: CpuSpec = None  # type: ignore[assignment]
    llc: Optional[CacheModel] = None

    def __post_init__(self) -> None:
        if self.spec is None:
            raise ValueError("Cpu requires a CpuSpec")
        if self.kind is not ProcessorKind.CPU:
            raise ValueError(f"Cpu must have kind CPU, got {self.kind}")
        if self.llc is None:
            self.llc = CacheModel(self.spec.llc)

    def memory_parallelism(self) -> float:
        """Outstanding misses across all cores (line-fill buffers)."""
        return self.spec.cores * self.spec.mlp_per_core

    def tuple_throughput(self) -> float:
        return self.spec.cores * self.spec.tuple_rate_per_core

    @property
    def threads(self) -> int:
        return self.spec.threads


@dataclass
class Gpu(Processor):
    """One discrete GPU."""

    spec: GpuSpec = None  # type: ignore[assignment]
    l2: Optional[CacheModel] = None
    l1: Optional[CacheModel] = None

    def __post_init__(self) -> None:
        if self.spec is None:
            raise ValueError("Gpu requires a GpuSpec")
        if self.kind is not ProcessorKind.GPU:
            raise ValueError(f"Gpu must have kind GPU, got {self.kind}")
        if self.l2 is None:
            self.l2 = CacheModel(self.spec.l2)
        if self.l1 is None:
            self.l1 = CacheModel(
                self.spec.l1_per_sm, capacity_override=self.spec.l1_total_capacity
            )

    def memory_parallelism(self) -> float:
        return self.spec.mlp

    def tuple_throughput(self) -> float:
        return self.spec.tuple_rate

    @property
    def kernel_launch_latency(self) -> float:
        return self.spec.kernel_launch_latency

    @property
    def atomic_rate_local(self) -> float:
        return self.spec.atomic_rate_local
