"""Machine topology: processors, memories, and the interconnect graph.

The two canonical machines replicate Figure 4 of the paper:

* :func:`ibm_ac922` — 2x POWER9 linked by X-Bus, each with a V100-SXM2
  behind 3x NVLink 2.0.  Data access paths of increasing hop count:
  GPU0 -> gpu0-mem (0 hops), -> cpu0-mem (1 hop, NVLink), -> cpu1-mem
  (2 hops, NVLink + X-Bus), -> gpu1-mem (3 hops, NVLink + X-Bus + NVLink).
* :func:`intel_xeon_v100` — 2x Xeon linked by UPI with one V100-PCIE
  behind PCI-e 3.0 on socket 0.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.hardware.interconnect import Interconnect
from repro.hardware.memory import MemoryRegion
from repro.hardware.processor import Cpu, Gpu, Processor, ProcessorKind
from repro.hardware.specs import (
    NVLINK2,
    PCIE3,
    POWER9,
    UPI,
    V100_PCIE,
    V100_SXM2,
    XBUS,
    XEON_6126,
    CpuSpec,
    GpuSpec,
    LinkSpec,
)


class TopologyError(ValueError):
    """Raised for malformed machine descriptions or unroutable paths."""


@dataclass
class Machine:
    """A heterogeneous machine: the unit the executor and benches run on."""

    name: str
    processors: Dict[str, Processor] = field(default_factory=dict)
    memories: Dict[str, MemoryRegion] = field(default_factory=dict)
    links: List[Interconnect] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_cpu(self, name: str, spec: CpuSpec, memory_name: str) -> Cpu:
        """Add a CPU socket with its local memory region."""
        memory = MemoryRegion(name=memory_name, spec=spec.memory, owner=name)
        cpu = Cpu(
            name=name, kind=ProcessorKind.CPU, local_memory=memory, spec=spec
        )
        self._register(cpu, memory)
        return cpu

    def add_gpu(self, name: str, spec: GpuSpec, memory_name: str) -> Gpu:
        """Add a GPU with its local memory region."""
        memory = MemoryRegion(name=memory_name, spec=spec.memory, owner=name)
        gpu = Gpu(
            name=name, kind=ProcessorKind.GPU, local_memory=memory, spec=spec
        )
        self._register(gpu, memory)
        return gpu

    def _register(self, processor: Processor, memory: MemoryRegion) -> None:
        if processor.name in self.processors:
            raise TopologyError(f"duplicate processor name: {processor.name}")
        if memory.name in self.memories:
            raise TopologyError(f"duplicate memory name: {memory.name}")
        self.processors[processor.name] = processor
        self.memories[memory.name] = memory

    def connect(self, a: str, b: str, spec: LinkSpec) -> Interconnect:
        """Add a link between two processors (by name)."""
        for end in (a, b):
            if end not in self.processors:
                raise TopologyError(f"unknown processor: {end}")
        link = Interconnect(spec=spec, endpoint_a=a, endpoint_b=b)
        self.links.append(link)
        return link

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def processor(self, name: str) -> Processor:
        """Look a processor up by name."""
        try:
            return self.processors[name]
        except KeyError:
            raise TopologyError(f"unknown processor: {name}") from None

    def memory(self, name: str) -> MemoryRegion:
        """Look a memory region up by name."""
        try:
            return self.memories[name]
        except KeyError:
            raise TopologyError(f"unknown memory region: {name}") from None

    def cpus(self) -> List[Cpu]:
        """All CPU sockets, in insertion order."""
        return [p for p in self.processors.values() if isinstance(p, Cpu)]

    def gpus(self) -> List[Gpu]:
        """All GPUs, in insertion order."""
        return [p for p in self.processors.values() if isinstance(p, Gpu)]

    def cpu(self, index: int = 0) -> Cpu:
        """The index-th CPU socket."""
        cpus = self.cpus()
        if index >= len(cpus):
            raise TopologyError(f"machine has {len(cpus)} CPUs, asked for #{index}")
        return cpus[index]

    def gpu(self, index: int = 0) -> Gpu:
        """The index-th GPU."""
        gpus = self.gpus()
        if index >= len(gpus):
            raise TopologyError(f"machine has {len(gpus)} GPUs, asked for #{index}")
        return gpus[index]

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def path(self, processor_name: str, memory_name: str) -> List[Interconnect]:
        """Shortest interconnect path from a processor to a memory region.

        Local memory yields an empty path.  Routing is breadth-first over
        the processor graph, then the memory hangs off its owner at zero
        link cost (the memory's own bandwidth/latency is accounted for by
        the cost model separately).
        """
        self.processor(processor_name)
        memory = self.memory(memory_name)
        target = memory.owner
        if processor_name == target:
            return []
        adjacency: Dict[str, List[Tuple[str, Interconnect]]] = {
            name: [] for name in self.processors
        }
        for link in self.links:
            adjacency[link.endpoint_a].append((link.endpoint_b, link))
            adjacency[link.endpoint_b].append((link.endpoint_a, link))
        # BFS for fewest hops; ties broken by insertion order.
        queue = deque([processor_name])
        parents: Dict[str, Tuple[str, Interconnect]] = {}
        seen = {processor_name}
        while queue:
            node = queue.popleft()
            if node == target:
                break
            for neighbor, link in adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    parents[neighbor] = (node, link)
                    queue.append(neighbor)
        if target not in seen:
            raise TopologyError(
                f"no path from {processor_name} to memory {memory_name}"
            )
        path: List[Interconnect] = []
        node = target
        while node != processor_name:
            node, link = parents[node]
            path.append(link)
        path.reverse()
        return path

    def hops(self, processor_name: str, memory_name: str) -> int:
        """Number of interconnect hops (Figure 13/14 x-axis)."""
        return len(self.path(processor_name, memory_name))

    def nearest_cpu_memory(self, processor_name: str) -> MemoryRegion:
        """CPU memory region with the fewest hops from ``processor_name``.

        Used by the hybrid hash table's greedy spill (Figure 8, step 2)
        and the NUMA-recursive fallback of Section 5.3.
        """
        candidates = [
            (self.hops(processor_name, cpu.local_memory.name), i, cpu.local_memory)
            for i, cpu in enumerate(self.cpus())
        ]
        if not candidates:
            raise TopologyError("machine has no CPU memory")
        candidates.sort(key=lambda item: (item[0], item[1]))
        return candidates[0][2]

    def cpu_memories_by_distance(self, processor_name: str) -> List[MemoryRegion]:
        """All CPU memory regions ordered by hop distance (NUMA search)."""
        candidates = [
            (self.hops(processor_name, cpu.local_memory.name), i, cpu.local_memory)
            for i, cpu in enumerate(self.cpus())
        ]
        candidates.sort(key=lambda item: (item[0], item[1]))
        return [memory for _, _, memory in candidates]

    def gpu_link(self, gpu_name: str) -> Interconnect:
        """The link that attaches a GPU to its host CPU."""
        gpu = self.processor(gpu_name)
        if gpu.kind is not ProcessorKind.GPU:
            raise TopologyError(f"{gpu_name} is not a GPU")
        host_memory = self.nearest_cpu_memory(gpu_name)
        path = self.path(gpu_name, host_memory.name)
        if not path:
            raise TopologyError(f"{gpu_name} has no link to a CPU")
        return path[0]

    @property
    def coherent_gpu_access(self) -> bool:
        """True when every GPU link is cache-coherent (NVLink machines)."""
        gpu_links = [self.gpu_link(gpu.name) for gpu in self.gpus()]
        return bool(gpu_links) and all(l.spec.cache_coherent for l in gpu_links)


# ---------------------------------------------------------------------------
# Canonical machines (Figure 4)
# ---------------------------------------------------------------------------


def ibm_ac922(gpus: int = 2, gpu_mesh: bool = False) -> Machine:
    """2x POWER9 + up to 4x V100-SXM2 over NVLink 2.0 (Figure 4a).

    GPUs alternate between the two sockets (the AC922 attaches up to
    three GPUs per CPU; the paper's machine has one per socket, the
    4-GPU variant two).  With two GPUs per socket, the paper notes the
    per-GPU NVLink bundle shrinks — two GPUs can saturate CPU memory
    bandwidth, so the model keeps a full bundle per GPU and lets the
    shared CPU memory become the contended resource.

    ``gpu_mesh`` adds direct GPU-to-GPU NVLink 2.0 connections between
    same-socket neighbours and across sockets — the point-to-point mesh
    of Section 6.3's multi-GPU strategy.  The paper's locality
    experiments (Figures 13/14) route GPU-to-GPU traffic through both
    CPUs, so the mesh is off by default.
    """
    if gpus not in (1, 2, 3, 4):
        raise TopologyError("ibm_ac922 supports 1 to 4 GPUs")
    machine = Machine(name="ibm-ac922")
    machine.add_cpu("cpu0", POWER9, "cpu0-mem")
    machine.add_cpu("cpu1", POWER9, "cpu1-mem")
    machine.connect("cpu0", "cpu1", XBUS)
    gpu_names = []
    for index in range(gpus):
        name = f"gpu{index}"
        machine.add_gpu(name, V100_SXM2, f"{name}-mem")
        machine.connect(name, f"cpu{index % 2}", NVLINK2)
        gpu_names.append(name)
    if gpu_mesh and gpus >= 2:
        for i in range(len(gpu_names)):
            for j in range(i + 1, len(gpu_names)):
                machine.connect(gpu_names[i], gpu_names[j], NVLINK2)
    return machine


def intel_xeon_v100() -> Machine:
    """2x Xeon Gold 6126 + V100-PCIE over PCI-e 3.0 (Figure 4b)."""
    machine = Machine(name="intel-xeon-v100")
    machine.add_cpu("cpu0", XEON_6126, "cpu0-mem")
    machine.add_cpu("cpu1", XEON_6126, "cpu1-mem")
    machine.connect("cpu0", "cpu1", UPI)
    machine.add_gpu("gpu0", V100_PCIE, "gpu0-mem")
    machine.connect("gpu0", "cpu0", PCIE3)
    return machine
