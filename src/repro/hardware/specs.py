"""Hardware data sheets for the paper's two evaluation platforms.

Every number here is taken from the paper:

* Figure 1 — theoretical vs. measured bandwidth of CPU memory, NVLink 2.0,
  and PCI-e 3.0 on the IBM system.
* Figure 2 — electrical bandwidths of the interconnect topology.
* Figure 3 — measured sequential bandwidth, random (4-byte) bandwidth, and
  latency of NVLink 2.0, PCI-e 3.0, UPI, X-Bus, Xeon memory, POWER9 memory,
  and V100 GPU memory.
* Section 2.2 — packet header/payload sizes of PCI-e 3.0 and NVLink 2.0.
* Section 7.1 — core counts, clocks, and memory capacities of the machines.

The specs are *immutable descriptions*.  Behavioural models live in
:mod:`repro.hardware.interconnect`, :mod:`repro.hardware.cache`, and
:mod:`repro.costmodel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.utils.units import GIB, GB, KIB, MIB, NS, US


@dataclass(frozen=True)
class LinkSpec:
    """An interconnect link technology.

    Attributes:
        name: technology name, e.g. ``"nvlink2"``.
        electrical_bw: aggregate electrical bandwidth per direction in
            bytes/s (Figure 2 annotations).
        seq_bw: measured sequential read bandwidth in bytes/s (Figure 3).
        random_bw_4b: measured bandwidth of dependent 4-byte random reads
            in bytes/s (Figure 3).
        latency: measured small-read latency in seconds (Figure 3).
        payload_bytes: maximum packet payload in bytes (Section 2.2).
        header_bytes: packet header size in bytes (Section 2.2).
        cache_coherent: whether the link supports system-wide cache
            coherence and atomics (NVLink 2.0: yes; PCI-e 3.0: no).
        duplex: full duplex links carry both directions at full speed.
        pageable_access: whether a device behind this link can directly
            read/write pageable memory (NVLink 2.0 address translation).
    """

    name: str
    electrical_bw: float
    seq_bw: float
    random_bw_4b: float
    latency: float
    payload_bytes: int
    header_bytes: int
    cache_coherent: bool
    duplex: bool = True
    pageable_access: bool = False

    @property
    def random_access_rate(self) -> float:
        """Independent random accesses per second sustainable on the link.

        The microbenchmark in Figure 3 issues 4-byte reads; the sustained
        *rate* (accesses/s) rather than the byte bandwidth is the invariant
        quantity for accesses up to one cache line, because each access
        occupies one request slot regardless of its size.
        """
        return self.random_bw_4b / 4.0

    def packet_efficiency(self, access_bytes: int) -> float:
        """Fraction of electrical bandwidth left after packet headers.

        Small payloads pay proportionally more header overhead
        (Section 2.2: PCI-e headers are "significant for the small
        payloads of irregular memory accesses").
        """
        if access_bytes <= 0:
            raise ValueError(f"access size must be positive, got {access_bytes}")
        payload = min(access_bytes, self.payload_bytes)
        return payload / (payload + self.header_bytes)


@dataclass(frozen=True)
class MemorySpec:
    """A memory technology attached to one processor.

    Attributes mirror :class:`LinkSpec`; bandwidths are local accesses by
    the owning processor (Figure 3b for CPU memory, 3c for GPU memory).
    """

    name: str
    capacity: int
    seq_bw: float
    random_bw_4b: float
    latency: float
    channels: int
    page_bytes: int

    @property
    def random_access_rate(self) -> float:
        """Independent random accesses per second (see LinkSpec)."""
        return self.random_bw_4b / 4.0


@dataclass(frozen=True)
class CacheSpec:
    """One cache level.

    ``memory_side`` marks the V100 L2, which sits in front of GPU memory
    and therefore *cannot* cache remote (CPU-memory) data — the paper uses
    this to explain Figure 14's workload-B behaviour.  ``caches_remote``
    marks caches that can hold lines homed in another processor's memory
    (GPU L1 over NVLink 2.0 coherence, CPU L3 for any address).
    """

    name: str
    capacity: int
    line_bytes: int
    bandwidth: float
    memory_side: bool = False
    caches_remote: bool = True


@dataclass(frozen=True)
class CpuSpec:
    """A CPU socket.

    ``mlp_per_core`` is the number of outstanding misses a core sustains
    (line-fill buffers); together with memory latency it bounds the random
    access rate of join probes.
    """

    name: str
    cores: int
    smt: int
    clock_hz: float
    mlp_per_core: float
    memory: MemorySpec
    llc: CacheSpec
    # Throughput of hashing + probing instructions, tuples/s per core, for
    # compute-bound (cache-resident) phases.
    tuple_rate_per_core: float = 250e6

    @property
    def threads(self) -> int:
        return self.cores * self.smt


@dataclass(frozen=True)
class GpuSpec:
    """A discrete GPU.

    ``mlp`` is the aggregate number of outstanding memory requests across
    all SMs; GPUs hide latency with massive parallelism (Section 3:
    "GPUs are designed to handle such high-latency memory accesses").
    ``atomic_rate_local`` bounds hash-table builds: CAS/atomic updates to
    GPU memory are slower than plain reads and dominate the build phase in
    Figure 18's time breakdown.
    """

    name: str
    sms: int
    clock_hz: float
    mlp: float
    memory: MemorySpec
    l2: CacheSpec
    l1_per_sm: CacheSpec
    copy_engines: int
    atomic_rate_local: float
    kernel_launch_latency: float = 10 * US
    tuple_rate: float = 40e9

    @property
    def l1_total_capacity(self) -> int:
        return self.sms * self.l1_per_sm.capacity


# ---------------------------------------------------------------------------
# Interconnect technologies (Figures 2 and 3a, Section 2.2)
# ---------------------------------------------------------------------------

NVLINK2 = LinkSpec(
    name="nvlink2",
    electrical_bw=75 * GB,  # 3 bundled links x 25 GB/s (Figure 2)
    seq_bw=63 * GIB,  # Figure 3a
    random_bw_4b=2.8 * GIB,  # Figure 3a
    latency=434 * NS,  # Figure 3a
    payload_bytes=256,  # Section 2.2.2
    header_bytes=16,  # Section 2.2.2
    cache_coherent=True,
    pageable_access=True,
)

PCIE3 = LinkSpec(
    name="pcie3",
    electrical_bw=16 * GB,  # 16 lanes (Figure 2)
    seq_bw=12 * GIB,  # Figure 3a
    random_bw_4b=0.2 * GIB,  # Figure 3a
    latency=790 * NS,  # Figure 3a
    payload_bytes=512,  # Section 2.2.1 (up to 512 byte payload)
    header_bytes=24,  # Section 2.2.1 (20-26 byte header)
    cache_coherent=False,
    pageable_access=False,
)

UPI = LinkSpec(
    name="upi",
    electrical_bw=41.6 * GB,
    seq_bw=32 * GIB,  # Figure 3a
    random_bw_4b=2.0 * GIB,  # Figure 3a (NVLink is "35% faster")
    latency=121 * NS,  # Figure 3a (NVLink is "3.6x higher")
    payload_bytes=64,
    header_bytes=8,
    cache_coherent=True,
)

XBUS = LinkSpec(
    name="xbus",
    electrical_bw=64 * GB,  # per link (Figure 2)
    seq_bw=31 * GIB,  # Figure 3a (NVLink has "twice as much")
    random_bw_4b=1.1 * GIB,  # Figure 3a
    latency=211 * NS,  # Figure 3a (NVLink is "2x higher")
    payload_bytes=128,
    header_bytes=8,
    cache_coherent=True,
)

INTERCONNECTS: Dict[str, LinkSpec] = {
    spec.name: spec for spec in (NVLINK2, PCIE3, UPI, XBUS)
}


# ---------------------------------------------------------------------------
# Memory technologies (Figures 1, 3b, 3c; Section 7.1)
# ---------------------------------------------------------------------------

DDR4_POWER9 = MemorySpec(
    name="ddr4-power9",
    capacity=128 * GIB,  # 256 GiB across two sockets (Section 7.1)
    seq_bw=117 * GIB,  # Figure 3b (8 channels DDR4-2666)
    random_bw_4b=3.6 * GIB,  # Figure 3b
    latency=68 * NS,  # Figure 3b
    channels=8,
    page_bytes=64 * KIB,  # POWER9 uses 64 KiB pages (Section 4.2)
)

DDR4_XEON = MemorySpec(
    name="ddr4-xeon",
    capacity=768 * GIB,  # 1.5 TiB across two sockets (Section 7.1)
    seq_bw=81 * GIB,  # Figure 3b (6 channels DDR4-2666)
    random_bw_4b=2.7 * GIB,  # Figure 3b
    latency=70 * NS,  # Figure 3b
    channels=6,
    page_bytes=4 * KIB,  # Intel uses 4 KiB pages (Section 4.2)
)

HBM2_V100 = MemorySpec(
    name="hbm2-v100",
    capacity=16 * GIB,  # Section 7.1: both GPUs have 16 GB memory
    seq_bw=729 * GIB,  # Figure 3c
    random_bw_4b=22.3 * GIB,  # Figure 3c
    latency=282 * NS,  # Figure 3c
    channels=32,
    page_bytes=64 * KIB,
)

MEMORIES: Dict[str, MemorySpec] = {
    spec.name: spec for spec in (DDR4_POWER9, DDR4_XEON, HBM2_V100)
}


# ---------------------------------------------------------------------------
# Caches
# ---------------------------------------------------------------------------

POWER9_L3 = CacheSpec(
    name="power9-l3",
    capacity=120 * MIB,  # 10 MiB per core-pair x 16 cores
    line_bytes=128,
    bandwidth=400 * GIB,
    caches_remote=True,
)

XEON_L3 = CacheSpec(
    name="xeon-l3",
    capacity=19 * MIB + 256 * KIB,  # 19.25 MiB on the Gold 6126
    line_bytes=64,
    bandwidth=300 * GIB,
    caches_remote=True,
)

V100_L2 = CacheSpec(
    name="v100-l2",
    capacity=6 * MIB,
    line_bytes=128,  # NVLink coherence granularity (Section 2.2.2)
    bandwidth=2150 * GIB,
    memory_side=True,  # Section 7.2.3: "The L2 cache is memory-side
    caches_remote=False,  # and cannot cache remote data."
)

V100_L1 = CacheSpec(
    name="v100-l1",
    capacity=128 * KIB,  # per SM, unified with shared memory
    line_bytes=128,
    bandwidth=12000 * GIB,
    caches_remote=True,  # coherence lets L1 cache CPU memory (Section 2.2.2)
)


# ---------------------------------------------------------------------------
# Processors (Section 7.1)
# ---------------------------------------------------------------------------

POWER9 = CpuSpec(
    name="power9",
    cores=16,
    smt=4,
    clock_hz=3.3e9,
    mlp_per_core=8.0,
    memory=DDR4_POWER9,
    llc=POWER9_L3,
)

XEON_6126 = CpuSpec(
    name="xeon-6126",
    cores=12,
    smt=2,
    clock_hz=2.6e9,
    mlp_per_core=10.0,
    memory=DDR4_XEON,
    llc=XEON_L3,
)

V100_SXM2 = GpuSpec(
    name="v100-sxm2",
    sms=80,
    clock_hz=1.53e9,
    mlp=6400.0,  # 80 SMs x ~80 outstanding requests
    memory=HBM2_V100,
    l2=V100_L2,
    l1_per_sm=V100_L1,
    copy_engines=6,
    atomic_rate_local=1.7e9,  # calibrated: Figure 18 build-phase share
)

V100_PCIE = GpuSpec(
    name="v100-pcie",
    sms=80,
    clock_hz=1.38e9,
    mlp=6400.0,
    memory=HBM2_V100,
    l2=V100_L2,
    l1_per_sm=V100_L1,
    copy_engines=6,
    atomic_rate_local=1.7e9,
)


def theoretical_vs_measured() -> Dict[str, Tuple[float, float]]:
    """Figure 1's bars: (theoretical, measured) bandwidth in bytes/s.

    CPU memory is the POWER9's 8 DDR4-2666 channels; NVLink 2.0 and
    PCI-e 3.0 are the GPU interconnects of the two platforms.
    """
    ddr4_2666_channel = 21.3 * GB  # 2666 MT/s x 8 bytes
    return {
        "memory": (8 * ddr4_2666_channel, DDR4_POWER9.seq_bw),
        "nvlink2": (NVLINK2.electrical_bw, NVLINK2.seq_bw),
        "pcie3": (PCIE3.electrical_bw, PCIE3.seq_bw),
    }
