"""Figure 14: hash-table locality (0-3 interconnect hops).

Workloads A/B/C (up to 34 GiB), base relations in local CPU memory (one
NVLink hop from the GPU), hash table placed in GPU memory, local CPU
memory, remote CPU memory, and remote GPU memory.
"""

from __future__ import annotations

from repro.bench.common import FigureResult
from repro.core.join.nopa import NoPartitioningJoin
from repro.hardware.topology import ibm_ac922
from repro.workloads.builders import workload_a, workload_b, workload_c

PAPER = {
    "A": {"gpu": 3.82, "cpu": 0.59, "rcpu": 0.30, "rgpu": 0.24},
    "B": {"gpu": 4.17, "cpu": 0.66, "rcpu": 0.33, "rgpu": 0.33},
    "C": {"gpu": 2.62, "cpu": 0.37, "rcpu": 0.19, "rgpu": 0.13},
}

PLACEMENTS = {
    "gpu": "gpu0-mem",
    "cpu": "cpu0-mem",
    "rcpu": "cpu1-mem",
    "rgpu": "gpu1-mem",
}


def run(scale: float = 2.0**-12) -> FigureResult:
    result = FigureResult(
        figure="Figure 14",
        title="Hash-table locality (hops 0-3), relations in local CPU memory",
        paper=PAPER,
        notes=(
            "One NVLink hop to the table costs 75-85% of throughput; the "
            "GPU's memory-side L2 cannot cache the remote table, so even "
            "workload B's cache-sized table gets no relief."
        ),
    )
    machine = ibm_ac922(gpus=2)
    workloads = {
        "A": workload_a(scale=scale),
        "B": workload_b(scale=scale),
        "C": workload_c(scale=scale),
    }
    for name, workload in workloads.items():
        values = {}
        for label, region in PLACEMENTS.items():
            join = NoPartitioningJoin(
                machine,
                hash_table_placement=region,
                transfer_method="coherence",
            )
            values[label] = join.run(
                workload.r, workload.s, processor="gpu0"
            ).throughput_gtuples
        result.add(name, **values)
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
