"""Figure 17: build-side scaling (hash table up to 2x GPU memory).

Workload C with 16-byte tuples; both relations scale together from 128
to 2048 million tuples, so the hash table grows from 2 GiB to 32 GiB —
past the 16 GiB GPU at ~1024 million tuples.  Series: CPU radix
baseline, GPU over PCI-e 3.0, GPU over NVLink 2.0 (table spilled
entirely to CPU memory once it no longer fits), and NVLink 2.0 with the
hybrid hash table.
"""

from __future__ import annotations

from repro.bench.common import FigureResult
from repro.core.join.nopa import NoPartitioningJoin
from repro.core.join.radix import RadixJoin
from repro.hardware.topology import ibm_ac922, intel_xeon_v100
from repro.memory.allocator import OutOfMemoryError
from repro.transfer.methods import get_method
from repro.workloads.builders import workload_ratio

#: curve readings: in-core plateau and out-of-core floor.
PAPER = {
    "512M": {"nvlink2": 1.5, "pcie3": 0.77, "cpu-pra": 0.45, "nvlink2-hybrid": 1.5},
    "2048M": {"nvlink2": 0.32, "pcie3": 0.02, "cpu-pra": 0.45, "nvlink2-hybrid": 0.6},
}

TUPLE_MILLIONS = (128, 256, 512, 768, 1024, 1280, 1536, 1792, 2048)


def run(scale: float = 2.0**-13, tuple_millions=TUPLE_MILLIONS) -> FigureResult:
    result = FigureResult(
        figure="Figure 17",
        title="Build-side scaling (workload C, 16-byte tuples)",
        paper=PAPER,
        notes=(
            "PCI-e rides over a 97% performance cliff when the table "
            "spills; NVLink 2.0 degrades gracefully, stays 8-18x above "
            "PCI-e and within ~13% of the CPU; the hybrid table adds "
            "1-2.2x on top."
        ),
    )
    ibm = ibm_ac922()
    intel = intel_xeon_v100()
    for millions in tuple_millions:
        workload = workload_ratio(1, scale=scale, modeled_r=millions * 10**6)
        r, s = workload.r, workload.s
        values = {}
        values["nvlink2"] = _gpu_or_spill(ibm, r, s, "coherence")
        values["pcie3"] = _gpu_or_spill(intel, r, s, "zero_copy")
        values["nvlink2-hybrid"] = (
            NoPartitioningJoin(ibm, hash_table_placement="hybrid")
            .run(r, s)
            .throughput_gtuples
        )
        values["cpu-pra"] = RadixJoin(ibm).run(r, s).throughput_gtuples
        result.add(f"{millions}M", **values)
    return result


def _gpu_or_spill(machine, r, s, method) -> float:
    """GPU placement while it fits, whole-table CPU spill afterwards.

    This is the non-hybrid behaviour the paper plots as "NVLink 2.0" /
    "PCI-e 3.0": the table moves to CPU memory as one piece.
    """
    kind = get_method(method).required_kind
    r = r.placed(r.location, kind=kind)
    s = s.placed(s.location, kind=kind)
    try:
        join = NoPartitioningJoin(
            machine, hash_table_placement="gpu", transfer_method=method
        )
        return join.run(r, s).throughput_gtuples
    except OutOfMemoryError:
        join = NoPartitioningJoin(
            machine, hash_table_placement="cpu", transfer_method=method
        )
        return join.run(r, s).throughput_gtuples


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
