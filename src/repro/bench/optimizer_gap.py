"""Predicted-vs-actual gap of the cost-based optimizer.

The optimizer prices every candidate from *estimated* statistics
(``repro.logical.stats``); the operator facades price the plan they
actually run from *measured* statistics (functional matches, survival
rates, cache-line fractions).  The difference is the optimizer's
estimation error — if it grows, the optimizer is choosing plans on
stale arithmetic even though each individual price is exact for its
stats.  This benchmark pins that error:

* **predicted** — ``optimize(...)`` on a named workload from the
  shared :mod:`repro.logical.explain` registry; the chosen candidate's
  predicted seconds.
* **actual** — the matching operator facade (``TpchQ6``,
  ``NoPartitioningJoin``, ``CoopJoin``, ``StarJoin``) run with the
  *chosen* physical configuration on the same functional data; its
  priced runtime.
* **gap** — ``|predicted - actual| / actual``, gated under
  :data:`GAP_THRESHOLD` by CI (``--check-gap``).

Usage::

    python -m repro.bench.optimizer_gap                  # full table
    python -m repro.bench.optimizer_gap --quick --check-gap
    python -m repro.bench.optimizer_gap --out BENCH_pr8.json
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Dict, List, Optional, Tuple

from repro.core.join.coop import CoopJoin
from repro.core.join.multiway import Dimension, StarJoin
from repro.core.join.nopa import NoPartitioningJoin
from repro.core.ops.q6 import TpchQ6
from repro.logical.explain import (
    JOIN_SEL_SELECTIVITY,
    MACHINES,
    Q6_SCALE_FACTOR,
    STAR_DIMS,
    STAR_FACT_MODELED,
    explain_workload,
    star_inputs,
)
from repro.logical.lower import PhysicalConfig
from repro.logical.optimizer import OptimizerResult
from repro.workloads.builders import (
    workload_a,
    workload_b,
    workload_selectivity,
)
from repro.workloads.tpch import lineitem_q6

#: version of the BENCH_pr8 gap-document layout.
GAP_SCHEMA_VERSION = "1.0"

#: CI gate: the worst per-scenario relative gap must stay under this.
#: The observed gaps (see BENCH_pr8.json) come from estimation error
#: only — hinted match rates vs sampled ones, survival hints vs
#: measured survival — and everything is seeded, so the observed
#: maximum is deterministic (currently ~1e-5 on join-sel; the other
#: canonical workloads are estimated exactly).  The gate sits far
#: above that but far below any real estimator drift, which moves
#: phase costs by percents.
GAP_THRESHOLD = 0.05

#: (workload registry name, machine registry name) per scenario.
SCENARIOS: Tuple[Tuple[str, str], ...] = (
    ("q6", "ibm-ac922"),
    ("join-a", "ibm-ac922"),
    ("join-a", "intel-xeon-v100"),
    ("join-b", "ibm-ac922"),
    ("join-sel", "ibm-ac922"),
    ("star", "ibm-ac922"),
)

#: the --quick CI subset: one scenario per facade family, plus the
#: one whose estimation is inexact (join-sel) so the gate is live.
QUICK_SCENARIOS: Tuple[Tuple[str, str], ...] = (
    ("q6", "ibm-ac922"),
    ("join-a", "ibm-ac922"),
    ("join-sel", "ibm-ac922"),
    ("star", "ibm-ac922"),
)


def _actual_q6(machine, config: PhysicalConfig) -> float:
    """Run the Q6 facade with the chosen variant/method/processor."""
    operator = TpchQ6(
        machine,
        variant=config.variant,
        transfer_method=config.transfer_method,
    )
    workload = lineitem_q6(Q6_SCALE_FACTOR)
    return operator.run(workload, processor=config.processor).runtime


def _actual_join(machine, config: PhysicalConfig, builder) -> float:
    """Run the NOPA or cooperative facade with the chosen config."""
    workload = builder().placed_for(config.transfer_method)
    if config.strategy == "single":
        join = NoPartitioningJoin(
            machine,
            transfer_method=config.transfer_method,
            hash_scheme=config.hash_scheme,
        )
        fractions = (
            dict(config.placement.fractions)
            if config.placement is not None
            else None
        )
        result = join.run(
            workload.r,
            workload.s,
            processor=config.processor,
            placement_fractions=fractions,
        )
        return result.runtime
    join = CoopJoin(
        machine, strategy=config.strategy, hash_scheme=config.hash_scheme
    )
    return join.run(workload.r, workload.s, workers=config.workers).runtime


def _actual_star(machine, config: PhysicalConfig) -> float:
    """Run the star facade probing in the chosen dimension order."""
    fact, dims = star_inputs()
    order = config.join_order or tuple(range(len(dims)))
    dimensions = [Dimension(dims[i], STAR_DIMS[i]) for i in order]
    join = StarJoin(machine, hash_scheme=config.hash_scheme)
    result = join.run(
        fact,
        dimensions,
        workers=config.workers,
        modeled_fact=STAR_FACT_MODELED,
    )
    return result.runtime


def _actual_seconds(name: str, machine, config: PhysicalConfig) -> float:
    if name == "q6":
        return _actual_q6(machine, config)
    if name == "join-a":
        return _actual_join(machine, config, workload_a)
    if name == "join-b":
        return _actual_join(machine, config, workload_b)
    if name == "join-sel":
        return _actual_join(
            machine,
            config,
            lambda: workload_selectivity(JOIN_SEL_SELECTIVITY),
        )
    if name == "star":
        return _actual_star(machine, config)
    raise KeyError(f"no facade runner for workload {name!r}")


def run_scenario(name: str, machine_name: str) -> Dict[str, Any]:
    """One gap row: optimize, re-run the choice via the facade, diff."""
    decision: OptimizerResult = explain_workload(name, machine_name)
    predicted = decision.chosen.seconds
    assert predicted is not None
    machine = MACHINES[machine_name]()
    actual = _actual_seconds(name, machine, decision.chosen.config)
    gap = abs(predicted - actual) / actual if actual else float("inf")
    return {
        "kind": f"optgap[{name}@{machine_name}]",
        "workload": name,
        "machine": machine_name,
        "chosen": decision.chosen.config.describe(),
        "considered": len(decision.candidates),
        "rejected": len(decision.rejected),
        "predicted_seconds": predicted,
        "actual_seconds": actual,
        "gap": gap,
    }


def run_scenarios(
    scenarios: Tuple[Tuple[str, str], ...] = SCENARIOS
) -> List[Dict[str, Any]]:
    """Gap rows for every scenario, in declaration order."""
    return [run_scenario(name, machine) for name, machine in scenarios]


def gap_document(rows: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The BENCH_pr8.json layout: rows plus the gate that judges them."""
    return {
        "schema_version": GAP_SCHEMA_VERSION,
        "generator": "repro.bench.optimizer_gap",
        "gap_threshold": GAP_THRESHOLD,
        "max_gap": max((row["gap"] for row in rows), default=0.0),
        "runs": rows,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI subset: one scenario per facade family",
    )
    parser.add_argument(
        "--check-gap",
        action="store_true",
        help=f"exit non-zero if any gap exceeds {GAP_THRESHOLD}",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        help="write the gap document (BENCH_pr8.json layout)",
    )
    args = parser.parse_args(argv)
    scenarios = QUICK_SCENARIOS if args.quick else SCENARIOS
    rows = run_scenarios(scenarios)
    header = (
        f"{'scenario':30s} {'predicted':>12s} {'actual':>12s} {'gap':>10s}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['kind']:30s} {row['predicted_seconds']:12.6f} "
            f"{row['actual_seconds']:12.6f} {row['gap']:10.2e}"
        )
    document = gap_document(rows)
    print(
        f"max gap {document['max_gap']:.2e} "
        f"(threshold {GAP_THRESHOLD})"
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.out}")
    if args.check_gap and document["max_gap"] > GAP_THRESHOLD:
        print("FAIL: predicted-vs-actual gap exceeds the pinned threshold")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
