"""Chaos benchmark: hook overhead + priced manifests of the CI seed set.

Usage::

    python -m repro.bench.chaos_overhead                  # full sizes
    python -m repro.bench.chaos_overhead --quick          # CI smoke
    python -m repro.bench.chaos_overhead --out BENCH_pr5.json
    python -m repro.bench.chaos_overhead --check-overhead

Three sections land in the output document:

* ``runs`` — priced run manifests: one fault-free serial baseline
  (``nopa[chaos-baseline]``) plus one NOPA run per canonical chaos seed
  (``nopa[chaos-s101]`` ...), each carrying its ``resilience`` section.
  The priced phases are deterministic — crashes and transients are
  recovered invisibly and the OOM seed degrades to the (deterministic)
  hybrid placement — so ``repro.bench.diff_manifest`` compares them
  against the committed ``BENCH_pr5.json`` baseline in CI.
* ``chaos`` — per-seed summary: what each plan injected, which recovery
  actions answered it, and whether the results matched the fault-free
  baseline bit-for-bit.
* ``overhead`` — wall-clock cost of the injection *hooks* on the hot
  path: the functional build+probe with no plan installed versus with
  an **empty** plan installed (every hook site active but no rule
  matching).  Informational wall clock, ignored by the manifest diff.

``--check-overhead`` asserts the empty-plan overhead stays under
``OVERHEAD_TARGET``.  Wall clock is noisy, so the check takes the best
(minimum) overhead across interleaved measurement rounds — a scheduler
hiccup in one round cannot fail the gate, while a real hot-path
regression inflates every round.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.hashtable import create_hash_table
from repro.core.join.nopa import NoPartitioningJoin
from repro.exec import MorselExecutor, execute_build, execute_probe
from repro.faults import CHAOS_SEEDS, FaultPlan, RetryPolicy, chaos_plan
from repro.hardware.topology import ibm_ac922
from repro.obs import Observability
from repro.obs.manifest import MANIFEST_SCHEMA_VERSION, build_manifest
from repro.workloads.builders import workload_a

#: acceptance threshold: an installed-but-empty plan may slow the
#: functional build+probe by at most this fraction.
OVERHEAD_TARGET = 0.02

#: interleaved measurement rounds for the overhead section.
OVERHEAD_ROUNDS = 5

#: morsel size of the chaos runs — small enough that the reduced-scale
#: workload decomposes into dozens of injection sites per phase.
CHAOS_MORSEL_TUPLES = 4096


def _chaos_join(machine, **overrides) -> NoPartitioningJoin:
    """The join configuration every chaos run (and the tests) uses."""
    config: Dict[str, Any] = dict(
        hash_table_placement="gpu",
        transfer_method="coherence",
        backend="threads",
        workers=4,
        exec_morsel_tuples=CHAOS_MORSEL_TUPLES,
        oom_policy="spill",
        retry_policy=RetryPolicy(max_attempts=4, base_delay=0.0),
    )
    config.update(overrides)
    return NoPartitioningJoin(machine, **config)


def _run_manifest(join, workload, result, kind, resilience) -> Dict[str, Any]:
    manifest = build_manifest(
        kind=kind,
        machine=join.machine,
        phases=[result.build_cost, result.probe_cost],
        workload={
            "name": "A",
            "executed_r": workload.r.executed_tuples,
            "executed_s": workload.s.executed_tuples,
            "modeled_r": workload.r.modeled_tuples,
            "modeled_s": workload.s.modeled_tuples,
        },
        config={
            "hash_table_placement": "gpu",
            "transfer_method": "coherence",
            "oom_policy": "spill",
            "morsel_tuples": CHAOS_MORSEL_TUPLES,
        },
        results={"matches": result.matches, "aggregate": result.aggregate},
        obs=join.obs,
        resilience=resilience,
    )
    return manifest.to_dict()


def _chaos_runs(scale: float) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """One fault-free baseline + one priced run per canonical chaos seed.

    Returns ``(manifests, summaries)``: the manifests are deterministic
    (recovery never changes the priced phases; the OOM seed's hybrid
    degradation is itself deterministic) and feed the baseline diff; the
    summaries account for the injected faults and recovery actions.
    """
    machine = ibm_ac922()
    workload = workload_a(scale=scale)

    base_join = _chaos_join(machine, backend="serial", obs=Observability.create())
    base = base_join.run(workload.r, workload.s)
    manifests = [
        _run_manifest(base_join, workload, base, "nopa[chaos-baseline]", None)
    ]

    summaries = []
    for seed in CHAOS_SEEDS:
        join = _chaos_join(machine, obs=Observability.create())
        plan = chaos_plan(seed)
        with plan.install():
            result = join.run(workload.r, workload.s)
        section = join.last_resilience.section(plan)
        manifests.append(
            _run_manifest(join, workload, result, f"nopa[chaos-s{seed}]", section)
        )
        summaries.append(
            {
                "seed": seed,
                "plan": plan.name,
                "injected_counts": plan.injected_counts(),
                "recovery_counters": join.last_resilience.counts(),
                "placement": result.placement.label,
                "results_identical": bool(
                    result.matches == base.matches
                    and result.aggregate == base.aggregate
                ),
            }
        )
    return manifests, summaries


def _functional_seconds(
    keys: np.ndarray,
    values: np.ndarray,
    probe: np.ndarray,
    executor: MorselExecutor,
) -> float:
    start = time.perf_counter()
    table = create_hash_table("perfect", len(keys), keys.dtype, values.dtype)
    execute_build(table, keys, values, executor)
    execute_probe(table, probe, executor)
    return time.perf_counter() - start


def _hook_overhead(quick: bool, rounds: int = OVERHEAD_ROUNDS) -> Dict[str, Any]:
    """Best-of interleaved timing: no plan vs installed-but-empty plan.

    An empty plan keeps every hook site live (the morsel-receipt check,
    the allocation check, the bandwidth query) without injecting — the
    purest measure of what chaos-readiness costs a production run.
    Rounds are interleaved so a load spike hits both arms equally.
    """
    build_tuples = 1 << 18 if quick else 1 << 20
    probe_tuples = 1 << 19 if quick else 1 << 21
    morsel_tuples = 1 << 13

    rng = np.random.default_rng(5)
    keys = rng.permutation(build_tuples).astype(np.int64)
    values = (keys * 3 + 1).astype(np.int64)
    probe = rng.integers(0, build_tuples, size=probe_tuples).astype(np.int64)

    executor = MorselExecutor(workers=4, morsel_tuples=morsel_tuples)
    empty_plan = FaultPlan(seed=0, rules=[], name="empty")

    best_off = best_on = float("inf")
    for _ in range(rounds):
        best_off = min(
            best_off, _functional_seconds(keys, values, probe, executor)
        )
        with empty_plan.install():
            best_on = min(
                best_on, _functional_seconds(keys, values, probe, executor)
            )
    overhead = best_on / best_off - 1.0 if best_off else 0.0
    return {
        "build_tuples": build_tuples,
        "probe_tuples": probe_tuples,
        "morsel_tuples": morsel_tuples,
        "rounds": rounds,
        "seconds_without_plan": best_off,
        "seconds_with_empty_plan": best_on,
        "overhead_fraction": overhead,
        "target": OVERHEAD_TARGET,
    }


def run_benchmark(quick: bool = False) -> Dict[str, Any]:
    """Execute the chaos sweep + overhead measurement; return the document."""
    scale = 2.0**-14 if quick else 2.0**-12
    manifests, summaries = _chaos_runs(scale)
    return {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "generator": "repro.bench.chaos_overhead",
        "quick": quick,
        "cpu_count": os.cpu_count() or 1,
        "workload": {"name": "A", "scale": scale, "seeds": list(CHAOS_SEEDS)},
        "chaos": summaries,
        "overhead": _hook_overhead(quick),
        "runs": manifests,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument("--out", default=None, help="write the JSON document here")
    parser.add_argument(
        "--check-overhead",
        action="store_true",
        help=f"fail if the empty-plan hook overhead exceeds "
        f"{OVERHEAD_TARGET:.0%} of the functional build+probe",
    )
    args = parser.parse_args(argv)

    document = run_benchmark(quick=args.quick)

    print(
        f"== chaos overhead (workload A scale {document['workload']['scale']}, "
        f"seeds {document['workload']['seeds']}, "
        f"{document['cpu_count']} cores) =="
    )
    for row in document["chaos"]:
        print(
            f"  seed {row['seed']} ({row['plan']}): injected "
            f"{row['injected_counts']} -> recovered {row['recovery_counters']}, "
            f"placement {row['placement']}, "
            f"identical={row['results_identical']}"
        )
    if not all(row["results_identical"] for row in document["chaos"]):
        print("FAIL: a chaos run did not recover to baseline-identical results")
        return 1

    overhead = document["overhead"]
    print(
        f"  hooks: {overhead['seconds_without_plan'] * 1e3:.1f} ms bare, "
        f"{overhead['seconds_with_empty_plan'] * 1e3:.1f} ms with empty plan "
        f"-> overhead {overhead['overhead_fraction']:+.2%} "
        f"(target < {overhead['target']:.0%})"
    )

    if args.check_overhead:
        if overhead["overhead_fraction"] < OVERHEAD_TARGET:
            document["overhead_check"] = {
                "status": "passed",
                "overhead_fraction": overhead["overhead_fraction"],
            }
            print("  overhead check passed")
        else:
            print(
                f"FAIL: empty-plan hook overhead "
                f"{overhead['overhead_fraction']:.2%} >= {OVERHEAD_TARGET:.0%}"
            )
            return 1

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
