"""Figure 16: probe-side scaling.

Workload C with 16-byte tuples; |R| fixed at 1024 million tuples (hash
table in GPU memory), |S| scaled from 128 to 8192 million tuples
(1.9-122 GiB).  Series: CPU radix baseline (PRA), GPU over PCI-e 3.0,
GPU over NVLink 2.0.
"""

from __future__ import annotations

from repro.bench.common import FigureResult
from repro.core.join.nopa import NoPartitioningJoin
from repro.core.join.radix import RadixJoin
from repro.hardware.topology import ibm_ac922, intel_xeon_v100
from repro.workloads.builders import workload_ratio

#: approximate curve readings (G Tuples/s).
PAPER = {
    "8192M": {"nvlink2": 3.8, "pcie3": 0.77, "cpu-pra": 0.5},
    "1024M": {"nvlink2": 2.4, "pcie3": 0.77, "cpu-pra": 0.5},
}

PROBE_MILLIONS = (128, 512, 1024, 2048, 4096, 8192)
BUILD_MILLIONS = 1024


def run(scale: float = 2.0**-13, probe_millions=PROBE_MILLIONS) -> FigureResult:
    result = FigureResult(
        figure="Figure 16",
        title="Probe-side scaling (workload C, 16-byte tuples)",
        paper=PAPER,
        notes=(
            "NVLink 2.0 is 3-6x PCI-e 3.0 and 3.2-7.3x the CPU baseline; "
            "PCI-e stays flat at its transfer bottleneck and cannot beat "
            "the CPU."
        ),
    )
    ibm = ibm_ac922()
    intel = intel_xeon_v100()
    for millions in probe_millions:
        ratio = max(1, millions // BUILD_MILLIONS)
        if millions >= BUILD_MILLIONS:
            workload = workload_ratio(
                ratio, scale=scale, modeled_r=BUILD_MILLIONS * 10**6
            )
        else:
            # sub-1:1 points: shrink S below R by generating at ratio 1
            # and truncating the modeled probe cardinality.
            workload = workload_ratio(
                1, scale=scale, modeled_r=BUILD_MILLIONS * 10**6
            )
            workload.s.modeled_tuples = millions * 10**6
        values = {}
        values["nvlink2"] = (
            NoPartitioningJoin(ibm, hash_table_placement="gpu")
            .run(workload.r, workload.s)
            .throughput_gtuples
        )
        pinned = workload.placed_for("zero_copy")
        values["pcie3"] = (
            NoPartitioningJoin(
                intel, hash_table_placement="gpu", transfer_method="zero_copy"
            )
            .run(pinned.r, pinned.s)
            .throughput_gtuples
        )
        values["cpu-pra"] = (
            RadixJoin(ibm).run(workload.r, workload.s).throughput_gtuples
        )
        result.add(f"{millions}M", **values)
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
