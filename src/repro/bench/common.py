"""Shared structures for the figure-reproduction harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.utils.tables import Table


@dataclass
class SeriesRow:
    """One x-position of a figure: a label plus one value per series."""

    label: str
    values: Dict[str, float] = field(default_factory=dict)

    def get(self, series: str) -> Optional[float]:
        return self.values.get(series)


@dataclass
class FigureResult:
    """Simulated reproduction of one figure/table."""

    figure: str
    title: str
    rows: List[SeriesRow] = field(default_factory=list)
    paper: Dict[str, Dict[str, float]] = field(default_factory=dict)
    unit: str = "G Tuples/s"
    notes: str = ""

    def add(self, label: str, **values: float) -> None:
        self.rows.append(SeriesRow(label=label, values=dict(values)))

    def series_names(self) -> List[str]:
        names: List[str] = []
        for row in self.rows:
            for name in row.values:
                if name not in names:
                    names.append(name)
        return names

    def series(self, name: str) -> List[float]:
        """Values of one series across rows (missing rows are skipped)."""
        return [row.values[name] for row in self.rows if name in row.values]

    def value(self, label: str, series: str) -> float:
        for row in self.rows:
            if row.label == label and series in row.values:
                return row.values[series]
        raise KeyError(f"no value for ({label!r}, {series!r}) in {self.figure}")

    def paper_value(self, label: str, series: str) -> Optional[float]:
        return self.paper.get(label, {}).get(series)

    def table(self) -> Table:
        """Render simulated-vs-paper as an ASCII table."""
        names = self.series_names()
        columns = [self.figure]
        for name in names:
            columns.append(f"{name} (sim)")
            columns.append(f"{name} (paper)")
        table = Table(columns, title=f"{self.figure}: {self.title} [{self.unit}]")
        for row in self.rows:
            cells: List[object] = [row.label]
            for name in names:
                sim = row.values.get(name)
                cells.append("-" if sim is None else f"{sim:.3g}")
                paper = self.paper_value(row.label, name)
                cells.append("-" if paper is None else f"{paper:.3g}")
            table.add_row(cells)
        return table

    def render(self) -> str:
        out = self.table().render()
        if self.notes:
            out += f"\n  note: {self.notes}"
        return out
