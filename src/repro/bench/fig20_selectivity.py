"""Figure 20: join selectivity (0-100%).

Workload A (34 GiB); the match rate is varied by pointing a fraction of
S's foreign keys outside R's domain.  Series: CPU (NOPA), GPU over
PCI-e 3.0 and NVLink 2.0, each with the hash table in GPU and in CPU
memory.  The SoA value column is only touched on matches, at cache-line
granularity — the paper's "at 10% selectivity, 81.5% of values are
loaded" effect, which the functional layer measures exactly.
"""

from __future__ import annotations

from typing import Iterable

from repro.bench.common import FigureResult
from repro.core.join.nopa import NoPartitioningJoin
from repro.hardware.topology import ibm_ac922, intel_xeon_v100
from repro.workloads.builders import workload_selectivity

PAPER = {
    # The text's anchor points: the largest decrease (30%) is NVLink
    # with a GPU-memory table; PCI-e with a CPU table slows only 7%.
    "sel=0.0": {"nvlink2-gpu-ht": 4.6, "pcie3-cpu-ht": 0.06, "cpu": 0.55},
    "sel=1.0": {"nvlink2-gpu-ht": 3.2, "pcie3-cpu-ht": 0.056, "cpu": 0.5},
    "sel=0.1": {"value_lines_loaded_pct": 81.5},
}

SELECTIVITIES = (0.0, 0.1, 0.25, 0.5, 0.75, 1.0)


def run(
    scale: float = 2.0**-12, selectivities: Iterable[float] = SELECTIVITIES
) -> FigureResult:
    result = FigureResult(
        figure="Figure 20",
        title="Join selectivity sweep (workload A)",
        paper=PAPER,
        notes=(
            "Throughput decreases with selectivity; the drop is largest "
            "for NVLink with an in-GPU table. Matched values are loaded "
            "at cache-line granularity (81.5% of value lines at 10%)."
        ),
    )
    ibm = ibm_ac922()
    intel = intel_xeon_v100()
    for selectivity in selectivities:
        workload = workload_selectivity(selectivity, scale=scale)
        values = {}
        values["cpu"] = (
            NoPartitioningJoin(ibm, hash_table_placement="cpu")
            .run(workload.r, workload.s, processor="cpu0")
            .throughput_gtuples
        )
        nv_gpu = NoPartitioningJoin(
            ibm, hash_table_placement="gpu", transfer_method="coherence"
        ).run(workload.r, workload.s)
        values["nvlink2-gpu-ht"] = nv_gpu.throughput_gtuples
        values["value_lines_loaded_pct"] = 100.0 * nv_gpu.payload_lines_loaded
        values["nvlink2-cpu-ht"] = (
            NoPartitioningJoin(
                ibm, hash_table_placement="cpu", transfer_method="coherence"
            )
            .run(workload.r, workload.s)
            .throughput_gtuples
        )
        pinned = workload.placed_for("zero_copy")
        values["pcie3-gpu-ht"] = (
            NoPartitioningJoin(
                intel, hash_table_placement="gpu", transfer_method="zero_copy"
            )
            .run(pinned.r, pinned.s)
            .throughput_gtuples
        )
        values["pcie3-cpu-ht"] = (
            NoPartitioningJoin(
                intel, hash_table_placement="cpu", transfer_method="zero_copy"
            )
            .run(pinned.r, pinned.s)
            .throughput_gtuples
        )
        result.add(f"sel={selectivity}", **values)
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
