"""Ablation benches for the design choices DESIGN.md calls out.

* GPU morsel-batch size (Section 6.1's "we empirically tune the batch
  size"): sweep the batch and report co-processing throughput.
* SoA vs. AoS hash-table layout under varying selectivity (the layout
  behind Figure 20).
* Perfect hashing vs. open addressing vs. chaining (Section 7.1 uses
  perfect hashing; how much does it matter?).
* Hybrid hash table vs. whole-table CPU spill at varying table sizes
  (the Section 5.3 design choice).
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.bench.common import FigureResult
from repro.core.join.coop import CoopJoin
from repro.core.join.nopa import NoPartitioningJoin
from repro.hardware.topology import ibm_ac922
from repro.workloads.builders import (
    workload_a,
    workload_ratio,
    workload_selectivity,
)

BATCHES = (1, 2, 4, 8, 16, 64, 256)


def run_batch_size(
    scale: float = 2.0**-12, batches: Iterable[int] = BATCHES
) -> FigureResult:
    """Het probe throughput vs. GPU batch size (amortization vs. skew)."""
    result = FigureResult(
        figure="Ablation: batch size",
        title="GPU morsel-batch size in Het co-processing (workload A)",
        notes=(
            "Small batches drown in dispatch latency; very large batches "
            "add end-of-input skew. The auto-tuner picks the knee."
        ),
    )
    machine = ibm_ac922()
    workload = workload_a(scale=scale)
    # Small morsels make the dispatch-latency / end-of-input-skew
    # trade-off visible (with multi-million-tuple morsels every batch
    # size amortizes the 20 us round trip).
    morsel = 1 << 16
    for batch in batches:
        coop = CoopJoin(
            machine, strategy="het", gpu_batch_morsels=batch, morsel_tuples=morsel
        )
        res = coop.run(workload.r, workload.s, workers=("cpu0", "gpu0"))
        result.add(f"batch={batch}", throughput=res.throughput_gtuples)
    auto = CoopJoin(machine, strategy="het", morsel_tuples=morsel)
    res = auto.run(workload.r, workload.s, workers=("cpu0", "gpu0"))
    result.add("batch=auto", throughput=res.throughput_gtuples)
    return result


def run_layout(scale: float = 2.0**-12) -> FigureResult:
    """SoA vs. AoS hash-table layout across selectivities."""
    result = FigureResult(
        figure="Ablation: layout",
        title="Hash-table layout under join selectivity (NVLink, CPU table)",
        notes=(
            "The CPU-memory table makes table accesses the bottleneck: "
            "AoS fetches key and value in one access and wins at high "
            "selectivity; at zero selectivity both layouts touch only "
            "one location per probe and tie."
        ),
    )
    machine = ibm_ac922()
    for selectivity in (0.0, 0.1, 0.5, 1.0):
        workload = workload_selectivity(selectivity, scale=scale)
        values: Dict[str, float] = {}
        for layout in ("soa", "aos"):
            join = NoPartitioningJoin(
                machine, hash_table_placement="cpu", layout=layout
            )
            values[layout] = join.run(
                workload.r, workload.s
            ).throughput_gtuples
        result.add(f"sel={selectivity}", **values)
    return result


def run_hash_scheme(scale: float = 2.0**-12) -> FigureResult:
    """Perfect hashing vs. open addressing vs. chaining (workload A)."""
    result = FigureResult(
        figure="Ablation: hash scheme",
        title="Hash scheme on NVLink 2.0 (workload A, GPU table)",
        notes=(
            "Perfect hashing probes exactly one slot; open addressing "
            "pays collision probes and a larger (2x) table; chaining "
            "pays pointer chases."
        ),
    )
    machine = ibm_ac922()
    workload = workload_a(scale=scale)
    for scheme in ("perfect", "open_addressing", "chaining"):
        join = NoPartitioningJoin(
            machine, hash_table_placement="gpu", hash_scheme=scheme
        )
        res = join.run(workload.r, workload.s)
        result.add(
            scheme,
            throughput=res.throughput_gtuples,
            probes_per_lookup=res.table_stats_probe_factor,
        )
    return result


def run_hybrid_vs_spill(scale: float = 2.0**-13) -> FigureResult:
    """Hybrid hash table vs. whole-table CPU spill (Section 5.3)."""
    result = FigureResult(
        figure="Ablation: hybrid",
        title="Hybrid table vs. CPU spill past the GPU-memory boundary",
        notes="The hybrid table's edge shrinks as the GPU fraction falls.",
    )
    machine = ibm_ac922()
    for millions in (1024, 1280, 1536, 2048, 3072, 4096):
        workload = workload_ratio(1, scale=scale, modeled_r=millions * 10**6)
        hybrid = NoPartitioningJoin(machine, hash_table_placement="hybrid").run(
            workload.r, workload.s
        )
        spill = NoPartitioningJoin(machine, hash_table_placement="cpu").run(
            workload.r, workload.s
        )
        result.add(
            f"{millions}M",
            hybrid=hybrid.throughput_gtuples,
            cpu_spill=spill.throughput_gtuples,
            gpu_fraction=hybrid.placement.gpu_fraction(machine),
        )
    return result


def main() -> None:
    for runner in (run_batch_size, run_layout, run_hash_scheme, run_hybrid_vs_spill):
        print(runner().render())
        print()


if __name__ == "__main__":
    main()
