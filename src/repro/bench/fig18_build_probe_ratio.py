"""Figure 18: build-to-probe ratios (1:1 up to 1:16).

Workload C with 16-byte tuples; R fixed at 2 GiB (128 million tuples),
S grows to 30.5 GiB; relations in CPU memory, hash table in GPU memory,
NVLink 2.0 Coherence.  Panel (a) reports throughput, panel (b) the
build/probe time breakdown.
"""

from __future__ import annotations

from repro.bench.common import FigureResult
from repro.core.join.nopa import NoPartitioningJoin
from repro.hardware.topology import ibm_ac922
from repro.workloads.builders import workload_ratio

# Figure 18b's build shares: 71% at 1:1 ("the build phase takes 71% of
# the time"), shrinking to 13% at 1:16.
PAPER = {
    "1:1": {"throughput": 2.41, "build_pct": 71.0},
    "1:2": {"throughput": 2.81, "build_pct": 55.0},
    "1:4": {"throughput": 3.24, "build_pct": 38.0},
    "1:8": {"throughput": 3.60, "build_pct": 24.0},
    "1:16": {"throughput": 3.85, "build_pct": 13.0},
}

RATIOS = (1, 2, 4, 8, 16)


def run(scale: float = 2.0**-11, ratios=RATIOS) -> FigureResult:
    result = FigureResult(
        figure="Figure 18",
        title="Build-to-probe ratios on NVLink 2.0",
        unit="G Tuples/s, %",
        paper=PAPER,
        notes=(
            "The build phase is ~45% slower per tuple than the probe "
            "phase (atomics); its time share shrinks as the probe side "
            "grows, so throughput rises with the ratio."
        ),
    )
    machine = ibm_ac922()
    for ratio in ratios:
        workload = workload_ratio(ratio, scale=scale)
        join = NoPartitioningJoin(machine, hash_table_placement="gpu")
        res = join.run(workload.r, workload.s)
        result.add(
            f"1:{ratio}",
            throughput=res.throughput_gtuples,
            build_pct=100.0 * res.build_fraction,
        )
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
