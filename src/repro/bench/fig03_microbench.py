"""Figure 3: bandwidth and latency microbenchmarks.

Three panels of 4-byte reads on 1 GiB of data:

* (a) NVLink 2.0 vs. PCI-e 3.0, UPI, X-Bus (GPU/CPU interconnects),
* (b) NVLink 2.0 vs. Xeon and POWER9 CPU memory,
* (c) NVLink 2.0 vs. V100 GPU memory.

The microbenchmark issues *dependent* reads, so the simulated values
are the raw spec rates (the cost model's independent-access uplift does
not apply here); end-to-end latencies come from the topology's path
model.
"""

from __future__ import annotations

from repro.bench.common import FigureResult
from repro.costmodel.model import CostModel
from repro.hardware.specs import (
    DDR4_POWER9,
    DDR4_XEON,
    HBM2_V100,
    NVLINK2,
    PCIE3,
    UPI,
    XBUS,
)
from repro.hardware.topology import ibm_ac922, intel_xeon_v100
from repro.utils.units import GIB, NS

PAPER = {
    "nvlink2": {"seq": 63.0, "random": 2.8, "latency_ns": 434.0},
    "pcie3": {"seq": 12.0, "random": 0.2, "latency_ns": 790.0},
    "upi": {"seq": 32.0, "random": 2.0, "latency_ns": 121.0},
    "xbus": {"seq": 31.0, "random": 1.1, "latency_ns": 211.0},
    "xeon-memory": {"seq": 81.0, "random": 2.7, "latency_ns": 70.0},
    "power9-memory": {"seq": 117.0, "random": 3.6, "latency_ns": 68.0},
    "gpu-memory": {"seq": 729.0, "random": 22.3, "latency_ns": 282.0},
}


def run() -> FigureResult:
    result = FigureResult(
        figure="Figure 3",
        title="Interconnect/memory microbenchmarks (4-byte reads)",
        unit="GiB/s, ns",
        paper=PAPER,
        notes=(
            "NVLink 2.0: 5x the sequential and 14x the random bandwidth of "
            "PCI-e 3.0 at 45% lower latency; within 2x of CPU memory "
            "bandwidth but 6x its latency."
        ),
    )
    ibm = ibm_ac922()
    intel = intel_xeon_v100()
    ibm_cm = CostModel(ibm)
    intel_cm = CostModel(intel)

    # Panel (a): interconnects. Paths: GPU->CPU memory over NVLink/PCIe;
    # CPU->remote CPU memory over X-Bus/UPI.
    for label, spec, cm, proc, mem in (
        ("nvlink2", NVLINK2, ibm_cm, "gpu0", "cpu0-mem"),
        ("pcie3", PCIE3, intel_cm, "gpu0", "cpu0-mem"),
        ("upi", UPI, intel_cm, "cpu0", "cpu1-mem"),
        ("xbus", XBUS, ibm_cm, "cpu0", "cpu1-mem"),
    ):
        result.add(
            label,
            seq=min(cm.sequential_bandwidth(proc, mem), spec.seq_bw) / GIB,
            random=spec.random_bw_4b / GIB,
            latency_ns=(spec.latency + _memory_of(mem).latency * 0) / NS
            if label in ("nvlink2", "pcie3", "upi", "xbus")
            else 0.0,
        )

    # Panels (b) and (c): memories, accessed locally.
    for label, spec in (
        ("xeon-memory", DDR4_XEON),
        ("power9-memory", DDR4_POWER9),
        ("gpu-memory", HBM2_V100),
    ):
        result.add(
            label,
            seq=spec.seq_bw / GIB,
            random=spec.random_bw_4b / GIB,
            latency_ns=spec.latency / NS,
        )
    return result


def _memory_of(mem_name: str):
    if mem_name.startswith("cpu"):
        return DDR4_POWER9
    return HBM2_V100


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
