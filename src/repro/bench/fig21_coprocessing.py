"""Figure 21: cooperative CPU+GPU scale-up.

Workloads A/B/C (Table 2, up to 34 GiB) under four execution
strategies: CPU-only (NOPA), Het (shared table in CPU memory),
GPU+Het (local table copies), and GPU-only.  Panel (b) breaks down the
build and probe phases of workload C.
"""

from __future__ import annotations

from typing import Dict

from repro.bench.common import FigureResult
from repro.core.join.coop import CoopJoin
from repro.core.join.nopa import NoPartitioningJoin
from repro.hardware.topology import ibm_ac922
from repro.workloads.builders import workload_a, workload_b, workload_c

PAPER = {
    "A": {"cpu": 0.52, "het": 0.82, "gpu+het": 2.92, "gpu": 3.81},
    "B": {"cpu": 0.50, "het": 1.64, "gpu+het": 4.85, "gpu": 4.16},
    "C": {"cpu": 0.54, "het": 0.49, "gpu+het": 0.86, "gpu": 2.34},
}

#: Figure 21b (workload C, seconds per phase).
PAPER_PHASES = {
    "cpu": {"build": 2.12, "probe": 1.68},
    "het": {"build": 2.15, "probe": 1.14},
    "gpu+het": {"build": 0.63, "probe": 0.25},
    "gpu": {"build": 0.24, "probe": 0.25},
}


def run(scale: float = 2.0**-12) -> FigureResult:
    result = FigureResult(
        figure="Figure 21a",
        title="CPU/GPU co-processing strategies",
        paper=PAPER,
        notes=(
            "Using a GPU never hurts: every GPU strategy matches or beats "
            "CPU-only. GPU-only wins on A and C; the cooperative GPU+Het "
            "wins on B (cache-sized table, local copies)."
        ),
    )
    machine = ibm_ac922()
    workloads = {
        "A": workload_a(scale=scale),
        "B": workload_b(scale=scale),
        "C": workload_c(scale=scale),
    }
    for name, workload in workloads.items():
        values = {}
        values["cpu"] = (
            NoPartitioningJoin(machine, hash_table_placement="cpu")
            .run(workload.r, workload.s, processor="cpu0")
            .throughput_gtuples
        )
        for strategy in ("het", "gpu+het"):
            coop = CoopJoin(machine, strategy=strategy)
            values[strategy] = coop.run(
                workload.r, workload.s, workers=("cpu0", "gpu0")
            ).throughput_gtuples
        values["gpu"] = _gpu_only(machine, workload)
        result.add(name, **values)
    return result


def run_phases(scale: float = 2.0**-12) -> Dict[str, Dict[str, float]]:
    """Figure 21b: per-phase seconds for workload C."""
    machine = ibm_ac922()
    workload = workload_c(scale=scale)
    phases: Dict[str, Dict[str, float]] = {}
    cpu = NoPartitioningJoin(machine, hash_table_placement="cpu").run(
        workload.r, workload.s, processor="cpu0"
    )
    phases["cpu"] = {
        "build": cpu.build_cost.seconds,
        "probe": cpu.probe_cost.seconds,
    }
    for strategy in ("het", "gpu+het"):
        res = CoopJoin(machine, strategy=strategy).run(
            workload.r, workload.s, workers=("cpu0", "gpu0")
        )
        phases[strategy] = {"build": res.build_seconds, "probe": res.probe_seconds}
    gpu = NoPartitioningJoin(machine, hash_table_placement="gpu").run(
        workload.r, workload.s
    )
    phases["gpu"] = {
        "build": gpu.build_cost.seconds,
        "probe": gpu.probe_cost.seconds,
    }
    return phases


def _gpu_only(machine, workload) -> float:
    return (
        NoPartitioningJoin(machine, hash_table_placement="gpu")
        .run(workload.r, workload.s)
        .throughput_gtuples
    )


def main() -> None:
    print(run().render())
    print()
    print("Figure 21b: workload C phase times (seconds, sim vs paper):")
    phases = run_phases()
    for strategy, times in phases.items():
        paper = PAPER_PHASES[strategy]
        print(
            f"  {strategy:8s} build {times['build']:.2f}s "
            f"(paper {paper['build']}) probe {times['probe']:.2f}s "
            f"(paper {paper['probe']})"
        )


if __name__ == "__main__":
    main()
