"""Figure 15: TPC-H query 6 scaling (SF 100-1000).

Branching and predicated variants on the POWER9 CPU, the GPU over
NVLink 2.0, and the GPU over PCI-e 3.0; 8.9-89.4 GiB working sets read
from CPU memory (nothing cached in GPU memory).
"""

from __future__ import annotations

from dataclasses import replace

from repro.bench.common import FigureResult
from repro.core.ops.q6 import TpchQ6
from repro.hardware.topology import ibm_ac922, intel_xeon_v100
from repro.transfer.methods import get_method
from repro.workloads.tpch import lineitem_q6

#: approximate curve readings at SF 1000 (the figure reports curves,
#: not labeled points): CPU is highest, NVLink branching beats NVLink
#: predication, PCI-e is 9.8-15.8x below.
PAPER = {
    "SF1000": {
        "cpu-predicated": 6.9,
        "cpu-branching": 4.0,
        "nvlink-branching": 4.1,
        "nvlink-predicated": 3.7,
        "pcie-branching": 0.5,
        "pcie-predicated": 0.4,
    }
}

SCALE_FACTORS = (100, 250, 500, 750, 1000)


def run(scale: float = 2.0**-10, scale_factors=SCALE_FACTORS) -> FigureResult:
    result = FigureResult(
        figure="Figure 15",
        title="TPC-H Q6 scaling (branching vs. predication)",
        paper=PAPER,
        notes=(
            "CPU achieves the highest throughput (up to 67% over NVLink); "
            "NVLink 2.0 reaches up to 9.8x PCI-e 3.0; branching beats "
            "predication on the GPU because low selectivity skips "
            "transfers."
        ),
    )
    ibm = ibm_ac922()
    intel = intel_xeon_v100()
    configs = [
        ("cpu-predicated", ibm, "cpu0", "predicated", "coherence"),
        ("cpu-branching", ibm, "cpu0", "branching", "coherence"),
        ("nvlink-branching", ibm, "gpu0", "branching", "coherence"),
        ("nvlink-predicated", ibm, "gpu0", "predicated", "coherence"),
        ("pcie-branching", intel, "gpu0", "branching", "zero_copy"),
        ("pcie-predicated", intel, "gpu0", "predicated", "zero_copy"),
    ]
    for sf in scale_factors:
        workload = lineitem_q6(scale_factor=sf, scale=scale)
        values = {}
        for series, machine, proc, variant, method in configs:
            op = TpchQ6(machine, variant=variant, transfer_method=method)
            # Allocate lineitem as the transfer method requires (Table 1).
            wl = replace(workload, kind=get_method(method).required_kind)
            values[series] = op.run(wl, processor=proc).throughput_gtuples
        result.add(f"SF{sf}", **values)
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
