"""Run every figure reproduction and print paper-vs-simulated tables.

Usage::

    python -m repro.bench.run_all                      # all figures
    python -m repro.bench.run_all --quick              # CI smoke subset
    python -m repro.bench.run_all --manifest-out m.json
    python -m repro.bench.run_all --trajectory BENCH_pr2.json

``--manifest-out`` runs the two reference joins (NOPA + cooperative
Het) with observability enabled and writes their schema-versioned run
manifests.  ``--trajectory`` additionally captures every figure's
paper-vs-simulated numbers into one benchmark trajectory file, so a
later PR can diff model output against this one.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.bench import (
    ablations,
    multi_gpu,
    fig01_bandwidth,
    fig11_placement,
    fig03_microbench,
    fig12_transfer_methods,
    fig13_data_locality,
    fig14_hashtable_locality,
    fig15_tpch_q6,
    fig16_probe_scaling,
    fig17_build_scaling,
    fig18_build_probe_ratio,
    fig19_skew,
    fig20_selectivity,
    fig21_coprocessing,
)

MODULES = (
    fig01_bandwidth,
    fig03_microbench,
    fig11_placement,
    fig12_transfer_methods,
    fig13_data_locality,
    fig14_hashtable_locality,
    fig15_tpch_q6,
    fig16_probe_scaling,
    fig17_build_scaling,
    fig18_build_probe_ratio,
    fig19_skew,
    fig20_selectivity,
    fig21_coprocessing,
    ablations,
    multi_gpu,
)

#: fast subset exercised by the CI bench-smoke job: one figure per
#: subsystem (bandwidth model, placement tree, transfer methods,
#: co-processing) rather than the full 15-module sweep.
QUICK_MODULES = (
    fig01_bandwidth,
    fig11_placement,
    fig12_transfer_methods,
    fig21_coprocessing,
)


def _collect_manifests(scale: float):
    from repro.hardware.topology import ibm_ac922
    from repro.obs.report import report_coop, report_nopa
    from repro.workloads.builders import workload_a

    machine = ibm_ac922()
    workload = workload_a(scale=scale)
    _, nopa = report_nopa(machine, workload, method="coherence")
    print()
    _, coop = report_coop(machine, workload, strategy="het")
    return [nopa, coop]


def _write_trajectory(path: str, manifests, quick: bool) -> str:
    import json

    from repro.bench import export
    from repro.obs.manifest import MANIFEST_SCHEMA_VERSION

    figures = [
        export.figure_to_dict(figure)
        for figure in export.run_all_figures()
    ]
    doc = {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "generator": "repro.bench.run_all",
        "quick": quick,
        "figures": figures,
        "runs": [manifest.to_dict() for manifest in manifests],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="run only the fast smoke subset of figures",
    )
    parser.add_argument(
        "--manifest-out", default=None, metavar="PATH",
        help="write observability run manifests for the reference joins",
    )
    parser.add_argument(
        "--trajectory", default=None, metavar="PATH",
        help="write a benchmark trajectory file (figures + run manifests)",
    )
    parser.add_argument(
        "--scale", type=float, default=2.0**-13,
        help="execution scale for the manifest reference joins",
    )
    args = parser.parse_args(argv)

    for module in QUICK_MODULES if args.quick else MODULES:
        module.main()
        print()

    if args.manifest_out or args.trajectory:
        manifests = _collect_manifests(scale=args.scale)
        if args.manifest_out:
            from repro.obs.manifest import write_manifest_file

            path = write_manifest_file(
                args.manifest_out, manifests, generator="repro.bench.run_all"
            )
            print(f"\nwrote {path} ({len(manifests)} runs)")
        if args.trajectory:
            path = _write_trajectory(args.trajectory, manifests, args.quick)
            print(f"wrote {path}")


if __name__ == "__main__":
    main()
