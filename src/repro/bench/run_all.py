"""Run every figure reproduction and print paper-vs-simulated tables.

Usage::

    python -m repro.bench.run_all
"""

from __future__ import annotations

from repro.bench import (
    ablations,
    multi_gpu,
    fig01_bandwidth,
    fig11_placement,
    fig03_microbench,
    fig12_transfer_methods,
    fig13_data_locality,
    fig14_hashtable_locality,
    fig15_tpch_q6,
    fig16_probe_scaling,
    fig17_build_scaling,
    fig18_build_probe_ratio,
    fig19_skew,
    fig20_selectivity,
    fig21_coprocessing,
)

MODULES = (
    fig01_bandwidth,
    fig03_microbench,
    fig11_placement,
    fig12_transfer_methods,
    fig13_data_locality,
    fig14_hashtable_locality,
    fig15_tpch_q6,
    fig16_probe_scaling,
    fig17_build_scaling,
    fig18_build_probe_ratio,
    fig19_skew,
    fig20_selectivity,
    fig21_coprocessing,
    ablations,
    multi_gpu,
)


def main() -> None:
    for module in MODULES:
        module.main()
        print()


if __name__ == "__main__":
    main()
