"""Diff run-manifest phase costs against a committed baseline.

Usage::

    python -m repro.bench.diff_manifest CURRENT BASELINE
    python -m repro.bench.diff_manifest run_manifest.json BENCH_pr2.json

Both files may be plain manifest documents (``write_manifest_file``
output) or benchmark trajectory files (``run_all --trajectory``); each
carries a top-level ``runs`` list.  Runs are matched by ``kind`` and
phases by ``label``; for every matched phase the tool asserts that
``seconds``, the ``bottleneck`` resource, and the full occupancy
vector agree within tolerance.  Matched runs also compare their
*populated section sets* (top-level run keys with truthy values): a
section the baseline had but the current document lost is always an
error, while a section the baseline predates (e.g. the schema-1.2
``optimizer`` record) is tolerated under ``--ignore-new-runs``.  CI
runs this after the reduced figure sweep so a refactor that silently
shifts any per-phase cost fails the build.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Any, Dict, Iterator, List, Optional

#: default relative tolerance — generous enough for float-order
#: differences inside one arithmetic refactor, far below any real
#: model change (which moves costs by percents).
DEFAULT_REL_TOL = 1e-6
DEFAULT_ABS_TOL = 1e-12


def _load_runs(path: str) -> List[Dict[str, Any]]:
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    runs = document.get("runs")
    if not isinstance(runs, list):
        raise ValueError(f"{path}: no top-level 'runs' list")
    return runs


def _runs_by_kind(runs: List[Dict[str, Any]], path: str) -> Dict[str, Dict[str, Any]]:
    by_kind: Dict[str, Dict[str, Any]] = {}
    for run in runs:
        kind = run.get("kind", "")
        if kind in by_kind:
            raise ValueError(f"{path}: duplicate run kind {kind!r}")
        by_kind[kind] = run
    return by_kind


def _phases_by_label(run: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    phases: Dict[str, Dict[str, Any]] = {}
    for phase in run.get("phases", []):
        phases[phase.get("label", "")] = phase
    return phases


def _populated_sections(run: Dict[str, Any]) -> set:
    """Top-level run keys carrying a truthy value.

    Optional sections (``resilience``, ``optimizer``) are serialized as
    ``null`` when unused, so presence-of-key alone would make every old
    baseline look incomplete; only a *populated* section counts.
    """
    return {key for key, value in run.items() if value}


def _close(a: float, b: float, rel_tol: float, abs_tol: float) -> bool:
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def iter_differences(
    current: List[Dict[str, Any]],
    baseline: List[Dict[str, Any]],
    rel_tol: float = DEFAULT_REL_TOL,
    abs_tol: float = DEFAULT_ABS_TOL,
    allow_new_runs: bool = False,
) -> Iterator[str]:
    """Yield one human-readable line per phase-cost mismatch.

    ``allow_new_runs`` tolerates additions the baseline predates — both
    whole run kinds absent from the baseline *and* new populated
    sections inside a matched run (a newer schema adding e.g. an
    ``optimizer`` record to a run the baseline already had).  Every
    kind and section the baseline *does* have is still matched exactly:
    a lost section is an error regardless of the flag.
    """
    current_by_kind = _runs_by_kind(current, "current")
    baseline_by_kind = _runs_by_kind(baseline, "baseline")
    for kind in sorted(set(current_by_kind) | set(baseline_by_kind)):
        if kind not in current_by_kind:
            yield f"run {kind!r}: missing from current manifest"
            continue
        if kind not in baseline_by_kind:
            if not allow_new_runs:
                yield f"run {kind!r}: not in baseline (new run kind)"
            continue
        base_sections = _populated_sections(baseline_by_kind[kind])
        cur_sections = _populated_sections(current_by_kind[kind])
        for section in sorted(base_sections - cur_sections):
            yield f"run {kind!r}: section {section!r} lost vs baseline"
        for section in sorted(cur_sections - base_sections):
            if not allow_new_runs:
                yield (
                    f"run {kind!r}: section {section!r} not in baseline "
                    f"(new section)"
                )
        want = _phases_by_label(baseline_by_kind[kind])
        got = _phases_by_label(current_by_kind[kind])
        for label in sorted(set(want) | set(got)):
            prefix = f"run {kind!r} phase {label!r}"
            if label not in got:
                yield f"{prefix}: missing from current manifest"
                continue
            if label not in want:
                yield f"{prefix}: not in baseline (new phase)"
                continue
            w, g = want[label], got[label]
            if not _close(g["seconds"], w["seconds"], rel_tol, abs_tol):
                yield (
                    f"{prefix}: seconds {g['seconds']!r} != baseline "
                    f"{w['seconds']!r}"
                )
            if g["bottleneck"] != w["bottleneck"]:
                yield (
                    f"{prefix}: bottleneck {g['bottleneck']!r} != baseline "
                    f"{w['bottleneck']!r}"
                )
            w_occ = w.get("occupancy", {})
            g_occ = g.get("occupancy", {})
            for resource in sorted(set(w_occ) | set(g_occ)):
                if resource not in g_occ:
                    yield f"{prefix}: occupancy lost resource {resource!r}"
                elif resource not in w_occ:
                    yield f"{prefix}: occupancy gained resource {resource!r}"
                elif not _close(
                    g_occ[resource], w_occ[resource], rel_tol, abs_tol
                ):
                    yield (
                        f"{prefix}: occupancy[{resource}] "
                        f"{g_occ[resource]!r} != baseline {w_occ[resource]!r}"
                    )


def diff_files(
    current_path: str,
    baseline_path: str,
    rel_tol: float = DEFAULT_REL_TOL,
    abs_tol: float = DEFAULT_ABS_TOL,
    allow_new_runs: bool = False,
) -> List[str]:
    """All phase-cost differences between two manifest files."""
    return list(
        iter_differences(
            _load_runs(current_path),
            _load_runs(baseline_path),
            rel_tol=rel_tol,
            abs_tol=abs_tol,
            allow_new_runs=allow_new_runs,
        )
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly generated manifest file")
    parser.add_argument("baseline", help="committed baseline (e.g. BENCH_pr2.json)")
    parser.add_argument("--rel-tol", type=float, default=DEFAULT_REL_TOL)
    parser.add_argument("--abs-tol", type=float, default=DEFAULT_ABS_TOL)
    parser.add_argument(
        "--ignore-new-runs",
        action="store_true",
        help="tolerate run kinds and per-run sections the baseline "
        "predates (e.g. diffing a PR-8 document, whose runs carry an "
        "'optimizer' section, against the PR-4 baseline)",
    )
    args = parser.parse_args(argv)
    differences = diff_files(
        args.current,
        args.baseline,
        rel_tol=args.rel_tol,
        abs_tol=args.abs_tol,
        allow_new_runs=args.ignore_new_runs,
    )
    if differences:
        print(f"{len(differences)} phase-cost difference(s) vs baseline:")
        for line in differences:
            print(f"  {line}")
        return 1
    print(
        f"per-phase costs match {args.baseline} "
        f"(rel_tol={args.rel_tol}, abs_tol={args.abs_tol})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
