"""Figure 1: theoretical vs. measured bandwidth.

"NVLink 2.0 eliminates the GPU's main-memory access disadvantage
compared to the CPU."  Bars (GiB/s): theoretical memory 158.9,
NVLink 2.0 124.6, PCI-e 3.0 24.7; measured 120.7, 102.6, 20.5.

The paper's bars are *bidirectional* (read+write) bandwidths; the
simulated values combine the per-direction measured numbers with the
duplex model of :class:`~repro.hardware.interconnect.Interconnect`.
"""

from __future__ import annotations

from repro.bench.common import FigureResult
from repro.hardware.interconnect import Interconnect
from repro.hardware.specs import DDR4_POWER9, NVLINK2, PCIE3, theoretical_vs_measured
from repro.utils.units import GIB

PAPER = {
    "memory": {"theoretical": 158.9, "measured": 120.7},
    "nvlink2": {"theoretical": 124.6, "measured": 102.6},
    "pcie3": {"theoretical": 24.7, "measured": 20.5},
}

#: duplex efficiency of a read+write 1:1 mix (protocol acks and turn-
#: around): links carry both directions, DRAM interleaves them.
_LINK_DUPLEX_EFFICIENCY = 0.82
_DRAM_MIX_EFFICIENCY = 1.032


def run() -> FigureResult:
    result = FigureResult(
        figure="Figure 1",
        title="Theoretical vs. measured bandwidth (bidirectional)",
        unit="GiB/s",
        paper=PAPER,
        notes=(
            "NVLink 2.0's measured bandwidth is within 15% of CPU memory; "
            "PCI-e 3.0 is 5-6x below both."
        ),
    )
    specs = theoretical_vs_measured()
    memory_theoretical, _ = specs["memory"]
    result.add(
        "memory",
        theoretical=memory_theoretical / GIB,
        measured=DDR4_POWER9.seq_bw * _DRAM_MIX_EFFICIENCY / GIB,
    )
    for name, spec in (("nvlink2", NVLINK2), ("pcie3", PCIE3)):
        link = Interconnect(spec=spec, endpoint_a="cpu0", endpoint_b="gpu0")
        result.add(
            name,
            theoretical=2 * spec.electrical_bw / GIB,
            measured=link.duplex_bandwidth() * _LINK_DUPLEX_EFFICIENCY / GIB,
        )
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
