"""Extension bench: multi-GPU hash-table placement (Section 6.3).

The paper describes — without a dedicated figure — that multi-GPU
systems should replicate small tables (GPU+Het style) and *interleave*
large tables over the GPUs' memories, because:

1. using only GPUs avoids computational skew,
2. distributing large tables within GPU memory frees CPU memory
   bandwidth for loading the base relations, and
3. interleaving exercises the full bidirectional link bandwidth.

This bench compares one GPU vs. two GPUs with replicated and
interleaved placements, and against the single-GPU hybrid spill for a
table larger than one GPU.
"""

from __future__ import annotations

from repro.bench.common import FigureResult
from repro.core.join.multigpu import MultiGpuJoin
from repro.core.join.nopa import NoPartitioningJoin
from repro.hardware.topology import ibm_ac922
from repro.memory.allocator import OutOfMemoryError
from repro.workloads.builders import workload_a, workload_ratio


def run(scale: float = 2.0**-12) -> FigureResult:
    result = FigureResult(
        figure="Extension: multi-GPU",
        title="Multi-GPU hash-table placement (Section 6.3)",
        notes=(
            "Small tables: replicate (local probes on every GPU). Large "
            "tables: interleave over GPU memories — the table no longer "
            "fits one GPU, yet stays entirely in (remote) GPU memory, "
            "beating the single-GPU hybrid spill to CPU memory."
        ),
    )
    machine = ibm_ac922(gpus=2, gpu_mesh=True)

    # Small table (workload A): one GPU vs two, replicated vs interleaved.
    wl = workload_a(scale=scale)
    one_gpu = NoPartitioningJoin(machine, hash_table_placement="gpu").run(
        wl.r, wl.s
    )
    values = {"one-gpu": one_gpu.throughput_gtuples}
    for placement in ("replicated", "interleaved"):
        res = MultiGpuJoin(machine, placement=placement).run(
            wl.r, wl.s, workers=("gpu0", "gpu1")
        )
        values[placement] = res.throughput_gtuples
    result.add("A (2 GiB table)", **values)

    # Large table (24 GiB): exceeds one GPU; interleaving over two GPUs
    # keeps it in GPU memory where the single GPU must spill.
    big = workload_ratio(1, scale=2.0**-13, modeled_r=2048 * 10**6)
    values = {}
    try:
        NoPartitioningJoin(machine, hash_table_placement="gpu").run(big.r, big.s)
        raise AssertionError("32 GiB table unexpectedly fit one GPU")
    except OutOfMemoryError:
        pass
    values["one-gpu"] = (
        NoPartitioningJoin(machine, hash_table_placement="hybrid")
        .run(big.r, big.s)
        .throughput_gtuples
    )
    values["interleaved"] = (
        MultiGpuJoin(machine, placement="interleaved")
        .run(big.r, big.s, workers=("gpu0", "gpu1"))
        .throughput_gtuples
    )
    result.add("C 2048M (32 GiB table)", **values)

    # GPU-count scaling of the interleaved placement (the AC922 takes
    # up to four GPUs, two per socket).
    four_gpu = ibm_ac922(gpus=4, gpu_mesh=True)
    values = {}
    for count in (2, 4):
        workers = tuple(f"gpu{i}" for i in range(count))
        values[f"{count}-gpus"] = (
            MultiGpuJoin(four_gpu, placement="interleaved")
            .run(big.r, big.s, workers=workers)
            .throughput_gtuples
        )
    result.add("C 2048M scaling", **values)
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
