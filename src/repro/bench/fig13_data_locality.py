"""Figure 13: base-relation locality (0-3 interconnect hops).

Workloads A/B/C scaled down to fit GPU memory (13, 12, 10 GiB), hash
table in GPU memory, relations stored in GPU memory (0 hops), local CPU
memory (1 hop over NVLink 2.0), remote CPU memory (2 hops, +X-Bus), and
remote GPU memory (3 hops).
"""

from __future__ import annotations

from repro.bench.common import FigureResult
from repro.core.join.nopa import NoPartitioningJoin
from repro.hardware.topology import ibm_ac922
from repro.utils.units import GIB
from repro.workloads.builders import workload_a, workload_b, workload_c

PAPER = {
    "A": {"gpu": 4.67, "cpu": 3.82, "rcpu": 2.52, "rgpu": 2.24},
    "B": {"gpu": 19.08, "cpu": 4.18, "rcpu": 2.61, "rgpu": 2.29},
    "C": {"gpu": 2.56, "cpu": 2.64, "rcpu": 2.59, "rgpu": 2.51},
}

LOCATIONS = {
    "gpu": "gpu0-mem",  # 0 hops
    "cpu": "cpu0-mem",  # 1 hop (NVLink 2.0)
    "rcpu": "cpu1-mem",  # 2 hops (NVLink + X-Bus)
    "rgpu": "gpu1-mem",  # 3 hops (NVLink + X-Bus + NVLink)
}

#: target data sizes (Section 7.2.2): 13 GiB, 12 GiB, 10 GiB.
_SIZE_SCALES = {
    "A": 13 * GIB / (34 * GIB),
    "B": 12 * GIB / (32 * GIB),
    "C": 10 * GIB / (16.0 * GIB),  # full C at 8-byte tuples is ~15.3 GiB
}


def _workloads(scale: float):
    return {
        "A": workload_a(scale=scale, size_scale=_SIZE_SCALES["A"]),
        "B": workload_b(scale=scale, size_scale=_SIZE_SCALES["B"]),
        "C": workload_c(scale=scale, size_scale=_SIZE_SCALES["C"]),
    }


def run(scale: float = 2.0**-12) -> FigureResult:
    result = FigureResult(
        figure="Figure 13",
        title="Base-relation locality (hops 0-3), hash table in GPU memory",
        paper=PAPER,
        notes=(
            "A: throughput decreases 32-46% with hops; B: GPU memory is "
            "~5x a single hop (L2-cached table); C: flat — GPU-memory "
            "random accesses dominate, NVLink is not the bottleneck."
        ),
    )
    machine = ibm_ac922(gpus=2)
    for name, workload in _workloads(scale).items():
        values = {}
        for label, location in LOCATIONS.items():
            r = workload.r.placed(location)
            s = workload.s.placed(location)
            join = NoPartitioningJoin(
                machine, hash_table_placement="gpu", transfer_method="coherence"
            )
            values[label] = join.run(r, s, processor="gpu0").throughput_gtuples
        result.add(name, **values)
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
