"""Export reproduced figures as JSON or CSV for external plotting.

Usage::

    python -m repro.bench.export --format json > figures.json
    python -m repro.bench.export --format csv --out results/
"""

from __future__ import annotations

import argparse
import csv
import io
import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.bench.common import FigureResult


def figure_to_dict(result: FigureResult) -> Dict:
    """A FigureResult as a JSON-ready dict (sim + paper values)."""
    return {
        "figure": result.figure,
        "title": result.title,
        "unit": result.unit,
        "notes": result.notes,
        "series": result.series_names(),
        "rows": [
            {
                "label": row.label,
                "simulated": dict(row.values),
                "paper": {
                    series: result.paper_value(row.label, series)
                    for series in row.values
                    if result.paper_value(row.label, series) is not None
                },
            }
            for row in result.rows
        ],
    }


def figure_to_csv(result: FigureResult) -> str:
    """A FigureResult as CSV text (label, series, simulated, paper)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["label", "series", "simulated", "paper"])
    for row in result.rows:
        for series, value in row.values.items():
            paper = result.paper_value(row.label, series)
            writer.writerow(
                [row.label, series, value, "" if paper is None else paper]
            )
    return buffer.getvalue()


def _slug(figure: str) -> str:
    return (
        figure.lower()
        .replace(":", "")
        .replace(" ", "_")
        .replace("/", "-")
    )


def run_all_figures(scale: float = 2.0**-12) -> List[FigureResult]:
    """Run every figure reproduction once (shared with the report)."""
    from repro.bench import (
        ablations,
        fig01_bandwidth,
        fig03_microbench,
        fig12_transfer_methods,
        fig13_data_locality,
        fig14_hashtable_locality,
        fig15_tpch_q6,
        fig16_probe_scaling,
        fig17_build_scaling,
        fig18_build_probe_ratio,
        fig19_skew,
        fig20_selectivity,
        fig21_coprocessing,
        multi_gpu,
    )

    return [
        fig01_bandwidth.run(),
        fig03_microbench.run(),
        fig12_transfer_methods.run(scale=scale),
        fig13_data_locality.run(scale=scale),
        fig14_hashtable_locality.run(scale=scale),
        fig15_tpch_q6.run(),
        fig16_probe_scaling.run(),
        fig17_build_scaling.run(),
        fig18_build_probe_ratio.run(scale=scale),
        fig19_skew.run(scale=scale),
        fig20_selectivity.run(scale=scale),
        fig21_coprocessing.run(scale=scale),
        ablations.run_hybrid_vs_spill(),
        multi_gpu.run(scale=scale),
    ]


def export_json(results: List[FigureResult]) -> str:
    return json.dumps([figure_to_dict(r) for r in results], indent=2)


def export_csv_files(results: List[FigureResult], out_dir: Path) -> List[Path]:
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for result in results:
        path = out_dir / f"{_slug(result.figure)}.csv"
        path.write_text(figure_to_csv(result))
        written.append(path)
    return written


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--format", choices=("json", "csv"), default="json")
    parser.add_argument("--out", default=None, help="output directory for CSV")
    parser.add_argument("--scale", type=float, default=2.0**-12)
    args = parser.parse_args(argv)
    results = run_all_figures(scale=args.scale)
    if args.format == "json":
        print(export_json(results))
    else:
        out_dir = Path(args.out or "figure_data")
        for path in export_csv_files(results, out_dir):
            print(path)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
