"""Benchmark harness: one module per table/figure of the evaluation.

Every module exposes

* ``PAPER`` — the values the paper reports (read off its figures),
* ``run(...) -> FigureResult`` — regenerates the figure's rows on the
  simulated machines, and
* ``main()`` — prints the simulated values next to the paper's.

The pytest-benchmark targets in ``benchmarks/`` call ``run`` and assert
the *shape* claims (who wins, by roughly what factor, where crossovers
fall); EXPERIMENTS.md records paper-vs-simulated numbers.
"""

from repro.bench.common import FigureResult, SeriesRow

__all__ = ["FigureResult", "SeriesRow"]
