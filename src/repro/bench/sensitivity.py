"""Calibration sensitivity analysis.

Perturbs each fitted calibration constant by ±20% and measures how much
the headline reproduction anchors move.  This quantifies the claim in
docs/calibration.md that the reproduced *shapes* are robust to modest
recalibration — and identifies the stiff constants (the ones a user
must re-fit first when porting the model to different hardware).

Anchors used (cheap to evaluate, covering distinct regimes):

* Figure 12 / Coherence on NVLink (interconnect-bound probe),
* Figure 18 / 1:1 build share (atomic-bound build),
* Figure 14 / workload A with a CPU-resident table (random-bound probe),
* Figure 21 / CPU-only workload A (CPU-side model).
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.bench.common import FigureResult
from repro.core.join.nopa import NoPartitioningJoin
from repro.costmodel.calibration import DEFAULT_CALIBRATION, Calibration
from repro.hardware.topology import ibm_ac922
from repro.workloads.builders import workload_a, workload_ratio

#: scalar constants to perturb (dict-valued constants are perturbed
#: uniformly across their entries).
SCALAR_CONSTANTS = (
    "shared_build_contention",
    "per_hop_random_penalty",
    "l2_random_rate",
    "llc_random_rate",
    "random_sector_bytes",
    "join_pipeline_overhead",
)
DICT_CONSTANTS = (
    "independent_access_factor",
    "atomic_rate",
    "issue_efficiency",
    "dram_concurrency",
)


def _perturbed(name: str, factor: float) -> Calibration:
    """A calibration with one constant scaled by ``factor``."""
    base = DEFAULT_CALIBRATION
    value = getattr(base, name)
    if isinstance(value, dict):
        new_value = {k: v * factor for k, v in value.items()}
    else:
        new_value = value * factor
    return dataclasses.replace(base, **{name: new_value})


def _anchors(calibration: Calibration, scale: float) -> Dict[str, float]:
    """The four anchor metrics under one calibration."""
    machine = ibm_ac922()
    wl_a = workload_a(scale=scale)
    wl_ratio = workload_ratio(1, scale=scale)

    coherence = NoPartitioningJoin(
        machine, hash_table_placement="gpu", calibration=calibration
    ).run(wl_a.r, wl_a.s)
    ratio_run = NoPartitioningJoin(
        machine, hash_table_placement="gpu", calibration=calibration
    ).run(wl_ratio.r, wl_ratio.s)
    cpu_table = NoPartitioningJoin(
        machine, hash_table_placement="cpu", calibration=calibration
    ).run(wl_a.r, wl_a.s)
    cpu_only = NoPartitioningJoin(
        machine, hash_table_placement="cpu", calibration=calibration
    ).run(wl_a.r, wl_a.s, processor="cpu0")
    return {
        "fig12-coherence": coherence.throughput_gtuples,
        "fig18-build-share": 100.0 * ratio_run.build_fraction,
        "fig14-cpu-table": cpu_table.throughput_gtuples,
        "fig21-cpu-only": cpu_only.throughput_gtuples,
    }


def run(scale: float = 2.0**-14, perturbation: float = 0.2) -> FigureResult:
    """Max |relative anchor change| per constant, at ±perturbation."""
    result = FigureResult(
        figure="Sensitivity",
        title=(
            f"Anchor movement under ±{perturbation:.0%} calibration "
            "perturbations"
        ),
        unit="max |Δ| (%)",
        notes=(
            "Small numbers = the reproduction does not hinge on that "
            "constant; large numbers = a stiff constant that must be "
            "re-fitted on different hardware."
        ),
    )
    baseline = _anchors(DEFAULT_CALIBRATION, scale)
    for name in SCALAR_CONSTANTS + DICT_CONSTANTS:
        movements: Dict[str, float] = {}
        for factor in (1.0 - perturbation, 1.0 + perturbation):
            anchors = _anchors(_perturbed(name, factor), scale)
            for anchor, value in anchors.items():
                change = abs(value - baseline[anchor]) / abs(baseline[anchor])
                movements[anchor] = max(movements.get(anchor, 0.0), change)
        result.add(
            name, **{anchor: 100.0 * v for anchor, v in movements.items()}
        )
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
