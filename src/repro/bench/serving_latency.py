"""Open-loop serving-latency benchmark: tail latency under traffic.

The single-query benchmarks ask "how fast is one join?"; this one asks
the serving question: with a Poisson stream of mixed Q6/join requests
multiplexed over one simulated machine, what do the p50/p99
*virtual-time* latencies look like once co-running queries contend for
memory channels and interconnect bandwidth?

The load is open-loop (arrivals don't wait for completions), seeded,
and entirely virtual — the numbers are deterministic and committed as
``BENCH_pr9.json``, which CI regenerates with ``--quick`` and diffs
via ``repro.bench.diff_manifest``.  The document also embeds the
``nopa``/``coop[het]`` reference manifests so a second diff against
the PR-2 baseline (``--ignore-new-runs``) proves the serving layer
left single-query pricing untouched.

Usage::

    python -m repro.bench.serving_latency                # full load
    python -m repro.bench.serving_latency --quick --check-serving
    python -m repro.bench.serving_latency --quick --out BENCH_pr9.json
"""

from __future__ import annotations

import argparse
import contextlib
import io
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.costmodel.model import PhaseCost
from repro.logical.explain import MACHINES
from repro.obs.manifest import RunManifest, build_manifest, write_manifest_file
from repro.serve import QueryService, ServingReport, TenantQuota, percentile

#: deterministic arrival/workload sampling.
SEED = 20

#: the request mix (uniform draw per arrival).
MIX: Tuple[str, ...] = ("q6", "join-a", "join-b")

#: well-behaved tenants, assigned round-robin.
TENANTS: Tuple[str, ...] = ("alpha", "beta", "gamma")

#: a tenant with a tiny in-flight quota that bursts at t=0 — its
#: rejections exercise typed admission control on every run.
GREEDY_TENANT = "zeta"
GREEDY_QUOTA = TenantQuota(max_in_flight=2)
GREEDY_BURST = 8

#: mean inter-arrival gap (virtual seconds).  The mix's mean solo
#: makespan is ~0.36s, so this offers ~0.8 utilization — the classic
#: tail-latency regime: busy, but stable.
MEAN_GAP = 0.45

#: open-loop queries (greedy burst on top).
N_QUERIES = 400
QUICK_QUERIES = 120

#: headline percentile fractions.
P50 = 0.5
P99 = 0.99

MACHINE = "ibm-ac922"


def build_service() -> QueryService:
    return QueryService(
        machine=MACHINE,
        quotas={GREEDY_TENANT: GREEDY_QUOTA},
    )


def submit_load(service: QueryService, n_queries: int) -> None:
    """Seeded open-loop arrivals plus the greedy tenant's burst."""
    rng = np.random.default_rng(SEED)
    gaps = rng.exponential(MEAN_GAP, size=n_queries)
    picks = rng.integers(0, len(MIX), size=n_queries)
    arrival = 0.0
    for i in range(n_queries):
        arrival += float(gaps[i])
        service.submit(
            TENANTS[i % len(TENANTS)], MIX[int(picks[i])], arrival
        )
    for _ in range(GREEDY_BURST):
        service.submit(GREEDY_TENANT, "join-b", 0.0)


def latency_summary(report: ServingReport) -> Dict[str, Any]:
    """The headline numbers of one serving run."""
    latencies = report.latencies()
    return {
        "queries": len(report.served),
        "rejected": len(report.rejections),
        "p50_seconds": percentile(latencies, P50),
        "p99_seconds": percentile(latencies, P99),
        "max_seconds": max(latencies) if latencies else 0.0,
        "mean_seconds": (
            sum(latencies) / len(latencies) if latencies else 0.0
        ),
        "makespan": report.makespan,
        "peak_concurrency": report.peak_concurrency,
        "cache": report.cache,
    }


def latency_manifest(summary: Dict[str, Any], n_queries: int) -> RunManifest:
    """Tail latencies as a diffable run: percentiles become phases.

    ``diff_manifest`` compares phases by label with a relative seconds
    tolerance, so encoding p50/p99 as phase seconds turns the committed
    baseline into a tail-latency regression gate.
    """
    machine = MACHINES[MACHINE]()
    phases = [
        PhaseCost(
            seconds=summary["p50_seconds"],
            bottleneck="virtual-latency",
            occupancy={},
            label="p50",
        ),
        PhaseCost(
            seconds=summary["p99_seconds"],
            bottleneck="virtual-latency",
            occupancy={},
            label="p99",
        ),
        PhaseCost(
            seconds=summary["makespan"],
            bottleneck="virtual-latency",
            occupancy={},
            label="makespan",
        ),
    ]
    return build_manifest(
        kind="serving[latency]",
        machine=machine,
        phases=phases,
        workload={
            "queries": n_queries,
            "greedy_burst": GREEDY_BURST,
            "mix": list(MIX),
            "tenants": list(TENANTS),
            "mean_gap": MEAN_GAP,
            "seed": SEED,
        },
        config={
            "machine": MACHINE,
            "greedy_quota_in_flight": GREEDY_QUOTA.max_in_flight,
        },
        results=summary,
    )


def representative_manifests(report: ServingReport) -> List[RunManifest]:
    """One served manifest per workload kind (first occurrence)."""
    manifests: List[RunManifest] = []
    seen: set = set()
    for query in sorted(
        report.served, key=lambda q: q.request.request_id
    ):
        name = query.request.workload
        if name in seen:
            continue
        seen.add(name)
        manifest = RunManifest(
            kind=query.manifest["kind"],
            machine=query.manifest["machine"],
            workload=query.manifest["workload"],
            config=query.manifest["config"],
            phases=query.manifest["phases"],
            results=query.manifest["results"],
            metrics=query.manifest["metrics"],
            spans=query.manifest["spans"],
            calibration=query.manifest["calibration"],
            resilience=query.manifest["resilience"],
            optimizer=query.manifest["optimizer"],
            serving=query.manifest["serving"],
        )
        manifests.append(manifest)
    return manifests


def reference_manifests() -> List[RunManifest]:
    """The PR-2 nopa/coop[het] reference joins, silenced.

    Embedding them lets CI diff this document against the PR-2
    baseline (``--ignore-new-runs``) to prove single-query pricing is
    untouched by the serving layer.
    """
    from repro.bench.run_all import _collect_manifests

    with contextlib.redirect_stdout(io.StringIO()):
        return list(_collect_manifests(scale=2.0**-13))


def run_benchmark(n_queries: int) -> Tuple[Dict[str, Any], List[RunManifest]]:
    service = build_service()
    submit_load(service, n_queries)
    report = service.serve()
    summary = latency_summary(report)
    manifests = representative_manifests(report)
    manifests.append(latency_manifest(summary, n_queries))
    manifests.extend(reference_manifests())
    return summary, manifests


def check_serving(summary: Dict[str, Any]) -> List[str]:
    """Liveness gates on the headline numbers (CI ``--check-serving``)."""
    failures = []
    if summary["queries"] < 100:
        failures.append(
            f"expected >= 100 served queries, got {summary['queries']}"
        )
    if summary["rejected"] < 1:
        failures.append("expected the greedy tenant to be rejected")
    if summary["cache"]["hit_rate"] <= 0:
        failures.append("expected plan-cache hits on the repeated mix")
    if summary["p99_seconds"] < summary["p50_seconds"]:
        failures.append("p99 below p50: percentile arithmetic broken")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI subset: {QUICK_QUERIES} open-loop queries",
    )
    parser.add_argument(
        "--check-serving",
        action="store_true",
        help="exit non-zero unless rejections and cache hits occurred",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        help="write the manifest document (BENCH_pr9.json layout)",
    )
    args = parser.parse_args(argv)
    n_queries = QUICK_QUERIES if args.quick else N_QUERIES
    summary, manifests = run_benchmark(n_queries)

    print(f"open-loop serving, {n_queries} queries over {MACHINE}")
    print(
        f"  served {summary['queries']} "
        f"(rejected {summary['rejected']}), "
        f"peak concurrency {summary['peak_concurrency']}"
    )
    print(
        f"  latency p50 {summary['p50_seconds']:.6f}s  "
        f"p99 {summary['p99_seconds']:.6f}s  "
        f"max {summary['max_seconds']:.6f}s"
    )
    print(
        f"  cache hit rate {summary['cache']['hit_rate']:.3f} "
        f"({summary['cache']['hits']} hits / "
        f"{summary['cache']['misses']} misses)"
    )
    print(f"  virtual makespan {summary['makespan']:.6f}s")

    if args.out:
        path = write_manifest_file(
            args.out, manifests, generator="repro.bench.serving_latency"
        )
        print(f"wrote {path} ({len(manifests)} runs)")

    if args.check_serving:
        failures = check_serving(summary)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
