"""Serving-resilience benchmark: tails under overload, faults, chaos.

``serving_latency`` asks what tail latency looks like when the serving
engine is healthy; this benchmark asks what the engine *does* when it
is not:

* **overload** — a seeded arrival storm against a bounded
  :class:`~repro.serve.ServicePolicy` (concurrency cap, bounded FIFO
  queue, stretch-based shedding, default deadline).  The engine must
  degrade to typed rejections — queue-full and stretch sheds, deadline
  cancellations — instead of unbounded latency, and the counts are
  committed so CI fails if deadlines are never enforced or shedding
  never triggers.
* **chaos-transients** — the seeded serving fault plan
  (:func:`repro.faults.serving_chaos_plan` seed 404) fails first
  attempts at phase boundaries; every faulted query must recover
  through the retry-with-backoff path (retries > 0, nothing failed).
* **chaos-breaker** — seed 606 fails one workload on every attempt;
  its queries burn the retry budget into terminal failures and the
  per-workload circuit breaker must open and fast-fail the rest.

The document embeds the fault-free ``serving_latency`` runs unchanged,
so ``diff_manifest BENCH_pr10.json BENCH_pr9.json --ignore-new-runs``
proves the resilience layer reproduces PR 9 behavior bit-for-bit when
no fault plan or policy is active.  Everything is virtual-time and
seeded: ``--check-resilience`` also replays the chaos scenario twice
and fails unless the two reports are bit-identical.

Usage::

    python -m repro.bench.serving_resilience                 # full load
    python -m repro.bench.serving_resilience --quick --check-resilience
    python -m repro.bench.serving_resilience --quick --out BENCH_pr10.json
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.bench import serving_latency
from repro.costmodel.model import PhaseCost
from repro.faults.scenarios import serving_chaos_plan
from repro.logical.explain import MACHINES
from repro.obs.manifest import RunManifest, build_manifest, write_manifest_file
from repro.serve import (
    QueryService,
    ServicePolicy,
    ServingReport,
    percentile,
)

MACHINE = serving_latency.MACHINE
MIX = serving_latency.MIX
P50 = serving_latency.P50
P99 = serving_latency.P99

#: arrival seeding of the resilience scenarios (distinct from the
#: fault-free latency bench so the two loads cannot be conflated).
OVERLOAD_SEED = 21
CHAOS_SEED = 22

#: the overload storm: arrivals ~9x denser than the stable latency
#: bench, far beyond what the bounded policy admits.
OVERLOAD_GAP = 0.05
OVERLOAD_QUERIES = 400
OVERLOAD_QUICK = 120

#: chaos scenarios run at the stable gap — the point is fault
#: recovery, not queueing.
CHAOS_GAP = 0.45
CHAOS_QUERIES = 200
CHAOS_QUICK = 60

#: the bounded policy the overload storm runs against.
OVERLOAD_POLICY = ServicePolicy(
    max_active=4,
    queue_depth=6,
    stretch_limit=3.0,
    default_deadline=2.0,
)

#: breaker configuration of the chaos-breaker scenario.
BREAKER_POLICY = ServicePolicy(breaker_threshold=3, breaker_cooldown=5.0)


def _submit_mixed(
    service: QueryService, n_queries: int, seed: int, mean_gap: float
) -> int:
    """Seeded open-loop arrivals over the shared workload mix."""
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(mean_gap, size=n_queries)
    picks = rng.integers(0, len(MIX), size=n_queries)
    arrival = 0.0
    for i in range(n_queries):
        arrival += float(gaps[i])
        service.submit("tenant-r", MIX[int(picks[i])], arrival)
    return n_queries


def resilience_summary(
    report: ServingReport, submitted: int
) -> Dict[str, Any]:
    """The headline numbers of one resilience run (JSON-ready)."""
    latencies = report.latencies()
    shed_reasons: Dict[str, int] = {}
    for shed in report.shed:
        shed_reasons[shed.reason] = shed_reasons.get(shed.reason, 0) + 1
    return {
        "submitted": submitted,
        "outcomes": report.outcome_counts(),
        "conservation": report.conservation(submitted),
        "retries": report.total_retries(),
        "shed_reasons": shed_reasons,
        "breaker": report.breaker,
        "p50_seconds": percentile(latencies, P50),
        "p99_seconds": percentile(latencies, P99),
        "max_seconds": max(latencies) if latencies else 0.0,
        "makespan": report.makespan,
        "peak_concurrency": report.peak_concurrency,
    }


def _scenario_manifest(
    kind: str,
    summary: Dict[str, Any],
    workload: Dict[str, Any],
    config: Dict[str, Any],
) -> RunManifest:
    """Percentiles as phases, resilience counts as results.

    Same trick as ``serving_latency``: ``diff_manifest`` compares
    phases by label with a relative seconds tolerance, so the
    committed p50/p99/makespan gate tail regressions under overload
    and chaos.
    """
    machine = MACHINES[MACHINE]()
    phases = [
        PhaseCost(
            seconds=summary["p50_seconds"],
            bottleneck="virtual-latency",
            occupancy={},
            label="p50",
        ),
        PhaseCost(
            seconds=summary["p99_seconds"],
            bottleneck="virtual-latency",
            occupancy={},
            label="p99",
        ),
        PhaseCost(
            seconds=summary["makespan"],
            bottleneck="virtual-latency",
            occupancy={},
            label="makespan",
        ),
    ]
    return build_manifest(
        kind=kind,
        machine=machine,
        phases=phases,
        workload=workload,
        config=config,
        results=summary,
    )


def run_overload(n_queries: int) -> Dict[str, Any]:
    """The seeded overload storm against the bounded policy."""
    service = QueryService(machine=MACHINE, policy=OVERLOAD_POLICY)
    submitted = _submit_mixed(
        service, n_queries, OVERLOAD_SEED, OVERLOAD_GAP
    )
    report = service.serve()
    return resilience_summary(report, submitted)


def run_chaos_transients(n_queries: int) -> Dict[str, Any]:
    """Seeded first-attempt faults; every query recovers via retry."""
    service = QueryService(machine=MACHINE)
    submitted = _submit_mixed(service, n_queries, CHAOS_SEED, CHAOS_GAP)
    with serving_chaos_plan(404).install():
        report = service.serve()
    return resilience_summary(report, submitted)


def run_chaos_breaker(n_queries: int) -> Dict[str, Any]:
    """One workload fails every attempt; its breaker must open."""
    service = QueryService(machine=MACHINE, policy=BREAKER_POLICY)
    submitted = _submit_mixed(service, n_queries, CHAOS_SEED, CHAOS_GAP)
    with serving_chaos_plan(606).install():
        report = service.serve()
    return resilience_summary(report, submitted)


def run_benchmark(
    quick: bool,
) -> Tuple[Dict[str, Dict[str, Any]], List[RunManifest]]:
    """All scenarios plus the embedded fault-free latency runs."""
    n_latency = (
        serving_latency.QUICK_QUERIES if quick else serving_latency.N_QUERIES
    )
    n_overload = OVERLOAD_QUICK if quick else OVERLOAD_QUERIES
    n_chaos = CHAOS_QUICK if quick else CHAOS_QUERIES

    # Fault-free baseline runs, embedded unchanged: the diff against
    # BENCH_pr9.json (--ignore-new-runs) proves the resilience layer
    # reproduces PR 9 behavior exactly when inactive.
    _latency_summary, manifests = serving_latency.run_benchmark(n_latency)

    overload = run_overload(n_overload)
    transients = run_chaos_transients(n_chaos)
    breaker = run_chaos_breaker(n_chaos)

    manifests.append(
        _scenario_manifest(
            "serving[overload]",
            overload,
            workload={
                "queries": n_overload,
                "mix": list(MIX),
                "mean_gap": OVERLOAD_GAP,
                "seed": OVERLOAD_SEED,
            },
            config={
                "machine": MACHINE,
                "max_active": OVERLOAD_POLICY.max_active,
                "queue_depth": OVERLOAD_POLICY.queue_depth,
                "stretch_limit": OVERLOAD_POLICY.stretch_limit,
                "default_deadline": OVERLOAD_POLICY.default_deadline,
            },
        )
    )
    manifests.append(
        _scenario_manifest(
            "serving[chaos-transients]",
            transients,
            workload={
                "queries": n_chaos,
                "mix": list(MIX),
                "mean_gap": CHAOS_GAP,
                "seed": CHAOS_SEED,
            },
            config={"machine": MACHINE, "fault_seed": 404},
        )
    )
    manifests.append(
        _scenario_manifest(
            "serving[chaos-breaker]",
            breaker,
            workload={
                "queries": n_chaos,
                "mix": list(MIX),
                "mean_gap": CHAOS_GAP,
                "seed": CHAOS_SEED,
            },
            config={
                "machine": MACHINE,
                "fault_seed": 606,
                "breaker_threshold": BREAKER_POLICY.breaker_threshold,
                "breaker_cooldown": BREAKER_POLICY.breaker_cooldown,
            },
        )
    )
    summaries = {
        "overload": overload,
        "chaos-transients": transients,
        "chaos-breaker": breaker,
    }
    return summaries, manifests


def check_resilience(
    summaries: Dict[str, Dict[str, Any]], quick: bool
) -> List[str]:
    """Liveness gates (CI ``--check-resilience``).

    The resilience machinery must actually *fire* under the committed
    scenarios — a policy knob that silently stops triggering is a
    regression even if every fair-weather number still matches.
    """
    failures = []
    overload = summaries["overload"]
    if overload["outcomes"]["deadline_exceeded"] < 1:
        failures.append(
            "overload scenario never enforced a deadline "
            f"(outcomes: {overload['outcomes']})"
        )
    if overload["outcomes"]["shed"] < 1:
        failures.append(
            "overload scenario never shed load "
            f"(outcomes: {overload['outcomes']})"
        )
    for name, summary in summaries.items():
        if not summary["conservation"]:
            failures.append(
                f"{name}: conservation violated — submitted "
                f"{summary['submitted']} != outcome sum "
                f"{summary['outcomes']}"
            )
    transients = summaries["chaos-transients"]
    if transients["retries"] < 1:
        failures.append("chaos-transients scenario never retried")
    if transients["outcomes"]["failed"] > 0:
        failures.append(
            "chaos-transients faults are first-attempt-only and must "
            f"all recover; got outcomes {transients['outcomes']}"
        )
    breaker = summaries["chaos-breaker"]
    opens = sum(
        entry["opens_total"] for entry in breaker["breaker"].values()
    )
    if opens < 1:
        failures.append("chaos-breaker scenario never opened a breaker")
    if breaker["outcomes"]["failed"] < 1:
        failures.append("chaos-breaker scenario never failed a query")
    # Chaos determinism: the same seeds must reproduce the identical
    # report, bit for bit.
    n_chaos = CHAOS_QUICK if quick else CHAOS_QUERIES
    replay = run_chaos_transients(n_chaos)
    if json.dumps(replay, sort_keys=True) != json.dumps(
        transients, sort_keys=True
    ):
        failures.append(
            "chaos-transients replay diverged from the first run — "
            "serving chaos is not deterministic"
        )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI subset of every scenario",
    )
    parser.add_argument(
        "--check-resilience",
        action="store_true",
        help=(
            "exit non-zero unless deadlines, sheds, retries, and the "
            "breaker all fired, conservation holds, and the chaos "
            "replay is bit-identical"
        ),
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        help="write the manifest document (BENCH_pr10.json layout)",
    )
    args = parser.parse_args(argv)
    summaries, manifests = run_benchmark(args.quick)

    for name, summary in summaries.items():
        outcomes = summary["outcomes"]
        print(
            f"{name}: submitted {summary['submitted']} -> "
            f"finished {outcomes['finished']}, "
            f"deadline {outcomes['deadline_exceeded']}, "
            f"failed {outcomes['failed']}, "
            f"rejected {outcomes['rejected']}, shed {outcomes['shed']} "
            f"(retries {summary['retries']})"
        )
        print(
            f"  p50 {summary['p50_seconds']:.6f}s  "
            f"p99 {summary['p99_seconds']:.6f}s  "
            f"makespan {summary['makespan']:.6f}s"
        )

    if args.out:
        path = write_manifest_file(
            args.out, manifests, generator="repro.bench.serving_resilience"
        )
        print(f"wrote {path} ({len(manifests)} runs)")

    if args.check_resilience:
        failures = check_resilience(summaries, args.quick)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
        print("resilience gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
