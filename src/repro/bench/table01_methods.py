"""Table 1: the transfer-method overview.

Renders the method matrix (semantics, level, granularity, memory kind)
from the implementation's own metadata, so the code provably implements
the paper's taxonomy — the accompanying benchmark asserts every cell.
"""

from __future__ import annotations

from typing import Dict, List

from repro.transfer.methods import TRANSFER_METHODS
from repro.utils.tables import Table

#: Table 1 of the paper, row for row.
PAPER = {
    "pageable_copy": ("push", "SW", "chunk", "pageable"),
    "staged_copy": ("push", "SW", "chunk", "pageable"),
    "dynamic_pinning": ("push", "SW", "chunk", "pageable"),
    "pinned_copy": ("push", "SW", "chunk", "pinned"),
    "um_prefetch": ("push", "SW", "chunk", "unified"),
    "um_migration": ("pull", "OS", "page", "unified"),
    "zero_copy": ("pull", "HW", "byte", "pinned"),
    "coherence": ("pull", "HW", "byte", "pageable"),
}


def rows() -> List[Dict[str, str]]:
    """The implemented method matrix, in Table 1's order."""
    out = []
    for name in PAPER:
        method = TRANSFER_METHODS[name]
        out.append(
            {
                "method": name,
                "semantics": method.semantics,
                "level": method.level,
                "granularity": method.granularity,
                "memory": method.required_kind.value,
            }
        )
    return out


def run() -> Table:
    """Render the implemented Table 1."""
    table = Table(
        ["method", "semantics", "level", "granularity", "memory"],
        title="Table 1: GPU transfer methods (implemented taxonomy)",
    )
    for row in rows():
        table.add_row(
            [row["method"], row["semantics"], row["level"],
             row["granularity"], row["memory"]]
        )
    return table


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
