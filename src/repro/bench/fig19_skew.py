"""Figure 19: Zipf-skewed probe relations.

Workload A (34 GiB) with the probe side skewed by Zipf exponents
0-1.75; the hash table is placed in CPU memory, in GPU memory, and in
hybrid tables with explicit GPU/CPU byte splits (0/100, 10/90, 30/70,
50/50, 100/0).  Series are shown for the CPU (NOPA), the GPU over
PCI-e 3.0, and the GPU over NVLink 2.0.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.bench.common import FigureResult
from repro.core.join.nopa import NoPartitioningJoin
from repro.hardware.topology import ibm_ac922, intel_xeon_v100
from repro.workloads.builders import workload_skewed

#: curve readings at the end points (hash table fully in CPU memory).
PAPER = {
    "zipf=0.0": {"cpu": 0.5, "nvlink2": 0.6, "pcie3": 0.05},
    "zipf=1.5": {"cpu": 1.75, "nvlink2": 2.17, "pcie3": 0.31},
}

EXPONENTS = (0.0, 0.5, 1.0, 1.25, 1.5, 1.75)
GPU_SPLITS = (0.0, 0.1, 0.3, 0.5, 1.0)


def run(
    scale: float = 2.0**-12,
    exponents: Iterable[float] = EXPONENTS,
    gpu_split: float = 0.0,
) -> FigureResult:
    """Reproduce the CPU/NVLink/PCIe series for one hybrid split.

    ``gpu_split`` is the fraction of the hash table in GPU memory
    (0.0 = the paper's "0,100" series; 1.0 = "100,0").
    """
    result = FigureResult(
        figure="Figure 19",
        title=(
            "Zipf-skewed probe relation, hash table split "
            f"{gpu_split:.0%} GPU / {1 - gpu_split:.0%} CPU"
        ),
        paper=PAPER if gpu_split == 0.0 else {},
        notes=(
            "Higher skew concentrates probes on a cacheable hot set: "
            "throughput rises ~3.5x (CPU), ~3.6x (NVLink), ~6.1x (PCI-e); "
            "fully GPU-resident tables see no effect (the interconnect "
            "transfer of the base relations is the bottleneck)."
        ),
    )
    ibm = ibm_ac922()
    intel = intel_xeon_v100()
    for exponent in exponents:
        workload = workload_skewed(exponent, scale=scale)
        hot = workload.hot_set_profile()
        values = {}
        values["cpu"] = (
            NoPartitioningJoin(ibm, hash_table_placement="cpu")
            .run(workload.r, workload.s, processor="cpu0", hot_set=hot)
            .throughput_gtuples
        )
        for series, machine, method in (
            ("nvlink2", ibm, "coherence"),
            ("pcie3", intel, "zero_copy"),
        ):
            fractions = _fractions(machine, gpu_split)
            wl = workload.placed_for(method)
            values[series] = (
                NoPartitioningJoin(machine, transfer_method=method)
                .run(
                    wl.r,
                    wl.s,
                    processor="gpu0",
                    hot_set=hot,
                    placement_fractions=fractions,
                )
                .throughput_gtuples
            )
        result.add(f"zipf={exponent}", **values)
    return result


def run_splits(
    scale: float = 2.0**-12,
    exponent: float = 1.5,
    splits: Iterable[float] = GPU_SPLITS,
) -> Dict[float, float]:
    """NVLink throughput vs. hybrid split at one skew level (the
    figure's legend dimension)."""
    ibm = ibm_ac922()
    workload = workload_skewed(exponent, scale=scale)
    hot = workload.hot_set_profile()
    out: Dict[float, float] = {}
    for split in splits:
        res = NoPartitioningJoin(ibm).run(
            workload.r,
            workload.s,
            processor="gpu0",
            hot_set=hot,
            placement_fractions=_fractions(ibm, split),
        )
        out[split] = res.throughput_gtuples
    return out


def _fractions(machine, gpu_split: float) -> Dict[str, float]:
    gpu_region = machine.gpu(0).local_memory.name
    cpu_region = machine.nearest_cpu_memory(machine.gpu(0).name).name
    if gpu_split <= 0.0:
        return {cpu_region: 1.0}
    if gpu_split >= 1.0:
        return {gpu_region: 1.0}
    return {gpu_region: gpu_split, cpu_region: 1.0 - gpu_split}


def main() -> None:
    print(run().render())
    print()
    print("NVLink throughput at zipf=1.5 by hybrid split (GPU fraction):")
    for split, value in run_splits().items():
        print(f"  {split:.0%} GPU: {value:.2f} G Tuples/s")


if __name__ == "__main__":
    main()
