"""Worker-scaling benchmark for the morsel-parallel execution backend.

Usage::

    python -m repro.bench.parallel_scaling                 # full sweep
    python -m repro.bench.parallel_scaling --quick         # CI smoke
    python -m repro.bench.parallel_scaling --out run_pr4.json
    python -m repro.bench.parallel_scaling --check-speedup

Two independent sections land in the output document:

* ``runs`` — priced run manifests of the reference NOPA join executed
  once per backend (``nopa[serial]`` / ``nopa[threads]``).  These are
  fully deterministic — the whole point of the backend's determinism
  contract — and are what ``repro.bench.diff_manifest`` compares
  against the committed ``BENCH_pr4.json`` baseline in CI.
* ``scaling`` — wall-clock seconds of the *functional* build+probe at
  each worker count, with speedups relative to the serial path.  Wall
  clock depends on the host (core count, load), so this section is
  informational and deliberately ignored by the manifest diff.

``--check-speedup`` asserts the 4-worker speedup exceeds the threshold;
the check auto-skips (with an explicit note in the output) when the
host has fewer cores than workers — a 1-core container cannot
demonstrate parallel speedup, only parallel *correctness*, which the
equivalence section always verifies.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.hashtable import create_hash_table
from repro.core.join.nopa import NoPartitioningJoin
from repro.exec import MorselExecutor, execute_build, execute_probe
from repro.hardware.topology import ibm_ac922
from repro.obs import Observability
from repro.obs.manifest import MANIFEST_SCHEMA_VERSION, build_manifest
from repro.workloads.builders import workload_a

#: acceptance threshold: 4 workers must beat serial by this factor on a
#: host that actually has 4 cores to run them on.
SPEEDUP_TARGET = 1.5

#: worker counts of the sweep.
DEFAULT_WORKER_COUNTS = (1, 2, 4)


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _functional_seconds(
    keys: np.ndarray,
    values: np.ndarray,
    probe: np.ndarray,
    scheme: str,
    executor: Optional[MorselExecutor],
    repeats: int,
) -> float:
    def run() -> None:
        table = create_hash_table(scheme, len(keys), keys.dtype, values.dtype)
        execute_build(table, keys, values, executor)
        execute_probe(table, probe, executor)

    return _best_of(repeats, run)


def _reference_manifests(scale: float, workers: int) -> List[Any]:
    """The deterministic section: one priced NOPA run per backend.

    Identical ``TableStats`` across backends make the priced phases (and
    therefore these manifests) byte-identical; the diff against the
    committed baseline enforces that on every CI run.
    """
    machine = ibm_ac922()
    workload = workload_a(scale=scale)
    manifests = []
    for backend in ("serial", "threads"):
        obs = Observability.create()
        join = NoPartitioningJoin(
            machine,
            hash_table_placement="gpu",
            transfer_method="coherence",
            obs=obs,
            backend=backend,
            workers=workers,
        )
        result = join.run(workload.r, workload.s)
        manifests.append(
            build_manifest(
                kind=f"nopa[{backend}]",
                machine=machine,
                phases=[result.build_cost, result.probe_cost],
                workload={
                    "name": "A",
                    "executed_r": workload.r.executed_tuples,
                    "executed_s": workload.s.executed_tuples,
                    "modeled_r": workload.r.modeled_tuples,
                    "modeled_s": workload.s.modeled_tuples,
                },
                config={
                    "backend": backend,
                    "workers": workers if backend == "threads" else 1,
                    "hash_table_placement": "gpu",
                    "transfer_method": "coherence",
                },
                results={
                    "matches": result.matches,
                    "aggregate": result.aggregate,
                },
                obs=obs,
            )
        )
    return manifests


def _equivalence(
    keys: np.ndarray,
    values: np.ndarray,
    probe: np.ndarray,
    scheme: str,
    workers: int,
    morsel_tuples: int,
) -> Dict[str, bool]:
    serial_table = create_hash_table(scheme, len(keys), keys.dtype, values.dtype)
    execute_build(serial_table, keys, values, None)
    serial_found, serial_values = execute_probe(serial_table, probe, None)

    executor = MorselExecutor(workers=workers, morsel_tuples=morsel_tuples)
    table = create_hash_table(scheme, len(keys), keys.dtype, values.dtype)
    execute_build(table, keys, values, executor)
    found, looked_up = execute_probe(table, probe, executor)
    return {
        "outputs_identical": bool(
            np.array_equal(serial_found, found)
            and np.array_equal(serial_values, looked_up)
        ),
        "stats_identical": serial_table.stats.as_tuple()
        == table.stats.as_tuple(),
        "size_identical": serial_table.size == table.size,
    }


def run_benchmark(
    quick: bool = False,
    worker_counts: Sequence[int] = DEFAULT_WORKER_COUNTS,
    scheme: str = "perfect",
) -> Dict[str, Any]:
    """Execute the sweep and return the output document."""
    build_tuples = 1 << 18 if quick else 1 << 21
    probe_tuples = 1 << 19 if quick else 1 << 22
    repeats = 2 if quick else 3
    morsel_tuples = 1 << 14 if quick else 1 << 15

    rng = np.random.default_rng(4)
    keys = rng.permutation(build_tuples).astype(np.int64)
    values = (keys * 3 + 1).astype(np.int64)
    probe = rng.integers(0, build_tuples, size=probe_tuples).astype(np.int64)

    serial_seconds = _functional_seconds(
        keys, values, probe, scheme, None, repeats
    )
    scaling = [
        {
            "backend": "serial",
            "workers": 1,
            "seconds": serial_seconds,
            "speedup": 1.0,
        }
    ]
    for workers in worker_counts:
        executor = MorselExecutor(workers=workers, morsel_tuples=morsel_tuples)
        seconds = _functional_seconds(
            keys, values, probe, scheme, executor, repeats
        )
        scaling.append(
            {
                "backend": "threads",
                "workers": workers,
                "seconds": seconds,
                "speedup": serial_seconds / seconds if seconds else float("inf"),
            }
        )

    return {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "generator": "repro.bench.parallel_scaling",
        "quick": quick,
        "cpu_count": os.cpu_count() or 1,
        "workload": {
            "scheme": scheme,
            "build_tuples": build_tuples,
            "probe_tuples": probe_tuples,
            "morsel_tuples": morsel_tuples,
            "repeats": repeats,
        },
        "scaling": scaling,
        "equivalence": _equivalence(
            keys, values, probe, scheme, max(worker_counts), morsel_tuples
        ),
        "runs": [
            m.to_dict()
            for m in _reference_manifests(
                scale=2.0**-14 if quick else 2.0**-12,
                workers=max(worker_counts),
            )
        ],
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument("--out", default=None, help="write the JSON document here")
    parser.add_argument(
        "--check-speedup",
        action="store_true",
        help=f"fail unless 4-worker speedup > {SPEEDUP_TARGET}x "
        "(auto-skipped on hosts with fewer cores than workers)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=list(DEFAULT_WORKER_COUNTS),
        help="worker counts to sweep",
    )
    parser.add_argument(
        "--scheme",
        default="perfect",
        choices=("perfect", "chaining", "open_addressing"),
    )
    args = parser.parse_args(argv)

    document = run_benchmark(
        quick=args.quick, worker_counts=args.workers, scheme=args.scheme
    )

    print(f"== parallel scaling ({document['workload']['scheme']}, "
          f"{document['workload']['build_tuples']} build / "
          f"{document['workload']['probe_tuples']} probe tuples, "
          f"{document['cpu_count']} cores) ==")
    for row in document["scaling"]:
        print(
            f"  {row['backend']:>7} workers={row['workers']}  "
            f"{row['seconds'] * 1e3:8.1f} ms  speedup {row['speedup']:.2f}x"
        )
    equivalence = document["equivalence"]
    print(f"  equivalence: {equivalence}")
    if not all(equivalence.values()):
        print("FAIL: parallel backend is not equivalent to serial")
        return 1

    if args.check_speedup:
        cores = document["cpu_count"]
        peak = max(
            (row for row in document["scaling"] if row["workers"] >= 4),
            key=lambda row: row["speedup"],
            default=None,
        )
        if peak is None or cores < 4:
            note = (
                f"speedup check skipped: host has {cores} core(s); "
                "need >= 4 to demonstrate 4-worker speedup"
            )
            document["speedup_check"] = {"status": "skipped", "note": note}
            print(f"  {note}")
        elif peak["speedup"] > SPEEDUP_TARGET:
            document["speedup_check"] = {
                "status": "passed",
                "speedup": peak["speedup"],
            }
            print(f"  speedup check passed: {peak['speedup']:.2f}x")
        else:
            print(
                f"FAIL: 4-worker speedup {peak['speedup']:.2f}x "
                f"<= {SPEEDUP_TARGET}x on a {cores}-core host"
            )
            return 1

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
