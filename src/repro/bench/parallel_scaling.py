"""Backend-scaling benchmark: serial / threads / processes × shards.

Usage::

    python -m repro.bench.parallel_scaling                 # full sweep
    python -m repro.bench.parallel_scaling --quick         # CI smoke
    python -m repro.bench.parallel_scaling --out run_pr7.json
    python -m repro.bench.parallel_scaling --check-speedup

Two independent sections land in the output document:

* ``runs`` — priced run manifests of the reference NOPA join:
  ``nopa[serial]`` / ``nopa[threads]`` (byte-compatible with the PR-4
  baseline), plus ``nopa[processes]`` (fork backend, identical phases
  to serial by the determinism contract) and ``nopa[sharded]`` (4-shard
  table — different table geometry, so its phases form their own
  baseline).  ``repro.bench.diff_manifest`` compares these against the
  committed ``BENCH_pr7.json`` in CI, and against ``BENCH_pr4.json``
  with ``--ignore-new-runs``.
* ``scaling`` — wall-clock seconds of the functional build+probe for
  each (backend, workers, shards) cell, plus build-only rows for the
  contention-free sharded build (the tentpole's speedup claim).  Wall
  clock depends on the host, so this section is informational and
  deliberately ignored by the manifest diff.

``--check-speedup`` asserts the best ≥4-worker speedup (any backend,
any shard count) exceeds the threshold; the check auto-skips (with an
explicit note in the output) when the host has fewer cores than
workers — a 1-core container cannot demonstrate parallel speedup, only
parallel *correctness*, which the equivalence section always verifies.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.hashtable import create_hash_table
from repro.core.join.nopa import NoPartitioningJoin
from repro.exec import (
    execute_build,
    execute_probe,
    fork_available,
    make_executor,
)
from repro.hardware.topology import ibm_ac922
from repro.obs import Observability
from repro.obs.manifest import MANIFEST_SCHEMA_VERSION, build_manifest
from repro.workloads.builders import workload_a

#: acceptance threshold: 4 workers must beat serial by this factor on a
#: host that actually has 4 cores to run them on.
SPEEDUP_TARGET = 1.5

#: worker counts of the sweep.
DEFAULT_WORKER_COUNTS = (1, 2, 4)

#: shard counts of the sweep (1 = the unsharded table).
DEFAULT_SHARD_COUNTS = (1, 4)

#: parallel backends; processes drops out when fork is unavailable.
def _backends() -> Sequence[str]:
    return ("threads", "processes") if fork_available() else ("threads",)


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _functional_seconds(
    keys: np.ndarray,
    values: np.ndarray,
    probe: np.ndarray,
    scheme: str,
    executor,
    repeats: int,
    shards: int = 1,
    build_only: bool = False,
) -> float:
    def run() -> None:
        table = create_hash_table(
            scheme, len(keys), keys.dtype, values.dtype, shards=shards
        )
        execute_build(table, keys, values, executor)
        if not build_only:
            execute_probe(table, probe, executor)

    return _best_of(repeats, run)


def _nopa_manifest(
    machine, workload, kind: str, backend: str, workers: int, shards: int
):
    obs = Observability.create()
    join = NoPartitioningJoin(
        machine,
        hash_table_placement="gpu",
        transfer_method="coherence",
        obs=obs,
        backend=backend,
        workers=workers,
        shards=shards,
    )
    result = join.run(workload.r, workload.s)
    return build_manifest(
        kind=kind,
        machine=machine,
        phases=[result.build_cost, result.probe_cost],
        workload={
            "name": "A",
            "executed_r": workload.r.executed_tuples,
            "executed_s": workload.s.executed_tuples,
            "modeled_r": workload.r.modeled_tuples,
            "modeled_s": workload.s.modeled_tuples,
        },
        config={
            "backend": backend,
            "workers": workers if backend != "serial" else 1,
            "shards": shards,
            "hash_table_placement": "gpu",
            "transfer_method": "coherence",
        },
        results={
            "matches": result.matches,
            "aggregate": result.aggregate,
        },
        obs=obs,
    )


def _reference_manifests(scale: float, workers: int) -> List[Any]:
    """The deterministic section: priced NOPA runs per backend config.

    ``nopa[serial]``/``nopa[threads]`` keep the PR-4 baseline's config
    shape (plus the new ``shards`` key) so their phase costs diff
    cleanly against ``BENCH_pr4.json``; ``nopa[processes]`` proves the
    fork backend prices identically; ``nopa[sharded]`` is the 4-shard
    table's own baseline (different geometry, different probe counts).
    """
    machine = ibm_ac922()
    workload = workload_a(scale=scale)
    manifests = [
        _nopa_manifest(machine, workload, "nopa[serial]", "serial", workers, 1),
        _nopa_manifest(machine, workload, "nopa[threads]", "threads", workers, 1),
    ]
    if fork_available():
        manifests.append(
            _nopa_manifest(
                machine, workload, "nopa[processes]", "processes", workers, 1
            )
        )
    manifests.append(
        _nopa_manifest(machine, workload, "nopa[sharded]", "threads", workers, 4)
    )
    return manifests


def _equivalence(
    keys: np.ndarray,
    values: np.ndarray,
    probe: np.ndarray,
    scheme: str,
    workers: int,
    morsel_tuples: int,
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
) -> Dict[str, bool]:
    """Bit-identity of every (backend, shards) cell against its serial
    twin — the correctness half the speedup gate relies on."""
    outputs_identical = stats_identical = size_identical = True
    for shards in shard_counts:
        serial_table = create_hash_table(
            scheme, len(keys), keys.dtype, values.dtype, shards=shards
        )
        execute_build(serial_table, keys, values, None)
        serial_found, serial_values = execute_probe(serial_table, probe, None)
        for backend in _backends():
            executor = make_executor(backend, workers, morsel_tuples)
            table = create_hash_table(
                scheme, len(keys), keys.dtype, values.dtype, shards=shards
            )
            execute_build(table, keys, values, executor)
            found, looked_up = execute_probe(table, probe, executor)
            outputs_identical &= bool(
                np.array_equal(serial_found, found)
                and np.array_equal(serial_values, looked_up)
            )
            stats_identical &= (
                serial_table.stats.as_tuple() == table.stats.as_tuple()
            )
            size_identical &= serial_table.size == table.size
    return {
        "outputs_identical": outputs_identical,
        "stats_identical": stats_identical,
        "size_identical": size_identical,
    }


def run_benchmark(
    quick: bool = False,
    worker_counts: Sequence[int] = DEFAULT_WORKER_COUNTS,
    scheme: str = "perfect",
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
) -> Dict[str, Any]:
    """Execute the sweep and return the output document."""
    build_tuples = 1 << 18 if quick else 1 << 21
    probe_tuples = 1 << 19 if quick else 1 << 22
    repeats = 2 if quick else 3
    morsel_tuples = 1 << 14 if quick else 1 << 15

    rng = np.random.default_rng(4)
    keys = rng.permutation(build_tuples).astype(np.int64)
    values = (keys * 3 + 1).astype(np.int64)
    probe = rng.integers(0, build_tuples, size=probe_tuples).astype(np.int64)

    scaling = []
    for shards in shard_counts:
        serial_seconds = _functional_seconds(
            keys, values, probe, scheme, None, repeats, shards=shards
        )
        scaling.append(
            {
                "backend": "serial",
                "workers": 1,
                "shards": shards,
                "phase": "build+probe",
                "seconds": serial_seconds,
                "speedup": 1.0,
            }
        )
        for backend in _backends():
            for workers in worker_counts:
                executor = make_executor(backend, workers, morsel_tuples)
                seconds = _functional_seconds(
                    keys, values, probe, scheme, executor, repeats, shards=shards
                )
                scaling.append(
                    {
                        "backend": backend,
                        "workers": workers,
                        "shards": shards,
                        "phase": "build+probe",
                        "seconds": seconds,
                        "speedup": serial_seconds / seconds
                        if seconds
                        else float("inf"),
                    }
                )

    # Build-only rows for the contention-free sharded build — the
    # tentpole claim: with workers owning whole shards, the build
    # itself scales.  Shards beyond the worker count add nothing, so
    # the sweep uses the largest shard count.
    sharded = max(shard_counts)
    if sharded > 1:
        serial_build = _functional_seconds(
            keys, values, probe, scheme, None, repeats,
            shards=sharded, build_only=True,
        )
        scaling.append(
            {
                "backend": "serial",
                "workers": 1,
                "shards": sharded,
                "phase": "build",
                "seconds": serial_build,
                "speedup": 1.0,
            }
        )
        for backend in _backends():
            for workers in worker_counts:
                executor = make_executor(backend, workers, morsel_tuples)
                seconds = _functional_seconds(
                    keys, values, probe, scheme, executor, repeats,
                    shards=sharded, build_only=True,
                )
                scaling.append(
                    {
                        "backend": backend,
                        "workers": workers,
                        "shards": sharded,
                        "phase": "build",
                        "seconds": seconds,
                        "speedup": serial_build / seconds
                        if seconds
                        else float("inf"),
                    }
                )

    return {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "generator": "repro.bench.parallel_scaling",
        "quick": quick,
        "cpu_count": os.cpu_count() or 1,
        "workload": {
            "scheme": scheme,
            "build_tuples": build_tuples,
            "probe_tuples": probe_tuples,
            "morsel_tuples": morsel_tuples,
            "repeats": repeats,
            "shard_counts": list(shard_counts),
            "backends": list(_backends()),
        },
        "scaling": scaling,
        "equivalence": _equivalence(
            keys, values, probe, scheme, max(worker_counts), morsel_tuples,
            shard_counts=shard_counts,
        ),
        "runs": [
            m.to_dict()
            for m in _reference_manifests(
                scale=2.0**-14 if quick else 2.0**-12,
                workers=max(worker_counts),
            )
        ],
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument("--out", default=None, help="write the JSON document here")
    parser.add_argument(
        "--check-speedup",
        action="store_true",
        help=f"fail unless 4-worker speedup > {SPEEDUP_TARGET}x "
        "(auto-skipped on hosts with fewer cores than workers)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=list(DEFAULT_WORKER_COUNTS),
        help="worker counts to sweep",
    )
    parser.add_argument(
        "--scheme",
        default="perfect",
        choices=("perfect", "chaining", "open_addressing"),
    )
    parser.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=list(DEFAULT_SHARD_COUNTS),
        help="shard counts to sweep (1 = unsharded)",
    )
    args = parser.parse_args(argv)

    document = run_benchmark(
        quick=args.quick,
        worker_counts=args.workers,
        scheme=args.scheme,
        shard_counts=args.shards,
    )

    print(f"== parallel scaling ({document['workload']['scheme']}, "
          f"{document['workload']['build_tuples']} build / "
          f"{document['workload']['probe_tuples']} probe tuples, "
          f"{document['cpu_count']} cores) ==")
    for row in document["scaling"]:
        print(
            f"  {row['backend']:>9} workers={row['workers']} "
            f"shards={row['shards']} {row['phase']:>11}  "
            f"{row['seconds'] * 1e3:8.1f} ms  speedup {row['speedup']:.2f}x"
        )
    equivalence = document["equivalence"]
    print(f"  equivalence: {equivalence}")
    if not all(equivalence.values()):
        print("FAIL: parallel backend is not equivalent to serial")
        return 1

    if args.check_speedup:
        cores = document["cpu_count"]
        peak = max(
            (row for row in document["scaling"] if row["workers"] >= 4),
            key=lambda row: row["speedup"],
            default=None,
        )
        if peak is None or cores < 4:
            note = (
                f"speedup check skipped: host has {cores} core(s); "
                "need >= 4 to demonstrate 4-worker speedup"
            )
            document["speedup_check"] = {"status": "skipped", "note": note}
            print(f"  {note}")
        elif peak["speedup"] > SPEEDUP_TARGET:
            document["speedup_check"] = {
                "status": "passed",
                "speedup": peak["speedup"],
                "backend": peak["backend"],
                "shards": peak["shards"],
                "phase": peak["phase"],
            }
            print(
                f"  speedup check passed: {peak['speedup']:.2f}x "
                f"({peak['backend']}, shards={peak['shards']}, "
                f"{peak['phase']})"
            )
        else:
            print(
                f"FAIL: best >=4-worker speedup {peak['speedup']:.2f}x "
                f"<= {SPEEDUP_TARGET}x on a {cores}-core host "
                f"({peak['backend']}, shards={peak['shards']})"
            )
            return 1

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
