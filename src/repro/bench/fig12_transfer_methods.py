"""Figure 12: NOPA join throughput per transfer method.

Workload A (2 GiB ⋈ 32 GiB), relations in CPU memory, hash table built
in GPU memory; every Table 1 method on PCI-e 3.0 and NVLink 2.0.  The
relation's memory kind is set to each method's requirement (the paper
allocates pageable/pinned/unified memory per method).
"""

from __future__ import annotations

from typing import Optional

from repro.bench.common import FigureResult
from repro.core.join.nopa import NoPartitioningJoin
from repro.hardware.topology import ibm_ac922, intel_xeon_v100
from repro.transfer.methods import TRANSFER_METHODS, UnsupportedTransferError
from repro.workloads.builders import workload_a

PAPER = {
    "pageable_copy": {"pcie3": 0.25, "nvlink2": 0.67},
    "staged_copy": {"pcie3": 0.73, "nvlink2": 2.15},
    "dynamic_pinning": {"pcie3": 0.26, "nvlink2": 2.36},
    "pinned_copy": {"pcie3": 0.74, "nvlink2": 3.42},
    "um_prefetch": {"pcie3": 0.54, "nvlink2": 0.16},
    "um_migration": {"pcie3": 0.25, "nvlink2": 0.17},
    "zero_copy": {"pcie3": 0.77, "nvlink2": 3.81},
    "coherence": {"nvlink2": 3.83},  # unsupported on PCI-e 3.0
}

METHOD_ORDER = [
    "pageable_copy",
    "staged_copy",
    "dynamic_pinning",
    "pinned_copy",
    "um_prefetch",
    "um_migration",
    "zero_copy",
    "coherence",
]


def run(scale: float = 2.0**-12) -> FigureResult:
    result = FigureResult(
        figure="Figure 12",
        title="NOPA join per transfer method, workload A",
        paper=PAPER,
        notes=(
            "Coherence and Zero-Copy are fastest on NVLink 2.0; Coherence "
            "is unsupported on PCI-e 3.0; Unified Memory underperforms on "
            "the POWER9 platform."
        ),
    )
    workload = workload_a(scale=scale)
    machines = {"nvlink2": ibm_ac922(), "pcie3": intel_xeon_v100()}
    for method_name in METHOD_ORDER:
        method = TRANSFER_METHODS[method_name]
        values = {}
        for link_name, machine in machines.items():
            throughput = _join_throughput(machine, method_name, method, workload)
            if throughput is not None:
                values[link_name] = throughput
        result.add(method_name, **values)
    return result


def _join_throughput(machine, method_name, method, workload) -> Optional[float]:
    r = workload.r.placed("cpu0-mem", kind=method.required_kind)
    s = workload.s.placed("cpu0-mem", kind=method.required_kind)
    join = NoPartitioningJoin(
        machine, hash_table_placement="gpu", transfer_method=method_name
    )
    try:
        return join.run(r, s, processor="gpu0").throughput_gtuples
    except UnsupportedTransferError:
        return None


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
