"""Figure 11: the hash-table placement decision tree, validated.

The paper gives the decision process as a flowchart without an
experiment.  This bench sweeps build-side sizes across the tree's
branch points (cache-sized, GPU-sized, beyond-GPU) and checks that the
strategy the tree picks is (near-)optimal among all strategies the
machine supports — i.e. the flowchart is consistent with the measured
trade-offs of Figures 13/14/17/21.
"""

from __future__ import annotations

from typing import Dict

from repro.bench.common import FigureResult
from repro.core.join.coop import CoopJoin
from repro.core.join.nopa import NoPartitioningJoin
from repro.core.placement import decide_placement
from repro.hardware.topology import ibm_ac922
from repro.memory.allocator import OutOfMemoryError
from repro.workloads.builders import workload_b, workload_ratio

#: build-side cardinalities probing each branch of the tree
#: (table bytes = 16 x tuples).
SWEEP = (
    ("cache-sized (4 MiB)", None),  # workload B
    ("in-GPU (8 GiB)", 512),
    ("in-GPU (15 GiB)", 960),
    ("beyond-GPU (24 GiB)", 1536),
    ("beyond-GPU (32 GiB)", 2048),
)


def _strategies(machine, workload) -> Dict[str, float]:
    """Throughput of every applicable strategy."""
    out: Dict[str, float] = {}
    try:
        out["gpu"] = (
            NoPartitioningJoin(machine, hash_table_placement="gpu")
            .run(workload.r, workload.s)
            .throughput_gtuples
        )
    except OutOfMemoryError:
        pass
    out["gpu-hybrid"] = (
        NoPartitioningJoin(machine, hash_table_placement="hybrid")
        .run(workload.r, workload.s)
        .throughput_gtuples
    )
    for strategy in ("het", "gpu+het"):
        try:
            out[strategy] = (
                CoopJoin(machine, strategy=strategy)
                .run(workload.r, workload.s, workers=("cpu0", "gpu0"))
                .throughput_gtuples
            )
        except OutOfMemoryError:
            pass
    return out


_DECISION_TO_SERIES = {
    ("gpu", "gpu"): "gpu",
    ("gpu", "hybrid"): "gpu-hybrid",
    ("het", "cpu"): "het",
    ("gpu+het", "gpu"): "gpu+het",
}


def run(scale: float = 2.0**-13) -> FigureResult:
    result = FigureResult(
        figure="Figure 11",
        title="Placement decision tree vs. exhaustive strategy search",
        notes=(
            "In-core regimes: the tree's choice IS the best strategy. "
            "Beyond GPU memory the tree prefers Het — the *robust* "
            "choice (never below the CPU baseline, Section 6's goal) — "
            "although the single-GPU hybrid table peaks higher when the "
            "GPU fraction is still large."
        ),
    )
    machine = ibm_ac922()
    for label, millions in SWEEP:
        if millions is None:
            workload = workload_b(scale=scale)
            table_bytes = workload.r.modeled_tuples * 16
        else:
            workload = workload_ratio(1, scale=scale, modeled_r=millions * 10**6)
            table_bytes = millions * 10**6 * 16
        decision = decide_placement(machine, table_bytes)
        chosen_series = _DECISION_TO_SERIES[
            (decision.strategy, decision.hash_table_placement)
        ]
        values = _strategies(machine, workload)
        values["chosen"] = values[chosen_series]
        values["best"] = max(values.values())
        result.add(label, **values)
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
