"""ASCII chart rendering of the reproduced figures.

``python -m repro.bench.charts [figure ...]`` prints terminal bar
charts of the simulated series, so the figures' shapes are visible
without any plotting stack.
"""

from __future__ import annotations

import sys
from typing import List, Optional

from repro.utils.ascii_chart import figure_chart

_RUNNERS = {
    "12": lambda: _module("fig12_transfer_methods").run(scale=2.0**-13),
    "13": lambda: _module("fig13_data_locality").run(scale=2.0**-13),
    "14": lambda: _module("fig14_hashtable_locality").run(scale=2.0**-13),
    "16": lambda: _module("fig16_probe_scaling").run(),
    "17": lambda: _module("fig17_build_scaling").run(),
    "18": lambda: _module("fig18_build_probe_ratio").run(scale=2.0**-13),
    "19": lambda: _module("fig19_skew").run(scale=2.0**-13),
    "20": lambda: _module("fig20_selectivity").run(scale=2.0**-13),
    "21": lambda: _module("fig21_coprocessing").run(scale=2.0**-13),
}


def _module(name: str):
    import importlib

    return importlib.import_module(f"repro.bench.{name}")


def render(figures: Optional[List[str]] = None) -> str:
    """Chart the requested figures (default: a representative subset)."""
    wanted = figures or ["12", "17", "21"]
    unknown = [f for f in wanted if f not in _RUNNERS]
    if unknown:
        raise ValueError(
            f"no chart for figure(s) {', '.join(unknown)}; "
            f"available: {', '.join(sorted(_RUNNERS))}"
        )
    sections = []
    for figure in wanted:
        sections.append(figure_chart(_RUNNERS[figure]()))
    return "\n\n".join(sections)


def main(argv: Optional[List[str]] = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    print(render(argv or None))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
