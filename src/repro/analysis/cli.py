"""Command-line entry point: ``python -m repro.analysis <paths>``.

Exit codes: 0 = clean (no unbaselined findings), 1 = findings,
2 = usage or baseline error.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    BaselineError,
)
from repro.analysis.passes import ALL_PASSES, get_passes
from repro.analysis.reporters import render_json, render_text
from repro.analysis.runner import analyze_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Domain-specific static analysis: unit-safety, determinism, "
            "vectorization, and simulated-coherence rules for the "
            "reproduction codebase."
        ),
    )
    parser.add_argument("paths", nargs="*", help="files or directories to scan")
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "baseline file of accepted findings (default: "
            f"{DEFAULT_BASELINE_NAME} found in the current directory or an "
            "ancestor of the first path)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--rules",
        metavar="NAME[,NAME...]",
        help="comma-separated subset of rules to run",
    )
    parser.add_argument(
        "--show-baselined",
        action="store_true",
        help="include baselined findings in text output",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list available rules and exit",
    )
    return parser


def find_default_baseline(paths: Sequence[str]) -> Optional[str]:
    """Look for the baseline next to CWD or above the first target path."""
    candidates: List[str] = [os.getcwd()]
    if paths:
        current = os.path.dirname(os.path.abspath(paths[0]))
        while True:
            candidates.append(current)
            parent = os.path.dirname(current)
            if parent == current:
                break
            current = parent
    for directory in candidates:
        candidate = os.path.join(directory, DEFAULT_BASELINE_NAME)
        if os.path.isfile(candidate):
            return candidate
    return None


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for analysis_pass in ALL_PASSES:
            print(f"{analysis_pass.name}: {analysis_pass.description}")
            print(f"    scope: {', '.join(analysis_pass.scope)}")
        return 0

    if not args.paths:
        parser.error("at least one path is required (or use --list-rules)")

    try:
        passes = get_passes(args.rules.split(",") if args.rules else None)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline = None
    if not args.no_baseline:
        baseline_path = args.baseline or find_default_baseline(args.paths)
        if args.baseline and not os.path.isfile(args.baseline):
            print(f"error: baseline not found: {args.baseline}", file=sys.stderr)
            return 2
        if baseline_path:
            try:
                baseline = Baseline.load(baseline_path)
            except BaselineError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2

    try:
        report = analyze_paths(args.paths, passes=passes, baseline=baseline)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(render_json(report))
    else:
        output = render_text(report, show_baselined=args.show_baselined)
        if output:
            print(output)
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
