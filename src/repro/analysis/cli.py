"""Command-line entry point: ``python -m repro.analysis <paths>``.

Exit codes are severity-aware:

* ``0`` — clean: no unbaselined findings, no stale baseline entries,
  ratchet (if requested) holds;
* ``1`` — unbaselined ERROR findings, stale baseline entries, a
  ratchet violation, or (with ``--strict``) unbaselined warnings;
* ``2`` — usage or baseline error;
* ``3`` — unbaselined WARNING findings only (without ``--strict``) —
  distinguishable from hard failures so CI can choose to tolerate it.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    BaselineError,
)
from repro.analysis.passes import ALL_PASSES, get_passes
from repro.analysis.reporters import render_json, render_text
from repro.analysis.runner import AnalysisReport, analyze_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Domain-specific static analysis: unit-safety, determinism, "
            "vectorization, simulated-coherence, and interprocedural "
            "lock-discipline / fault-hook / manifest-schema rules for "
            "the reproduction codebase."
        ),
    )
    parser.add_argument("paths", nargs="*", help="files or directories to scan")
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "baseline file of accepted findings (default: "
            f"{DEFAULT_BASELINE_NAME} found in the current directory or an "
            "ancestor of the first path)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--rules",
        metavar="NAME[,NAME...]",
        help="comma-separated subset of rules to run",
    )
    parser.add_argument(
        "--exclude",
        metavar="GLOB",
        action="append",
        default=[],
        help=(
            "glob of paths to skip (repeatable); matches the full posix "
            "path, the basename, or any path suffix"
        ),
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat unbaselined warnings as failures (exit 1, not 3)",
    )
    parser.add_argument(
        "--ratchet",
        action="store_true",
        help=(
            "enforce the baseline ratchet: fail if the baseline has "
            "more entries than its ratchet_limit (new debt) or fewer "
            "(lower the limit to lock in the win)"
        ),
    )
    parser.add_argument(
        "--cache",
        metavar="FILE",
        help=(
            "incremental-analysis cache file: re-analyze only changed "
            "files and their import-graph dependents"
        ),
    )
    parser.add_argument(
        "--show-baselined",
        action="store_true",
        help="include baselined findings in text output",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list available rules and exit",
    )
    return parser


def find_default_baseline(paths: Sequence[str]) -> Optional[str]:
    """Look for the baseline next to CWD or above the first target path."""
    candidates: List[str] = [os.getcwd()]
    if paths:
        current = os.path.dirname(os.path.abspath(paths[0]))
        while True:
            candidates.append(current)
            parent = os.path.dirname(current)
            if parent == current:
                break
            current = parent
    for directory in candidates:
        candidate = os.path.join(directory, DEFAULT_BASELINE_NAME)
        if os.path.isfile(candidate):
            return candidate
    return None


def exit_code(
    report: AnalysisReport,
    strict: bool = False,
    ratchet_failure: Optional[str] = None,
) -> int:
    """Severity-aware exit code for one finished run."""
    if report.errors or report.unused_baseline_entries or ratchet_failure:
        return 1
    if report.warnings:
        return 1 if strict else 3
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for analysis_pass in ALL_PASSES:
            print(f"{analysis_pass.name}: {analysis_pass.description}")
            print(f"    scope: {', '.join(analysis_pass.scope)}")
        return 0

    if not args.paths:
        parser.error("at least one path is required (or use --list-rules)")

    try:
        passes = get_passes(args.rules.split(",") if args.rules else None)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline = None
    if not args.no_baseline:
        baseline_path = args.baseline or find_default_baseline(args.paths)
        if args.baseline and not os.path.isfile(args.baseline):
            print(f"error: baseline not found: {args.baseline}", file=sys.stderr)
            return 2
        if baseline_path:
            try:
                baseline = Baseline.load(baseline_path)
            except BaselineError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2

    if args.ratchet and baseline is None:
        print(
            "error: --ratchet requires a baseline file "
            "(none found and --no-baseline disables it)",
            file=sys.stderr,
        )
        return 2

    try:
        report = analyze_paths(
            args.paths,
            passes=passes,
            baseline=baseline,
            exclude=args.exclude,
            cache_path=args.cache,
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    ratchet_failure = None
    if args.ratchet and baseline is not None:
        ratchet_failure = baseline.ratchet_violation()

    if args.format == "json":
        print(render_json(report))
    else:
        output = render_text(report, show_baselined=args.show_baselined)
        if output:
            print(output)
    if ratchet_failure:
        print(f"ratchet violation: {ratchet_failure}", file=sys.stderr)
    return exit_code(report, strict=args.strict, ratchet_failure=ratchet_failure)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
